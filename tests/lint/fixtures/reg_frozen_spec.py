"""Fixture: registry-frozen-spec.  `# LINT: <rule>` marks findings."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def register_widget(name, *, config=None, spec=None):
    return lambda factory: factory


# -- known-bad ----------------------------------------------------------
@dataclass
class UnfrozenConfig:  # LINT: registry-frozen-spec
    name: str


register_widget("unfrozen", config=UnfrozenConfig)


@dataclass(frozen=True)
class MutableFieldSpec:
    name: str
    weights: Dict[str, float]  # LINT: registry-frozen-spec
    history: List[int] = field(default_factory=list)  # LINT: registry-frozen-spec


register_widget("mutable-fields", spec=MutableFieldSpec)


class NotADataclassConfig:  # LINT: registry-frozen-spec
    pass


register_widget("raw", config=NotADataclassConfig)


@dataclass(frozen=True)
class BaseSpec:
    label: str


@dataclass
class ChildSpec(BaseSpec):  # LINT: registry-frozen-spec
    extra: str = ""


# -- known-good ---------------------------------------------------------
@dataclass(frozen=True)
class GoodConfig:
    name: str
    dims: Tuple[int, ...] = ()
    parent: Optional[str] = None
    nested: Optional[BaseSpec] = None


register_widget("good", config=GoodConfig)


@dataclass(frozen=True)
class GoodChildSpec(BaseSpec):
    weight: float = 1.0
