"""Fixture: id-ordering.  `# LINT: <rule>` marks expected findings."""

items = [object() for _ in range(4)]
a, b = object(), object()

# -- known-bad ----------------------------------------------------------
by_address = sorted(items, key=id)  # LINT: id-ordering
smallest = min(items, key=lambda o: id(o))  # LINT: id-ordering
items.sort(key=id)  # LINT: id-ordering
first = id(a) < id(b)  # LINT: id-ordering

# -- known-good ---------------------------------------------------------
identity_keyed = {id(obj): obj for obj in items}  # identity *keying* is fine
seen = set()
seen.add(id(a))
same = id(a) == id(b)  # equality (is-style) comparison carries no order
by_name = sorted(items, key=repr)
