"""Fixture: unseeded-random.  `# LINT: <rule>` marks expected findings."""

import random
import random as rnd

# -- known-bad ----------------------------------------------------------
jitter = random.random()  # LINT: unseeded-random
pick = random.choice([1, 2, 3])  # LINT: unseeded-random
aliased = rnd.randint(0, 10)  # LINT: unseeded-random
os_seeded = random.Random()  # LINT: unseeded-random
random.seed(42)  # LINT: unseeded-random


def shuffle_in_place(items):
    random.shuffle(items)  # LINT: unseeded-random


# -- known-good ---------------------------------------------------------
rng = random.Random(42)
threaded = rng.random()
also_fine = rng.choice([1, 2, 3])
derived = random.Random(rng.randrange(2**32))
