"""Fixture: unsorted-set-iteration.  `# LINT: <rule>` marks findings."""

xs = ["b", "a", "c", "a"]

# -- known-bad ----------------------------------------------------------
for item in set(xs):  # LINT: unsorted-set-iteration
    print(item)

for item in {"b", "a"}:  # LINT: unsorted-set-iteration
    print(item)

materialised = list(set(xs))  # LINT: unsorted-set-iteration
joined = ",".join({"b", "a"})  # LINT: unsorted-set-iteration
squares = [x * 2 for x in set(xs)]  # LINT: unsorted-set-iteration
unpacked = [*set(xs)]  # LINT: unsorted-set-iteration
union_loop = list(set(xs).union({"z"}))  # LINT: unsorted-set-iteration
binop = tuple({"a"} | {"b"})  # LINT: unsorted-set-iteration

# -- known-good ---------------------------------------------------------
ordered = sorted(set(xs))
for item in sorted({"b", "a"}):
    print(item)
count = len(set(xs))
lowest = min(set(xs))
truthy = any(x == "a" for x in xs)
set_to_set = {x.upper() for x in set(xs)}  # still a set: no order leaked
membership = "a" in set(xs)
rebuilt = frozenset(set(xs))
