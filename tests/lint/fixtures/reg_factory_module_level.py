"""Fixture: registry-factory-module-level.  `# LINT: <rule>` marks findings."""


def register_widget(name, *, replace_existing=False):
    def decorator(factory):
        return factory
    return decorator


# -- known-bad ----------------------------------------------------------
register_widget("lambda-made")(lambda spec: object())  # LINT: registry-factory-module-level


def build_plugins():
    @register_widget("closure-made")  # LINT: registry-import-safe
    def closure_factory(spec):  # LINT: registry-factory-module-level
        return object()

    return closure_factory


# -- known-good ---------------------------------------------------------
@register_widget("module-level")
def module_level_factory(spec):
    return object()


@register_widget("class-factory")
class ClassFactory:
    def __init__(self, spec):
        self.spec = spec
