"""Fixture: registry-import-safe.  `# LINT: <rule>` marks findings."""


def register_widget(name):
    return lambda factory: factory


def module_level_factory(spec):
    return object()


# -- known-bad ----------------------------------------------------------
def install_plugins():
    register_widget("late")(module_level_factory)  # LINT: registry-import-safe


if __name__ == "__main__":
    register_widget("guarded")(module_level_factory)  # LINT: registry-import-safe

# -- known-good ---------------------------------------------------------
register_widget("at-import")(module_level_factory)


@register_widget("decorated")
def decorated_factory(spec):
    return object()


def register_many(names):
    # Dynamic names are registry plumbing, not concrete registrations.
    for dynamic_name in names:
        register_widget(dynamic_name)(module_level_factory)
