"""Fixture: environ-read.  `# LINT: <rule>` marks expected findings.

The rule is path-scoped: linted under this tests/ fixture path the reads
below are findings; the same source linted as if it lived under
``src/repro/experiments/`` is clean (see test_rules.py).
"""

import os

# -- known-bad (outside experiments//benchmarks//scripts/) --------------
mode = os.environ["REPRO_MODE"]  # LINT: environ-read
opt = os.environ.get("REPRO_OPT", "")  # LINT: environ-read
flag = os.getenv("REPRO_FLAG")  # LINT: environ-read


# -- known-good ---------------------------------------------------------
def configured(mode: str, opt: str = "") -> str:
    """Configuration arrives as arguments, not ambient shell state."""
    return f"{mode}:{opt}"
