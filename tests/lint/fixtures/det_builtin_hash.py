"""Fixture: builtin-hash.  `# LINT: <rule>` marks expected findings."""

import zlib

# -- known-bad ----------------------------------------------------------
bucket = hash("user-7") % 16  # LINT: builtin-hash


def spread(key: str, slots: int) -> int:
    return hash(key) % slots  # LINT: builtin-hash


# -- known-good ---------------------------------------------------------
stable = zlib.crc32(b"user-7") % 16


def stable_spread(key: str, slots: int) -> int:
    return zlib.crc32(key.encode("utf-8")) % slots


class WithDunder:
    def __hash__(self):  # defining __hash__ is not calling builtin hash()
        return 7
