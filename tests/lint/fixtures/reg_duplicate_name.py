"""Fixture: registry-duplicate-name.  `# LINT: <rule>` marks findings."""


def register_widget(name, *, replace_existing=False):
    return lambda factory: factory


def register_gadget(name):
    return lambda factory: factory


def first(spec):
    return object()


def second(spec):
    return object()


# -- known-bad ----------------------------------------------------------
register_widget("dup")(first)
register_widget("dup")(second)  # LINT: registry-duplicate-name
register_widget("Case-Fold")(first)
register_widget("case-fold")(second)  # LINT: registry-duplicate-name

# -- known-good ---------------------------------------------------------
register_widget("unique-a")(first)
register_widget("unique-b")(second)
register_gadget("dup")(first)  # same name, different registry family: fine
register_widget("dup", replace_existing=True)(second)  # explicit override
