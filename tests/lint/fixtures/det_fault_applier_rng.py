"""Fixture: fault-applier-rng.  `# LINT: <rule>` marks expected findings."""

import random

from repro.faults import register_fault


@register_fault("jittery-crash")
def apply_jittery_crash(spec, ctx, record):
    delay = random.uniform(0.0, 1.0)  # LINT: fault-applier-rng, unseeded-random
    flip = random.random()  # LINT: fault-applier-rng, unseeded-random
    return delay + flip


@register_fault("stream-stealer")
def apply_stream_stealer(spec, ctx, record):
    jitter = ctx.network._rng.uniform(0.0, 0.1)  # LINT: fault-applier-rng
    wobble = ctx.network.rng.expovariate(2.0)  # LINT: fault-applier-rng
    return jitter + wobble


# -- known-good ---------------------------------------------------------
@register_fault("owned-stream")
def apply_owned_stream(spec, ctx, record):
    rng = random.Random(spec.seed)
    return rng.uniform(0.0, 1.0)


def not_an_applier(network):
    # The same attribute-chain draw outside a fault applier is another
    # rule's business (or legitimately the component's own code).
    return network._rng.uniform(0.0, 0.1)
