"""Fixture: wall-clock.  `# LINT: <rule>` marks expected findings."""

import datetime
import time
from time import time as now

# -- known-bad ----------------------------------------------------------
stamp = time.time()  # LINT: wall-clock
nanos = time.time_ns()  # LINT: wall-clock
mono = time.monotonic()  # LINT: wall-clock
aliased = now()  # LINT: wall-clock
today = datetime.datetime.now()  # LINT: wall-clock
utc = datetime.datetime.utcnow()  # LINT: wall-clock
date_today = datetime.date.today()  # LINT: wall-clock

# -- known-good ---------------------------------------------------------
telemetry_t0 = time.perf_counter()  # wall-clock *telemetry* is the house style
elapsed = time.perf_counter() - telemetry_t0
fixed = datetime.datetime(2024, 1, 1)
