"""Engine mechanics: suppressions, import resolution, parse failures."""

from __future__ import annotations

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.engine import (
    SYNTAX_ERROR_RULE,
    iter_python_files,
    lint_modules,
    parse_module,
)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_allow_comment_on_the_line_suppresses():
    findings = lint_source(
        "import random\n"
        "x = random.random()  # repro: allow(unseeded-random)\n"
    )
    assert findings == []


def test_allow_comment_on_the_line_above_suppresses():
    findings = lint_source(
        "import random\n"
        "# repro: allow(unseeded-random)\n"
        "x = random.random()\n"
    )
    assert findings == []


def test_allow_comment_lists_multiple_rules():
    findings = lint_source(
        "import random, time\n"
        "# repro: allow(unseeded-random, wall-clock)\n"
        "x = random.random() + time.time()\n"
    )
    assert findings == []


def test_allow_comment_for_a_different_rule_does_not_suppress():
    findings = lint_source(
        "import random\n"
        "x = random.random()  # repro: allow(wall-clock)\n"
    )
    assert [f.rule for f in findings] == ["unseeded-random"]


def test_suppressed_findings_stay_countable():
    module, failure = parse_module(
        "import random\n"
        "x = random.random()  # repro: allow(unseeded-random)\n",
        "sim/x.py",
    )
    assert failure is None
    report = lint_modules([module])
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["unseeded-random"]


# ----------------------------------------------------------------------
# import resolution
# ----------------------------------------------------------------------
def test_import_alias_resolves():
    findings = lint_source("import random as rnd\nx = rnd.random()\n")
    assert [f.rule for f in findings] == ["unseeded-random"]


def test_from_import_alias_resolves():
    findings = lint_source("from time import time as now\nx = now()\n")
    assert [f.rule for f in findings] == ["wall-clock"]


def test_shadowed_builtin_is_not_flagged():
    findings = lint_source(
        "from zlib import crc32 as hash\n"
        "x = hash(b'stable')\n"
    )
    assert findings == []


def test_unrelated_attribute_chain_is_not_flagged():
    findings = lint_source("rng = object()\nx = rng.random()\n")
    assert findings == []


# ----------------------------------------------------------------------
# parse failures and file discovery
# ----------------------------------------------------------------------
def test_syntax_error_becomes_a_finding():
    findings = lint_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule == SYNTAX_ERROR_RULE
    assert findings[0].severity == "error"


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "nope"])


def test_iter_python_files_skips_hidden_and_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
    files = iter_python_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]
    assert "__pycache__" not in str(files[0])


def test_lint_paths_relativises_against_root(tmp_path):
    target = tmp_path / "sim" / "bad.py"
    target.parent.mkdir()
    target.write_text("import random\nx = random.random()\n")
    report = lint_paths([tmp_path], root=tmp_path)
    assert [f.path for f in report.findings] == ["sim/bad.py"]
    assert report.files == 1
