"""Baseline semantics: round-trip, partitioning, and the shrink-only ratchet
on the committed ``.repro-lint-baseline.json``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_VERSION,
    Finding,
    baseline_from_findings,
    lint_paths,
    load_baseline,
    save_baseline,
    split_findings,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def _finding(path="sim/a.py", line=3, rule="unseeded-random", message="msg"):
    return Finding(
        path=path, line=line, col=1, rule=rule, severity="error", message=message
    )


# ----------------------------------------------------------------------
# round-trip
# ----------------------------------------------------------------------
def test_round_trip(tmp_path):
    baseline = baseline_from_findings(
        [_finding(line=3), _finding(line=9), _finding(rule="wall-clock")]
    )
    path = tmp_path / "baseline.json"
    save_baseline(path, baseline)
    assert load_baseline(path) == baseline
    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert list(payload["findings"]) == sorted(payload["findings"])


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text(json.dumps({"findings": {"k": 0}, "version": BASELINE_VERSION}))
    with pytest.raises(ValueError):
        load_baseline(path)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def test_split_new_baselined_and_stale():
    covered = _finding(line=3)
    extra = _finding(line=9)  # same key, second occurrence
    baseline = baseline_from_findings([covered])
    baseline["sim/gone.py::wall-clock::old"] = 1
    new, baselined, stale = split_findings([extra, covered], baseline)
    assert baselined == [covered]  # deterministic: lowest line first
    assert new == [extra]
    assert stale == ["sim/gone.py::wall-clock::old"]


def test_baseline_key_ignores_line_numbers():
    moved = _finding(line=77)
    baseline = baseline_from_findings([_finding(line=3)])
    new, baselined, stale = split_findings([moved], baseline)
    assert new == [] and baselined == [moved] and stale == []


def test_overcounted_key_is_stale():
    baseline = baseline_from_findings([_finding(line=3), _finding(line=9)])
    new, baselined, stale = split_findings([_finding(line=3)], baseline)
    assert new == []
    assert len(baselined) == 1
    assert stale == [_finding().baseline_key]


# ----------------------------------------------------------------------
# the committed baseline: shrink-only, and registry rules are exception-free
# ----------------------------------------------------------------------
def test_committed_baseline_matches_src_exactly():
    """src/ must produce zero new findings AND zero stale entries.

    Zero new keeps main lint-clean; zero stale is the ratchet -- fixing a
    grandfathered finding forces deleting its baseline entry, so the file
    can only shrink.
    """
    baseline = load_baseline(COMMITTED_BASELINE)
    report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    new, _baselined, stale = split_findings(report.findings, baseline)
    assert new == [], "new findings in src/:\n" + "\n".join(
        f.format() for f in new
    )
    assert stale == [], f"stale baseline entries (delete them): {stale}"


def test_registry_rules_have_zero_baselined_exceptions():
    """The spawn-safety contract admits no grandfathered violations."""
    baseline = load_baseline(COMMITTED_BASELINE)
    registry_keys = [key for key in baseline if "::registry-" in key]
    assert registry_keys == []
