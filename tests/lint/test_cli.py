"""The ``python -m repro.lint`` front end: exit codes, text/JSON output.

The acceptance scenario from the issue is tested end-to-end: seeding a
known violation (``random.random()`` in a ``sim/`` file) into a scratch
tree makes the CLI exit non-zero and name the rule and line in both text
and JSON output.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def violation_tree(tmp_path):
    """A scratch tree holding one known violation in sim/."""
    sim = tmp_path / "sim"
    sim.mkdir()
    (sim / "clean.py").write_text("import random\nrng = random.Random(7)\n")
    (sim / "bad.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n"
    )
    return tmp_path


def run_main(*argv):
    out = io.StringIO()
    code = main([str(a) for a in argv], out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------
def test_clean_tree_exits_zero(tmp_path):
    (tmp_path / "ok.py").write_text("import random\nrng = random.Random(0)\n")
    code, _ = run_main(tmp_path, "--root", tmp_path)
    assert code == EXIT_CLEAN


def test_violation_exits_nonzero_with_rule_and_line_in_text(violation_tree):
    code, output = run_main(violation_tree, "--root", violation_tree)
    assert code == EXIT_FINDINGS
    assert "sim/bad.py:5:" in output
    assert "unseeded-random" in output


def test_violation_named_in_json(violation_tree):
    code, output = run_main(
        violation_tree, "--root", violation_tree, "--format", "json"
    )
    assert code == EXIT_FINDINGS
    payload = json.loads(output)
    assert payload["version"] == 1
    assert payload["summary"]["new"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "unseeded-random"
    assert finding["line"] == 5
    assert finding["path"] == "sim/bad.py"
    assert finding["baselined"] is False
    assert "unseeded-random" in payload["rules"]


def test_missing_path_is_usage_error(tmp_path):
    code, _ = run_main(tmp_path / "does-not-exist")
    assert code == EXIT_USAGE


# ----------------------------------------------------------------------
# baseline interaction
# ----------------------------------------------------------------------
def test_baselined_finding_exits_zero(violation_tree):
    baseline = violation_tree / "baseline.json"
    code, _ = run_main(
        violation_tree, "--root", violation_tree, "--write-baseline", baseline
    )
    assert code == EXIT_CLEAN
    code, output = run_main(
        violation_tree, "--root", violation_tree, "--baseline", baseline
    )
    assert code == EXIT_CLEAN
    assert "1 baselined" in output


def test_stale_baseline_fails_only_under_strict(violation_tree):
    baseline = violation_tree / "baseline.json"
    run_main(violation_tree, "--root", violation_tree, "--write-baseline", baseline)
    (violation_tree / "sim" / "bad.py").write_text(
        "import random\nrng = random.Random(7)\n"
    )
    code, output = run_main(
        violation_tree, "--root", violation_tree, "--baseline", baseline
    )
    assert code == EXIT_CLEAN  # fixed finding: informational by default
    assert "stale baseline" in output
    code, _ = run_main(
        violation_tree, "--root", violation_tree, "--baseline", baseline, "--strict"
    )
    assert code == EXIT_FINDINGS


def test_malformed_baseline_is_usage_error(violation_tree):
    baseline = violation_tree / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "findings": {}}))
    code, _ = run_main(
        violation_tree, "--root", violation_tree, "--baseline", baseline
    )
    assert code == EXIT_USAGE


# ----------------------------------------------------------------------
# report artifact + misc
# ----------------------------------------------------------------------
def test_json_report_written_alongside_text(violation_tree, tmp_path):
    report_file = tmp_path / "lint-report.json"
    code, output = run_main(
        violation_tree,
        "--root", violation_tree,
        "--json-report", report_file,
    )
    assert code == EXIT_FINDINGS
    assert "unseeded-random" in output  # stdout stays text
    payload = json.loads(report_file.read_text())
    assert payload["summary"]["new"] == 1
    assert payload["findings"][0]["rule"] == "unseeded-random"


def test_list_rules(capsys):
    code, output = run_main("--list-rules")
    assert code == EXIT_CLEAN
    assert "unseeded-random" in output
    assert "registry-factory-module-level" in output


def test_module_entry_point_runs(violation_tree):
    """``python -m repro.lint`` works end-to-end as a subprocess."""
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.lint",
            str(violation_tree), "--root", str(violation_tree),
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == EXIT_FINDINGS
    assert "unseeded-random" in result.stdout
