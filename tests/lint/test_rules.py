"""Every lint rule against its fixture file.

Each fixture under ``fixtures/`` carries ``# LINT: <rule>`` markers on the
lines where a finding is expected; everything unmarked is known-good.  The
test lints the fixture and requires the finding set to match the markers
*exactly* -- a rule that stops firing and a rule that starts over-firing
both fail.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Set, Tuple

import pytest

from repro.lint import lint_source, registered_lint_rules

FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

_MARKER_RE = re.compile(r"#\s*LINT:\s*([\w\-,\s]+?)\s*$")


def expected_findings(source: str) -> Set[Tuple[int, str]]:
    """(line, rule) pairs declared by ``# LINT:`` markers."""
    expected: Set[Tuple[int, str]] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if match is None:
            continue
        for rule in match.group(1).split(","):
            rule = rule.strip()
            if rule:
                expected.add((lineno, rule))
    return expected


def test_fixtures_exist():
    assert FIXTURES, f"no fixture files under {FIXTURE_DIR}"


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_findings_match_markers(fixture: Path):
    source = fixture.read_text(encoding="utf-8")
    expected = expected_findings(source)
    assert expected, f"{fixture.name} declares no # LINT: markers"
    findings = lint_source(source, path=f"tests/lint/fixtures/{fixture.name}")
    actual = {(f.line, f.rule) for f in findings}
    assert actual == expected, (
        f"{fixture.name}: findings do not match markers.\n"
        f"  unexpected: {sorted(actual - expected)}\n"
        f"  missing:    {sorted(expected - actual)}"
    )


def test_every_registered_rule_has_a_fixture():
    """Each of the registered rules is exercised by at least one marker."""
    covered: Set[str] = set()
    for fixture in FIXTURES:
        for _line, rule in expected_findings(fixture.read_text(encoding="utf-8")):
            covered.add(rule)
    missing = set(registered_lint_rules()) - covered
    assert not missing, f"rules without fixture coverage: {sorted(missing)}"


def test_environ_read_is_path_scoped():
    """The same source is a finding in core code, sanctioned in experiments/."""
    source = FIXTURE_DIR.joinpath("det_environ_read.py").read_text(encoding="utf-8")
    core = lint_source(source, path="src/repro/core/example.py")
    assert any(f.rule == "environ-read" for f in core)
    sanctioned = lint_source(source, path="src/repro/experiments/example.py")
    assert not [f for f in sanctioned if f.rule == "environ-read"]


def test_findings_carry_location_and_severity():
    findings = lint_source("import random\nx = random.random()\n", path="sim/x.py")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "unseeded-random"
    assert finding.line == 2
    assert finding.severity == "error"
    assert finding.path == "sim/x.py"
    assert "sim/x.py:2:" in finding.format()
