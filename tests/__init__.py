"""Test package."""
