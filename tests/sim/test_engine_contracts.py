"""Regression pins for the engine's scheduling contracts.

Two contracts got tightened with the calendar-queue timeline and must never
regress silently:

* **Negative delays are a ``ValueError``**, everywhere — ``schedule()``,
  ``timeout()``, and inside process code (including interrupt handlers).
  The calendar queue *cannot* represent a pre-``origin`` time, so silently
  accepting a negative delay on the heap timeline would make the two
  timelines diverge; rejecting it up front keeps them interchangeable.
* **``run(until=event)``** returns the event's value once the event is
  *processed*, returns immediately for an already-processed event, and
  raises ``RuntimeError`` if the timeline drains with the event untriggered.

Everything runs under both timelines: the contract is part of the engine
API, not of one scheduler.
"""

from __future__ import annotations

import pytest

from repro.sim import EmptySchedule, Environment
from repro.sim.process import Interrupt

TIMELINES = ["calendar", "heap"]


@pytest.fixture(params=TIMELINES)
def env(request):
    return Environment(timeline=request.param)


# ----------------------------------------------------------------------
# negative delays
# ----------------------------------------------------------------------
@pytest.mark.parametrize("delay", [-1.0, -0.001, -1e-12, float("-inf")])
def test_schedule_negative_delay_raises(env, delay):
    with pytest.raises(ValueError, match="negative delay"):
        env.schedule(env.event(), delay=delay)


@pytest.mark.parametrize("delay", [-1.0, -0.001, -1e-12, float("-inf")])
def test_timeout_negative_delay_raises(env, delay):
    with pytest.raises(ValueError):
        env.timeout(delay)


def test_negative_delay_does_not_corrupt_the_timeline(env):
    """A rejected schedule leaves no half-inserted entry behind."""
    with pytest.raises(ValueError):
        env.timeout(-5.0)
    env.timeout(1.0)
    env.run()
    assert env.now == 1.0


def test_zero_delay_is_allowed(env):
    done = []
    event = env.timeout(0.0, value="now")
    event.callbacks.append(lambda e: done.append(e.value))
    env.run()
    assert done == ["now"] and env.now == 0.0


def test_negative_delay_inside_process_surfaces_from_run(env):
    def broken(env):
        yield env.timeout(1.0)
        yield env.timeout(-3.0)

    env.process(broken(env))
    with pytest.raises(ValueError, match="negative delay"):
        env.run()
    assert env.now == 1.0  # the clock stopped where the bug fired


def test_negative_delay_in_interrupt_handler_surfaces(env):
    """The regression case: an interrupt handler 'retrying' with a bad
    (negative) backoff must raise, not quietly run the clock backwards."""

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            yield env.timeout(-1.0)  # buggy backoff computation

    proc = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(2.0)
        proc.interrupt("wake up")

    env.process(killer(env))
    with pytest.raises(ValueError, match="negative delay"):
        env.run()
    assert env.now == 2.0


def test_interrupt_itself_still_works_after_rejected_delay(env):
    """A swallowed ValueError must leave the process machinery coherent."""

    def careful(env, log):
        try:
            env.timeout(-1.0)
        except ValueError:
            log.append("rejected")
        yield env.timeout(0.5)
        log.append("slept")

    log = []
    env.process(careful(env, log))
    env.run()
    assert log == ["rejected", "slept"] and env.now == 0.5


# ----------------------------------------------------------------------
# run(until=event) pins
# ----------------------------------------------------------------------
def test_until_event_stops_exactly_at_processing_time(env):
    """Later events must stay queued: run() stops at the event, not after."""
    marker = env.timeout(3.0, value="stop-here")
    env.timeout(10.0)  # must remain unprocessed
    assert env.run(until=marker) == "stop-here"
    assert env.now == 3.0
    assert env.peek() == 10.0  # the later event is still queued


def test_until_triggered_but_unprocessed_event_runs_one_step(env):
    """An event can be triggered (queued) but not yet processed; run() must
    still execute it and return its value."""
    event = env.event()
    event.succeed("queued-value")
    assert event.triggered and not event.processed
    assert env.run(until=event) == "queued-value"
    assert event.processed


def test_until_already_processed_event_returns_without_stepping(env):
    event = env.timeout(1.0, value=42)
    env.run()
    assert event.processed
    env.timeout(5.0)  # would advance the clock if run() stepped
    assert env.run(until=event) == 42
    assert env.now == 1.0  # untouched: run() returned immediately


def test_until_never_triggered_event_raises_runtime_error(env):
    env.timeout(1.0)
    orphan = env.event()
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=orphan)
    assert env.now == 1.0  # the timeline drained before the error


def test_until_process_event_returns_process_value(env):
    def job(env):
        yield env.timeout(2.0)
        return "done"

    proc = env.process(job(env))
    assert env.run(until=proc) == "done"
    assert env.now == 2.0


def test_step_on_empty_timeline_raises_empty_schedule(env):
    with pytest.raises(EmptySchedule):
        env.step()
