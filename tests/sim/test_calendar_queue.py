"""Table-driven unit tests for the calendar-queue scheduler's edge cases.

The differential fuzzer (``test_engine_equivalence.py``) pins *behavioral*
identity with the heap; this file pins the calendar-specific mechanics —
bucket resizing, the one-bucket degenerate case, far-future outliers that
force the global-minimum jump, ``inf``-adjacent peeks, and the
``MAX_BUCKETS`` ceiling (exercised cheaply through a small-cap subclass,
since the sizing constants are class attributes).
"""

from __future__ import annotations

import random

import pytest

from repro.sim.calendar import CalendarQueue

INF = float("inf")


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


def _entries(times):
    return [(t, 1, eid, None) for eid, t in enumerate(times, start=1)]


def _sorted_times(entries):
    return [e[0] for e in sorted(entries)]


# ----------------------------------------------------------------------
# table-driven schedules
# ----------------------------------------------------------------------
CASES = [
    # (name, times)
    ("all_in_one_bucket", [0.1, 0.2, 0.3, 0.05, 0.25] * 10),
    ("single_entry", [7.25]),
    ("all_same_time", [3.0] * 64),
    ("far_future_outlier", [1.0, 2.0, 3.0, 1e9]),
    ("outlier_first", [1e9, 1.0, 2.0, 3.0]),
    ("two_clusters_far_apart", [float(i) for i in range(20)] + [1e6 + i for i in range(20)]),
    ("inf_only", [INF, INF, INF]),
    ("inf_mixed", [INF, 1.0, INF, 0.0, 2.5]),
    ("subnormal_spread", [2.0 ** -1040, 2.0 ** -1041, 0.0]),
    ("huge_spread", [2.0 ** -30, 1.0, 2.0 ** 60]),
    ("zeroes_then_everything", [0.0] * 30 + [0.5, 1e5, INF, 0.25]),
]


@pytest.mark.parametrize("times", [case[1] for case in CASES], ids=[case[0] for case in CASES])
def test_drains_in_sorted_order(times):
    queue = CalendarQueue()
    entries = _entries(times)
    for entry in entries:
        queue.push(entry)
    assert len(queue) == len(entries)
    drained = _drain(queue)
    assert drained == sorted(entries)
    assert len(queue) == 0 and not queue


@pytest.mark.parametrize("times", [case[1] for case in CASES], ids=[case[0] for case in CASES])
def test_interleaved_peek_never_changes_pop_order(times):
    """peek_time may advance the scan cursor but must not reorder pops."""
    plain, peeked = CalendarQueue(), CalendarQueue()
    for entry in _entries(times):
        plain.push(entry)
        peeked.push(entry)
        assert peeked.peek_time() == min(peeked.peek_time(), entry[0])
    order_plain = []
    order_peeked = []
    while plain:
        order_plain.append(plain.pop())
        assert peeked.peek_time() == order_plain[-1][0]
        order_peeked.append(peeked.pop())
    assert order_peeked == order_plain


# ----------------------------------------------------------------------
# resize behavior (via the introspection properties)
# ----------------------------------------------------------------------
def test_grow_resize_triggers_and_preserves_order():
    queue = CalendarQueue()
    rng = random.Random(99)
    entries = _entries([rng.uniform(0, 1000) for _ in range(5000)])
    for entry in entries:
        queue.push(entry)
    assert queue.resizes > 0
    assert queue.bucket_count > CalendarQueue.MIN_BUCKETS
    # Power-of-two geometry holds after every resize.
    assert queue.bucket_count & (queue.bucket_count - 1) == 0
    ratio = queue.bucket_width
    assert ratio == 2.0 ** round(__import__("math").log2(ratio))
    assert _drain(queue) == sorted(entries)


def test_shrink_resize_triggers_on_drain():
    queue = CalendarQueue()
    rng = random.Random(7)
    for entry in _entries([rng.uniform(0, 500) for _ in range(4000)]):
        queue.push(entry)
    grown = queue.bucket_count
    assert grown > CalendarQueue.MIN_BUCKETS
    resizes_after_growth = queue.resizes
    _drain(queue)
    assert queue.resizes > resizes_after_growth  # at least one shrink fired
    assert queue.bucket_count < grown


def test_resize_during_mixed_push_pop_keeps_heap_order():
    from repro.sim.engine import _HeapTimeline

    queue, heap = CalendarQueue(), _HeapTimeline()
    rng = random.Random(1234)
    now = 0.0
    eid = 0
    popped_q, popped_h = [], []
    for _ in range(20_000):
        if rng.random() < 0.55 or not queue:
            eid += 1
            entry = (now + rng.uniform(0, 100), 1, eid, None)
            queue.push(entry)
            heap.push(entry)
        else:
            entry = queue.pop()
            popped_q.append(entry)
            popped_h.append(heap.pop())
            now = entry[0]
    popped_q.extend(_drain(queue))
    while heap:
        popped_h.append(heap.pop())
    assert popped_q == popped_h
    assert queue.resizes > 0


# ----------------------------------------------------------------------
# the MAX_BUCKETS ceiling (small-cap subclass keeps the test cheap)
# ----------------------------------------------------------------------
class _TinyCapQueue(CalendarQueue):
    MAX_BUCKETS = 64


def test_bucket_cap_is_respected_and_resizing_stops():
    queue = _TinyCapQueue()
    rng = random.Random(5)
    entries = _entries([rng.uniform(0, 10_000) for _ in range(2000)])
    for entry in entries:
        queue.push(entry)
    assert queue.bucket_count == _TinyCapQueue.MAX_BUCKETS
    resizes_at_cap = queue.resizes
    # Pushing far past the trigger point must not resize again (the cap
    # disables the grow trigger; re-enabling it would make every push O(n)).
    more = _entries([rng.uniform(0, 10_000) for _ in range(2000)])
    for time, priority, _, payload in more:
        entries.append((time, priority, len(entries) + 1, payload))
        queue.push(entries[-1])
    assert queue.resizes == resizes_at_cap
    assert queue.bucket_count == _TinyCapQueue.MAX_BUCKETS
    assert _drain(queue) == sorted(entries)


# ----------------------------------------------------------------------
# inf-adjacent peeks and error paths
# ----------------------------------------------------------------------
def test_peek_empty_is_inf_and_pop_empty_raises():
    queue = CalendarQueue()
    assert queue.peek_time() == INF
    with pytest.raises(IndexError):
        queue.pop()


def test_inf_entries_surface_only_after_finite_ones():
    queue = CalendarQueue()
    queue.push((INF, 0, 1, "a"))
    assert queue.peek_time() == INF  # inf is genuinely the minimum now
    queue.push((5.0, 0, 2, "b"))
    assert queue.peek_time() == 5.0
    assert queue.pop() == (5.0, 0, 2, "b")
    assert queue.peek_time() == INF
    assert queue.pop() == (INF, 0, 1, "a")
    assert queue.peek_time() == INF  # empty again
    assert len(queue) == 0


def test_inf_ties_break_by_priority_then_eid():
    queue = CalendarQueue()
    queue.push((INF, 1, 2, "later"))
    queue.push((INF, 1, 1, "earlier"))
    queue.push((INF, 0, 3, "urgent"))
    assert [queue.pop()[3] for _ in range(3)] == ["urgent", "earlier", "later"]


def test_push_before_origin_rejected():
    queue = CalendarQueue(origin=100.0)
    with pytest.raises(ValueError):
        queue.push((99.0, 0, 1, None))
    queue.push((100.0, 0, 1, None))  # exactly at origin is fine
    assert queue.pop()[0] == 100.0


def test_push_behind_activation_point_after_peek():
    """A peek advances the cursor; a later push behind it must still pop
    first (the demote-and-reactivate path)."""
    queue = CalendarQueue()
    queue.push((50.0, 0, 1, "far"))
    assert queue.peek_time() == 50.0  # cursor has advanced toward vb(50)
    queue.push((1.0, 0, 2, "near"))
    assert queue.peek_time() == 1.0
    assert queue.pop()[3] == "near"
    assert queue.pop()[3] == "far"


def test_global_min_jump_after_empty_year():
    """An outlier farther than nbuckets*width ahead forces the full-scan
    jump; the queue must land exactly on the minimum, not an alias."""
    queue = CalendarQueue()
    # Two aliasing outliers: same bucket index modulo the array size.
    width, nb = queue.bucket_width, queue.bucket_count
    near = 123 * width * nb
    far = 456 * width * nb
    queue.push((far, 0, 1, "far"))
    queue.push((near, 0, 2, "near"))
    assert queue.pop()[3] == "near"
    assert queue.pop()[3] == "far"
