"""Test package."""
