"""Unit tests for the event primitives of the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


def test_event_starts_pending(env):
    event = env.event()
    assert not event.triggered
    assert not event.processed
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_succeed_sets_value_and_ok(env):
    event = env.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_double_trigger_is_an_error(env):
    event = env.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    with pytest.raises(RuntimeError):
        event.fail(ValueError("boom"))


def test_fail_requires_an_exception(env):
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_failed_event_raises_in_waiting_process(env):
    event = env.event()
    seen = []

    def waiter(env, event):
        try:
            yield event
        except ValueError as exc:
            seen.append(str(exc))

    env.process(waiter(env, event))
    event.fail(ValueError("boom"))
    env.run()
    assert seen == ["boom"]


def test_unhandled_failure_propagates_to_run(env):
    event = env.event()
    event.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_timeout_value_and_delay(env):
    results = []

    def waiter(env):
        value = yield env.timeout(2.5, value="done")
        results.append((env.now, value))

    env.process(waiter(env))
    env.run()
    assert results == [(2.5, "done")]


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeouts_fire_in_order(env):
    order = []

    def waiter(env, delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(waiter(env, 3, "c"))
    env.process(waiter(env, 1, "a"))
    env.process(waiter(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_all_of_waits_for_every_event(env):
    done = []

    def waiter(env):
        t1 = env.timeout(1, value="one")
        t2 = env.timeout(3, value="three")
        values = yield env.all_of([t1, t2])
        done.append((env.now, sorted(values.values())))

    env.process(waiter(env))
    env.run()
    assert done == [(3.0, ["one", "three"])]


def test_any_of_returns_on_first_event(env):
    done = []

    def waiter(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(10, value="slow")
        values = yield env.any_of([t1, t2])
        done.append((env.now, list(values.values())))

    env.process(waiter(env))
    env.run()
    assert done == [(1.0, ["fast"])]


def test_empty_condition_triggers_immediately(env):
    condition = env.all_of([])
    assert condition.triggered
    assert condition.value == {}


def test_condition_rejects_foreign_events(env):
    other = Environment()
    with pytest.raises(ValueError):
        env.all_of([other.timeout(1)])


def test_condition_with_already_processed_event(env):
    timeout = env.timeout(1, value="early")
    env.run()
    condition = env.all_of([timeout])
    assert condition.triggered
    assert condition.value == {timeout: "early"}


def test_condition_propagates_failure(env):
    failing = env.event()
    ok = env.timeout(5)
    caught = []

    def waiter(env):
        try:
            yield env.all_of([failing, ok])
        except KeyError as exc:
            caught.append(exc)

    env.process(waiter(env))
    failing.fail(KeyError("broken"))
    env.run()
    assert len(caught) == 1
