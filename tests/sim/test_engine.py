"""Unit tests for the Environment: clock, scheduling and run() semantics."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_step_on_empty_queue_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time(env):
    assert env.peek() == float("inf")
    env.timeout(5)
    assert env.peek() == 5.0


def test_run_until_time_stops_clock_exactly(env):
    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_is_rejected():
    env = Environment(initial_time=100.0)
    with pytest.raises(ValueError):
        env.run(until=50.0)


def test_run_until_event_returns_its_value(env):
    def worker(env):
        yield env.timeout(3)
        return "result"

    process = env.process(worker(env))
    assert env.run(until=process) == "result"
    assert env.now == 3.0


def test_run_until_never_triggered_event_raises(env):
    orphan = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError):
        env.run(until=orphan)


def test_run_until_already_processed_event(env):
    def worker(env):
        yield env.timeout(1)
        return 7

    process = env.process(worker(env))
    env.run()
    assert env.run(until=process) == 7


def test_run_without_until_drains_queue(env):
    seen = []

    def worker(env):
        yield env.timeout(2)
        seen.append(env.now)

    env.process(worker(env))
    env.run()
    assert seen == [2.0]
    assert env.peek() == float("inf")


def test_events_at_same_time_preserve_insertion_order(env):
    order = []

    def waiter(env, label):
        yield env.timeout(1)
        order.append(label)

    for label in "abcd":
        env.process(waiter(env, label))
    env.run()
    assert order == list("abcd")


def test_active_process_is_none_outside_steps(env):
    def worker(env):
        assert env.active_process is not None
        yield env.timeout(1)

    env.process(worker(env))
    env.run()
    assert env.active_process is None


def test_nested_process_spawning(env):
    results = []

    def child(env, n):
        yield env.timeout(n)
        return n * 10

    def parent(env):
        first = yield env.process(child(env, 1))
        second = yield env.process(child(env, 2))
        results.append(first + second)

    env.process(parent(env))
    env.run()
    assert results == [30]
    assert env.now == 3.0
