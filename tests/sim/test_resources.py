"""Unit tests for Store, PriorityStore and Resource."""

import pytest

from repro.sim import PriorityStore, Resource, Store


def test_store_is_fifo(env):
    store = Store(env)
    received = []

    def producer(env, store):
        for item in ("a", "b", "c"):
            yield store.put(item)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["a", "b", "c"]


def test_store_get_blocks_until_item_available(env):
    store = Store(env)
    times = []

    def consumer(env, store):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env, store):
        yield env.timeout(4)
        yield store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [(4.0, "late")]


def test_store_capacity_blocks_put(env):
    store = Store(env, capacity=1)
    progress = []

    def producer(env, store):
        yield store.put("first")
        progress.append(("put-first", env.now))
        yield store.put("second")
        progress.append(("put-second", env.now))

    def consumer(env, store):
        yield env.timeout(5)
        item = yield store.get()
        progress.append(("got", item, env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert ("put-first", 0.0) in progress
    # The second put can only complete after the consumer frees a slot at t=5.
    assert ("put-second", 5.0) in progress


def test_store_invalid_capacity(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_reflects_items(env):
    store = Store(env)
    store.put("x")
    store.put("y")
    env.run()
    assert len(store) == 2


def test_priority_store_returns_smallest_first(env):
    store = PriorityStore(env)
    received = []

    def producer(env, store):
        for item in [(3, "low"), (1, "high"), (2, "mid")]:
            yield store.put(item)

    def consumer(env, store):
        # Start after every item has been enqueued so ordering is observable.
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            received.append(item[1])

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["high", "mid", "low"]


def test_resource_limits_concurrency(env):
    resource = Resource(env, capacity=2)
    active = []
    max_active = []

    def worker(env, resource, duration):
        request = resource.request()
        yield request
        active.append(1)
        max_active.append(len(active))
        yield env.timeout(duration)
        active.pop()
        resource.release(request)

    for _ in range(5):
        env.process(worker(env, resource, 3))
    env.run()
    assert max(max_active) == 2


def test_resource_context_manager_releases(env):
    resource = Resource(env, capacity=1)
    order = []

    def worker(env, resource, label):
        with resource.request() as request:
            yield request
            order.append((label, env.now))
            yield env.timeout(2)

    env.process(worker(env, resource, "first"))
    env.process(worker(env, resource, "second"))
    env.run()
    assert order == [("first", 0.0), ("second", 2.0)]
    assert resource.count == 0


def test_resource_invalid_capacity(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_store_cancel_withdraws_an_abandoned_get(env):
    store = Store(env)
    getter = store.get()
    assert store.cancel(getter) is True
    # The queued item must go to a *live* getter, not the cancelled one.
    store.put("item")
    live = store.get()
    env.run()
    assert live.value == "item"
    assert not getter.triggered


def test_store_cancel_is_a_noop_for_foreign_or_triggered_events(env):
    store = Store(env)
    other = Store(env)
    getter = other.get()
    assert store.cancel(getter) is False  # belongs to another store
    assert store.cancel(env.timeout(1)) is False  # not a store event at all
    put = store.put("x")
    env.run()
    assert store.cancel(put) is False  # already triggered and dequeued
