"""Differential engine-equivalence harness: calendar queue vs heap oracle.

The calendar-queue timeline must be *indistinguishable* from the original
``heapq`` timeline — same pop order, same clock, same final state — because
every golden trace in this repo was recorded against the heap.  Two seeded
fuzzers pin that:

* a **structure-level** fuzzer drives the two raw timelines with the same
  randomized push/pop schedules (mixed delays, priorities, same-timestamp
  bursts, ``inf`` entries) and asserts the popped sequences are identical,
  entry for entry, and
* an **engine-level** fuzzer builds randomized simulations (processes with
  mixed delays, same-time bursts, ``AllOf``/``AnyOf`` conditions, events
  succeeded by helpers, urgent-priority interrupts that cancel waits) from a
  pre-drawn script, runs the identical script under
  ``Environment(timeline="heap")`` and ``Environment(timeline="calendar")``
  and asserts the full execution traces and final states match.

Together the two fuzzers replay well over a thousand randomized schedules
(``N_STRUCTURE_SCHEDULES`` + ``N_ENGINE_SCHEDULES`` below).  The engine runs
double as property checks: the observed clock must be monotone and every
event pushed must be popped exactly once (event-count conservation) — these
assert unconditionally, and CI's ``REPRO_STRICT_INVARIANTS=1`` tier runs
them like every other test.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import Environment
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import _HeapTimeline
from repro.sim.process import Interrupt

N_STRUCTURE_SCHEDULES = 800
N_ENGINE_SCHEDULES = 256


# ----------------------------------------------------------------------
# structure level: raw timeline pop-order identity
# ----------------------------------------------------------------------
def _structure_schedule(seed: int):
    """One randomized push/pop schedule, pre-drawn so both timelines see
    byte-identical operations."""
    rng = random.Random(seed)
    ops = []
    for _ in range(rng.randrange(40, 300)):
        if rng.random() < 0.6:
            roll = rng.random()
            if roll < 0.30:
                delay = rng.choice([0.0, 0.0, 0.125, 1.0])  # same-time bursts
            elif roll < 0.90:
                delay = rng.uniform(0.0, 50.0)
            elif roll < 0.97:
                delay = rng.uniform(0.0, 50_000.0)  # far-future outliers
            else:
                delay = float("inf")
            ops.append(("push", delay, rng.randrange(3)))
        else:
            ops.append(("pop",))
    return ops


def _drive_structure(timeline, ops):
    """Apply a schedule to one timeline; returns (popped, pushes)."""
    popped = []
    now = 0.0
    eid = 0
    pushes = 0
    for op in ops:
        if op[0] == "push":
            eid += 1
            pushes += 1
            timeline.push((now + op[1], op[2], eid, f"payload-{eid}"))
        elif timeline:
            entry = timeline.pop()
            popped.append(entry)
            if entry[0] != float("inf"):
                now = entry[0]
    while timeline:
        popped.append(timeline.pop())
    return popped, pushes


@pytest.mark.parametrize("chunk", range(8))
def test_structure_fuzzer_pop_order_identity(chunk):
    """Calendar pops every schedule in exactly the heap's order."""
    per_chunk = N_STRUCTURE_SCHEDULES // 8
    for index in range(per_chunk):
        seed = 10_000 + chunk * per_chunk + index
        ops = _structure_schedule(seed)
        heap_popped, heap_pushes = _drive_structure(_HeapTimeline(), ops)
        cal_popped, cal_pushes = _drive_structure(CalendarQueue(), ops)
        assert cal_popped == heap_popped, f"divergence at schedule seed {seed}"
        # Conservation: every push pops exactly once, on both structures.
        assert heap_pushes == len(heap_popped) == cal_pushes == len(cal_popped)
        # Monotone pop times.  ``inf`` entries are excluded: one can pop
        # while it is momentarily the only entry, after which later pushes
        # add finite times again (the driver's clock does not advance on
        # ``inf``), so only the finite subsequence is monotone.
        times = [entry[0] for entry in cal_popped if entry[0] != float("inf")]
        assert times == sorted(times), f"non-monotone pops at seed {seed}"


# ----------------------------------------------------------------------
# engine level: full-simulation differential fuzzer
# ----------------------------------------------------------------------
def _engine_script(seed: int):
    """Pre-draw a whole randomized simulation (workers + interrupts)."""
    rng = random.Random(seed)
    num_workers = rng.randrange(3, 9)
    workers = []
    for _ in range(num_workers):
        steps = []
        for _ in range(rng.randrange(1, 7)):
            roll = rng.random()
            if roll < 0.40:
                # Plain timeout; coarse grid forces same-timestamp ties.
                steps.append(("timeout", rng.choice([0.0, 0.5, 0.5, 1.0, rng.uniform(0, 4)])))
            elif roll < 0.55:
                # Same-timestamp burst: AllOf over n equal-delay timeouts.
                steps.append(("burst", rng.randrange(2, 5), rng.choice([0.5, 1.0])))
            elif roll < 0.70:
                steps.append(("all_of", [rng.uniform(0, 3) for _ in range(rng.randrange(2, 5))]))
            elif roll < 0.85:
                steps.append(("any_of", [rng.uniform(0, 3) for _ in range(rng.randrange(2, 5))]))
            else:
                # Wait on a bare event a helper process succeeds later.
                steps.append(("helper_event", rng.uniform(0, 3)))
        workers.append(steps)
    interrupts = [
        (rng.randrange(num_workers), rng.uniform(0, 3))
        for _ in range(rng.randrange(0, 3))
    ]
    return workers, interrupts


def _run_engine_script(script, timeline: str):
    """Execute one pre-drawn script; returns (trace, final_now, eids)."""
    workers_steps, interrupts = script
    env = Environment(timeline=timeline)
    trace = []

    def helper(env, event, delay):
        yield env.timeout(delay)
        if not event.triggered:
            event.succeed("helped")

    def worker(env, wid, steps):
        for index, step in enumerate(steps):
            try:
                if step[0] == "timeout":
                    yield env.timeout(step[1])
                elif step[0] == "burst":
                    yield env.all_of([env.timeout(step[2]) for _ in range(step[1])])
                elif step[0] == "all_of":
                    yield env.all_of([env.timeout(d) for d in step[1]])
                elif step[0] == "any_of":
                    # The losing timeouts still fire later: exercises the
                    # already-processed / double-pop no-op paths.
                    yield env.any_of([env.timeout(d) for d in step[1]])
                else:  # helper_event
                    event = env.event()
                    env.process(helper(env, event, step[1]))
                    yield event
                trace.append((env.now, wid, index, step[0]))
            except Interrupt as exc:
                # The interrupt cancels the pending wait (the old target
                # event may still fire afterwards) and the worker moves on.
                trace.append((env.now, wid, index, f"interrupted:{exc.cause}"))
        trace.append((env.now, wid, "done"))

    procs = [env.process(worker(env, wid, steps)) for wid, steps in enumerate(workers_steps)]

    def interrupter(env, target, wid, delay):
        yield env.timeout(delay)
        if target.is_alive:
            target.interrupt(f"stop-{wid}")
            trace.append((env.now, "interrupter", wid))

    for wid, delay in interrupts:
        env.process(interrupter(env, procs[wid], wid, delay))

    env.run()
    return trace, env.now, env._eid


@pytest.mark.parametrize("chunk", range(4))
def test_engine_fuzzer_trace_and_final_state_identity(chunk):
    """Identical scripts produce identical traces under both timelines."""
    per_chunk = N_ENGINE_SCHEDULES // 4
    for index in range(per_chunk):
        seed = 77_000 + chunk * per_chunk + index
        script = _engine_script(seed)
        heap_trace, heap_now, heap_eids = _run_engine_script(script, "heap")
        cal_trace, cal_now, cal_eids = _run_engine_script(script, "calendar")
        assert cal_trace == heap_trace, f"trace divergence at script seed {seed}"
        assert cal_now == heap_now, f"final clock differs at script seed {seed}"
        # Event-count conservation: both engines scheduled the same number
        # of events and drained them all (run() returned with empty queues).
        assert cal_eids == heap_eids, f"event counts differ at script seed {seed}"
        # Clock monotonicity property: observed times never run backwards.
        observed = [entry[0] for entry in heap_trace]
        assert observed == sorted(observed), f"clock ran backwards at seed {seed}"


def test_fuzzer_covers_the_advertised_schedule_count():
    """The module's headline claim: >= 1000 randomized schedules replayed."""
    assert N_STRUCTURE_SCHEDULES + N_ENGINE_SCHEDULES >= 1000


# ----------------------------------------------------------------------
# directed differential cases (the classic heap-vs-calendar traps)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "delays",
    [
        [0.0] * 50,                      # everything at t=0
        [1.0] * 20 + [0.0] * 20,         # two same-time cohorts, pushed interleaved
        [0.5, 0.5, 0.5, 10_000.0, 0.5],  # far-future outlier amid a burst
        [float("inf"), 1.0, float("inf"), 0.0],
        [2.0 ** -20] * 10 + [2.0 ** 20] * 10,  # extreme width spread
    ],
)
def test_directed_schedules_pop_identically(delays):
    heap, cal = _HeapTimeline(), CalendarQueue()
    for eid, delay in enumerate(delays, start=1):
        heap.push((delay, 1, eid, None))
        cal.push((delay, 1, eid, None))
    heap_order = [heap.pop() for _ in range(len(delays))]
    cal_order = [cal.pop() for _ in range(len(delays))]
    assert cal_order == heap_order


def test_interrupted_wait_is_identical_across_timelines():
    """An interrupt cancels a wait whose timeout still fires later; the
    double-scheduled event must be a no-op on both timelines."""

    def run(timeline):
        env = Environment(timeline=timeline)
        log = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
                log.append(("slept", env.now))
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(0.5)
            log.append(("after", env.now))

        proc = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(3.0)
            proc.interrupt("bored")

        env.process(killer(env))
        env.run()
        return log, env.now

    assert run("heap") == run("calendar")
