"""Unit tests for generator-driven processes: results, failures, interrupts."""

import pytest

from repro.sim import Environment, Interrupt, InvalidYield


def test_process_is_alive_until_generator_returns(env):
    def worker(env):
        yield env.timeout(5)

    process = env.process(worker(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_process_return_value_becomes_event_value(env):
    def worker(env):
        yield env.timeout(1)
        return {"answer": 42}

    process = env.process(worker(env))
    env.run()
    assert process.value == {"answer": 42}


def test_process_requires_a_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_is_an_error(env):
    def worker(env):
        yield 5

    env.process(worker(env))
    with pytest.raises(InvalidYield):
        env.run()


def test_exception_in_process_propagates_to_waiter(env):
    def failing(env):
        yield env.timeout(1)
        raise ValueError("inner failure")

    caught = []

    def parent(env):
        try:
            yield env.process(failing(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["inner failure"]


def test_unwaited_process_exception_surfaces_in_run(env):
    def failing(env):
        yield env.timeout(1)
        raise RuntimeError("unobserved")

    env.process(failing(env))
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_interrupt_delivers_cause(env):
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            causes.append((interrupt.cause, env.now))

    def attacker(env, process):
        yield env.timeout(2)
        process.interrupt("because")

    process = env.process(victim(env))
    env.process(attacker(env, process))
    env.run()
    # The interrupt arrives at t=2, long before the 100 s timeout would fire.
    assert causes == [("because", 2.0)]
    assert not process.is_alive


def test_interrupted_process_can_keep_running(env):
    milestones = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            milestones.append(("interrupted", env.now))
        yield env.timeout(5)
        milestones.append(("done", env.now))

    def attacker(env, process):
        yield env.timeout(1)
        process.interrupt()

    process = env.process(victim(env))
    env.process(attacker(env, process))
    env.run()
    assert milestones == [("interrupted", 1.0), ("done", 6.0)]


def test_interrupting_dead_process_raises(env):
    def quick(env):
        yield env.timeout(1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_old_target_does_not_resume_interrupted_process_twice(env):
    resumes = []

    def victim(env):
        try:
            yield env.timeout(3)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
        yield env.timeout(10)
        resumes.append("after")

    def attacker(env, process):
        yield env.timeout(1)
        process.interrupt()

    process = env.process(victim(env))
    env.process(attacker(env, process))
    env.run()
    # The original timeout at t=3 must not wake the process a second time.
    assert resumes == ["interrupt", "after"]


def test_process_waiting_on_already_processed_event(env):
    def worker(env):
        timeout = env.timeout(1)
        yield env.timeout(2)
        value = yield timeout  # already processed by now
        return value

    def parent(env):
        result = yield env.process(worker(env))
        return result

    process = env.process(parent(env))
    env.run()
    assert not process.is_alive
