"""Tests for the routed network: bit-identity, contention, fault refit."""

import pytest

from repro.net import NetConfig, RoutedNetwork, build_routed_network
from repro.network import Network, default_topology
from repro.sim import Environment, Store

REGIONS = ("us", "eu", "asia")


def _legacy(seed=0, jitter=0.05):
    env = Environment()
    return Network(env, default_topology(), jitter_fraction=jitter, seed=seed)


def _routed(seed=0, jitter=0.05, **config_kwargs):
    env = Environment()
    return build_routed_network(
        env,
        NetConfig(**config_kwargs),
        default_topology(),
        jitter_fraction=jitter,
        seed=seed,
    )


# ----------------------------------------------------------------------
# the bit-identity contract (contention off, mesh topology)
# ----------------------------------------------------------------------
def test_mesh_sampling_is_bit_identical_to_legacy():
    legacy, routed = _legacy(seed=3), _routed(seed=3)
    for _ in range(5):
        for src in REGIONS:
            for dst in REGIONS:
                assert legacy.sample_one_way(src, dst) == routed.sample_one_way(src, dst)


def test_mesh_sampling_bit_identical_under_spike_and_degrade():
    legacy, routed = _legacy(seed=7), _routed(seed=7)
    for network in (legacy, routed):
        network.add_link_extra_latency("us", "eu", 0.05)
        network.add_link_degrade(
            "us", "eu", loss_probability=0.2, extra_jitter_fraction=0.4
        )
    # Same floats AND the same fault-RNG stream consumption (jitter draws
    # and loss draws interleave identically).
    for _ in range(20):
        assert legacy.sample_one_way("us", "eu") == routed.sample_one_way("us", "eu")
        assert legacy._message_lost("us", "eu") == routed._message_lost("us", "eu")


def test_mesh_delivery_bit_identical_to_legacy():
    results = []
    for make in (_legacy, _routed):
        network = make(seed=5)
        inbox = Store(network.env)
        arrivals = []

        def consume(env=network.env, inbox=inbox, arrivals=arrivals):
            while True:
                item = yield inbox.get()
                arrivals.append((env.now, item))

        network.env.process(consume())
        for index in range(10):
            network.deliver(index, "us", "eu", inbox, extra_delay=0.01 * index)
        network.env.run(until=10.0)
        results.append(arrivals)
    assert results[0] == results[1]


def test_contention_off_is_default():
    routed = _routed()
    assert not routed.contention_enabled
    assert isinstance(routed, RoutedNetwork)


# ----------------------------------------------------------------------
# multi-hop fault composition (spike + degrade on one path)
# ----------------------------------------------------------------------
def test_spike_and_degrade_compose_additively_per_edge_and_revert_either_order():
    # jitter off so samples are exact sums.
    base = _routed(jitter=0.0, topology="backbone")
    path = base.route("us", "eu")
    assert path == ("us", "wan/north-america", "wan/europe", "eu")
    pristine = base.sample_one_way("us", "eu")
    assert pristine == pytest.approx(0.075)

    for revert_order in ("spike-first", "degrade-first"):
        network = _routed(jitter=0.0, topology="backbone")
        # A latency spike on the access edge and a (jitter-only) degrade on
        # the backbone edge: different edges, same us->eu path.
        network.add_link_extra_latency("us", "wan/north-america", 0.010)
        network.add_link_degrade(
            "wan/north-america", "wan/europe",
            loss_probability=0.0, extra_jitter_fraction=0.5,
        )
        sample = network.sample_one_way("us", "eu")
        # Spike applies on its edge; degrade jitter inflates its own edge by
        # at most 50% of that edge's (spiked) latency.
        backbone_leg = network.graph.latency("wan/north-america", "wan/europe")
        assert sample >= pristine + 0.010
        assert sample <= pristine + 0.010 + 0.5 * backbone_leg + 1e-12

        # A second spike on the same access edge stacks additively.
        network.add_link_extra_latency("us", "wan/north-america", 0.007)
        network._link_extra_jitter.clear()  # isolate the additive check
        assert network.sample_one_way("us", "eu") == pytest.approx(pristine + 0.017)
        network.remove_link_extra_latency("us", "wan/north-america", 0.007)

        reverts = [
            lambda n: n.remove_link_extra_latency("us", "wan/north-america", 0.010),
            lambda n: n.remove_link_degrade(
                "wan/north-america", "wan/europe",
                loss_probability=0.0, extra_jitter_fraction=0.5,
            ),
        ]
        if revert_order == "degrade-first":
            reverts.reverse()
        for revert in reverts:
            revert(network)
        # Clean revert: every surcharge table empty, samples pristine.
        assert network.sample_one_way("us", "eu") == pristine
        assert not network._extra_latency
        assert not network._link_extra_jitter
        assert not network._link_loss


def test_multi_hop_loss_draws_per_lossy_edge():
    network = _routed(jitter=0.0, topology="backbone", seed=11)
    network.add_link_degrade(
        "wan/north-america", "wan/europe", loss_probability=0.5,
        extra_jitter_fraction=0.0,
    )
    losses = [network._message_lost("us", "eu") for _ in range(200)]
    assert 40 < sum(losses) < 160  # draws happen, per seed, roughly p=0.5
    # The asia path never crosses the degraded edge: no draws, never lost.
    assert not any(network._message_lost("us", "asia") for _ in range(50))


# ----------------------------------------------------------------------
# partitions, edge downs, route events
# ----------------------------------------------------------------------
def test_partition_is_a_graph_cut_with_route_events():
    network = _routed(topology="backbone")
    network.set_link_blocked("us", "eu", True)
    assert not network.reachable("us", "eu")
    assert network.link_blocked("us", "eu")
    events = [event.as_tuple() for event in network.route_events]
    # Sorted pair order within the re-convergence; both directions cut.
    assert [(e[1], e[2], e[3], e[5]) for e in events] == [
        ("partition", "eu", "us", None),
        ("partition", "us", "eu", None),
    ]
    # Third-party routes survive.
    assert network.reachable("us", "asia")
    assert network.reachable("eu", "asia")

    network.set_link_blocked("us", "eu", False)
    assert network.reachable("us", "eu")
    heals = [event for event in network.route_events if event.reason == "heal"]
    assert len(heals) == 2
    assert all(event.old_path is None and event.new_path for event in heals)


def test_unreachable_pair_drops_messages_until_heal():
    network = _routed(topology="backbone")
    inbox = Store(network.env)
    network.set_link_blocked("us", "eu", True)
    network.deliver("lost", "us", "eu", inbox)
    assert network.dropped_messages == 1
    network.set_link_blocked("us", "eu", False)
    network.deliver("found", "us", "eu", inbox)
    network.env.run(until=1.0)
    assert list(inbox.items) == ["found"]


def test_edge_down_reroutes_on_redundant_backbone():
    network = _routed(topology="backbone", topology_args=(("redundancy", 2),))
    assert network.route("us", "eu") == ("us", "wan/north-america/a", "wan/europe/a", "eu")
    network.set_edge_down("wan/north-america/a", "wan/europe/a")
    # Still reachable: the policy re-converged onto the surviving plane.
    assert network.reachable("us", "eu")
    assert "wan/north-america/b" in network.route("us", "eu")
    assert any(event.reason == "link-down" for event in network.route_events)

    network.set_edge_down("wan/north-america/a", "wan/europe/a", False)
    assert network.route("us", "eu") == ("us", "wan/north-america/a", "wan/europe/a", "eu")
    assert any(event.reason == "link-up" for event in network.route_events)


def test_edge_down_unknown_edge_raises():
    network = _routed(topology="backbone")
    with pytest.raises(KeyError, match="'us' -> 'eu'"):
        network.set_edge_down("us", "eu")


def test_edge_downs_are_refcounted():
    network = _routed(topology="backbone", topology_args=(("redundancy", 2),))
    edge = ("wan/north-america/a", "wan/europe/a")
    network.set_edge_down(*edge)
    network.set_edge_down(*edge)
    network.set_edge_down(*edge, False)
    # One down remains: still routed around.
    assert "wan/north-america/b" in network.route("us", "eu")
    network.set_edge_down(*edge, False)
    assert network.route("us", "eu") == ("us", "wan/north-america/a", "wan/europe/a", "eu")


def test_disconnected_topology_rejected_at_build():
    from repro.net import WanGraph
    from repro.net.routing import ShortestPathRouting

    graph = WanGraph(default_topology())
    graph.add_edge("us", "eu", 0.075)  # asia left unconnected
    with pytest.raises(ValueError, match="asia"):
        RoutedNetwork(Environment(), graph, ShortestPathRouting())


# ----------------------------------------------------------------------
# bandwidth contention
# ----------------------------------------------------------------------
def _contended(bandwidth, seed=0):
    return _routed(
        seed=seed,
        jitter=0.0,
        topology="backbone",
        wan_bandwidth_bytes_per_s=bandwidth,
        request_bytes_per_token=2.0,
        kv_bytes_per_token=64.0,
    )


def _arrivals(network, sends):
    inbox = Store(network.env)
    arrivals = []

    def consume():
        while True:
            item = yield inbox.get()
            arrivals.append((network.env.now, item))

    network.env.process(consume())
    for item, src, dst, size in sends:
        network.deliver(item, src, dst, inbox, size_bytes=size)
    network.env.run(until=60.0)
    return arrivals


def test_concurrent_messages_serialise_through_a_shared_edge():
    # 1000 B/s backbone edge: a 1000 B message occupies it for a full
    # second; the 100 B message behind it waits, then transmits 0.1 s.
    arrivals = _arrivals(
        _contended(1000.0),
        [("big", "us", "eu", 1000.0), ("small", "us", "eu", 100.0)],
    )
    assert [item for _, item in arrivals] == ["big", "small"]
    t_big, t_small = arrivals[0][0], arrivals[1][0]
    assert t_big == pytest.approx(0.075 + 1.0)
    # FIFO: small waited for big's transmission, then paid its own.
    assert t_small == pytest.approx(0.075 + 1.0 + 0.1)


def test_uncontended_edges_do_not_serialise():
    arrivals = _arrivals(
        _contended(0.0),
        [("big", "us", "eu", 1000.0), ("small", "us", "eu", 100.0)],
    )
    assert not _contended(0.0).contention_enabled
    for t, _ in arrivals:
        assert t == pytest.approx(0.075)


def test_distinct_edges_do_not_contend():
    # us->eu and asia->eu cross different backbone edges: no queueing.
    arrivals = _arrivals(
        _contended(1000.0),
        [("a", "us", "eu", 1000.0), ("b", "asia", "eu", 1000.0)],
    )
    times = sorted(t for t, _ in arrivals)
    assert times[0] == pytest.approx(0.075 + 1.0)
    assert times[1] == pytest.approx(0.100 + 1.0)


def test_zero_size_messages_still_queue_fifo():
    # A zero-byte message behind a large transfer waits for it (shared
    # FIFO), even though its own transmission is instant.
    arrivals = _arrivals(
        _contended(1000.0),
        [("big", "us", "eu", 1000.0), ("probe", "us", "eu", 0.0)],
    )
    assert [item for _, item in arrivals] == ["big", "probe"]
    assert arrivals[1][0] == pytest.approx(0.075 + 1.0)


def test_wire_sizes_come_from_config():
    network = _contended(1000.0)

    class FakeRequest:
        prompt_tokens = tuple(range(10))
        prompt_len = 10
        generated_tokens = 5
        output_len = 7

    assert network.request_wire_bytes(FakeRequest()) == 20.0
    assert network.push_wire_bytes(100) == 6400.0
    assert network.push_wire_bytes(-3) == 0.0
    assert network.response_wire_bytes(FakeRequest()) == 10.0


def test_netconfig_validation():
    with pytest.raises(ValueError, match="wan_bandwidth_bytes_per_s"):
        NetConfig(wan_bandwidth_bytes_per_s=-1.0)
    with pytest.raises(ValueError, match="request_bytes_per_token"):
        NetConfig(request_bytes_per_token=-1.0)
    with pytest.raises(ValueError, match="topology_args"):
        NetConfig(topology_args=("not-a-pair",))
