"""Unit tests for the WAN graph and its topology-builder registry."""

import pytest

from repro.net import (
    WanGraph,
    make_wan_topology,
    register_wan_topology,
    registered_wan_topologies,
)
from repro.net.graph import _WAN_TOPOLOGIES
from repro.network import default_topology, wide_topology


def test_graph_nodes_start_as_the_regions():
    graph = WanGraph(default_topology())
    assert set(graph.nodes()) == {"us", "eu", "asia"}
    assert graph.router_names() == []


def test_add_router_and_edge():
    graph = WanGraph(default_topology())
    graph.add_router("wan/core")
    graph.add_edge("us", "wan/core", 0.002)
    assert graph.has_edge("us", "wan/core")
    assert graph.has_edge("wan/core", "us")  # symmetric by default
    assert graph.latency("us", "wan/core") == 0.002


def test_duplicate_router_rejected():
    graph = WanGraph(default_topology())
    graph.add_router("wan/core")
    with pytest.raises(ValueError, match="'wan/core'"):
        graph.add_router("wan/core")
    with pytest.raises(ValueError, match="'us'"):
        graph.add_router("us")


def test_edge_validation_names_the_edge():
    graph = WanGraph(default_topology())
    with pytest.raises(ValueError, match="'us' -> 'us'"):
        graph.add_edge("us", "us", 0.001)
    with pytest.raises(ValueError, match="'mars'"):
        graph.add_edge("us", "mars", 0.001)
    with pytest.raises(ValueError, match="'us' -> 'eu'"):
        graph.add_edge("us", "eu", -0.1)
    with pytest.raises(ValueError, match="bandwidth"):
        graph.add_edge("us", "eu", 0.1, bandwidth_bytes_per_s=-1.0)
    graph.add_edge("us", "eu", 0.075)
    with pytest.raises(ValueError, match="already"):
        graph.add_edge("us", "eu", 0.075)


def test_missing_edge_lookup_names_the_edge():
    graph = WanGraph(default_topology())
    with pytest.raises(KeyError, match="'us' -> 'eu'"):
        graph.link("us", "eu")
    with pytest.raises(KeyError, match="'mars'"):
        graph.neighbors("mars")


def test_neighbors_are_sorted():
    graph = WanGraph(default_topology())
    graph.add_edge("us", "eu", 0.075, symmetric=False)
    graph.add_edge("us", "asia", 0.090, symmetric=False)
    assert graph.neighbors("us") == ["asia", "eu"]


def test_finite_bandwidth_flag():
    graph = WanGraph(default_topology())
    graph.add_edge("us", "eu", 0.075)
    assert not graph.has_finite_bandwidth
    graph.add_edge("us", "asia", 0.090, bandwidth_bytes_per_s=1e9)
    assert graph.has_finite_bandwidth


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def test_builtin_topologies_registered():
    assert "mesh" in registered_wan_topologies()
    assert "backbone" in registered_wan_topologies()


def test_mesh_mirrors_the_latency_matrix():
    regions = default_topology()
    graph = make_wan_topology("mesh", regions)
    for (src, dst), latency in regions.links().items():
        assert graph.latency(src, dst) == latency
    assert graph.router_names() == []
    assert not graph.has_finite_bandwidth


def test_backbone_routes_track_the_matrix():
    regions = default_topology()
    graph = make_wan_topology("backbone", regions)
    # One router per continent; each region attaches to its continent's.
    assert sorted(graph.router_names()) == ["wan/asia", "wan/europe", "wan/north-america"]
    assert graph.has_edge("us", "wan/north-america")
    # Access + backbone + access reconstructs the matrix latency.
    end_to_end = (
        graph.latency("us", "wan/north-america")
        + graph.latency("wan/north-america", "wan/europe")
        + graph.latency("wan/europe", "eu")
    )
    assert end_to_end == pytest.approx(regions.one_way("us", "eu"))


def test_backbone_bandwidth_applies_to_backbone_edges_only():
    graph = make_wan_topology("backbone", default_topology(), wan_bandwidth_bytes_per_s=1e8)
    assert graph.link("wan/north-america", "wan/europe").bandwidth_bytes_per_s == 1e8
    assert graph.link("us", "wan/north-america").bandwidth_bytes_per_s == 0.0


def test_backbone_redundancy_two_wires_parallel_planes():
    graph = make_wan_topology("backbone", default_topology(), redundancy=2)
    assert "wan/north-america/a" in graph.router_names()
    assert "wan/north-america/b" in graph.router_names()
    assert graph.has_edge("wan/north-america/a", "wan/north-america/b")
    with pytest.raises(ValueError, match="redundancy"):
        make_wan_topology("backbone", default_topology(), redundancy=3)


def test_backbone_handles_multi_region_continents():
    graph = make_wan_topology("backbone", wide_topology())
    # Three continents, every region attached.
    assert len(graph.router_names()) == 3
    for region in wide_topology().region_names():
        assert any(graph.has_edge(region, router) for router in graph.router_names())


def test_register_wan_topology_rejects_duplicates_and_supports_custom():
    with pytest.raises(ValueError):
        register_wan_topology("mesh")(lambda regions, **kwargs: WanGraph(regions))

    @register_wan_topology("test-star")
    def build_star(regions, *, wan_bandwidth_bytes_per_s=0.0):
        graph = WanGraph(regions)
        graph.add_router("hub")
        for name in sorted(regions.region_names()):
            graph.add_edge(name, "hub", 0.01, bandwidth_bytes_per_s=wan_bandwidth_bytes_per_s)
        return graph

    try:
        graph = make_wan_topology("test-star", default_topology(), wan_bandwidth_bytes_per_s=5.0)
        assert graph.latency("us", "hub") == 0.01
        assert graph.link("us", "hub").bandwidth_bytes_per_s == 5.0
    finally:
        _WAN_TOPOLOGIES.unregister("test-star")
