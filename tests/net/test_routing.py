"""Unit tests for routing policies: determinism, tie-breaks, fallbacks."""

import pytest

from repro.net import (
    WanGraph,
    make_routing_policy,
    register_routing_policy,
    registered_routing_policies,
)
from repro.net.routing import _ROUTING_POLICIES
from repro.network import NetworkTopology, RegionInfo


def _diamond():
    """a -> {upper, lower} -> b, with the upper path strictly cheaper."""
    regions = NetworkTopology([RegionInfo("a", 0), RegionInfo("b", 0)], {})
    graph = WanGraph(regions)
    graph.add_router("upper")
    graph.add_router("lower")
    graph.add_edge("a", "upper", 0.01)
    graph.add_edge("upper", "b", 0.01)
    graph.add_edge("a", "lower", 0.02)
    graph.add_edge("lower", "b", 0.02)
    return graph


def _equal_cost_diamond():
    """Two exactly equal-cost paths: the (cost, name) tie-break must pick
    the lexicographically smaller router deterministically."""
    regions = NetworkTopology([RegionInfo("a", 0), RegionInfo("b", 0)], {})
    graph = WanGraph(regions)
    for router in ("m", "k"):  # insertion order deliberately non-sorted
        graph.add_router(router)
        graph.add_edge("a", router, 0.01)
        graph.add_edge(router, "b", 0.01)
    return graph


def test_builtin_policies_registered():
    names = registered_routing_policies()
    assert "shortest-path" in names
    assert "static-route" in names
    assert "cost-weighted" in names


def test_shortest_path_picks_cheapest():
    policy = make_routing_policy("shortest-path")
    assert policy.compute_path(_diamond(), "a", "b") == ("a", "upper", "b")


def test_shortest_path_same_node_is_trivial():
    policy = make_routing_policy("shortest-path")
    assert policy.compute_path(_diamond(), "a", "a") == ("a",)


def test_shortest_path_tie_break_is_lexicographic():
    policy = make_routing_policy("shortest-path")
    # Both paths cost 0.02; 'k' < 'm' so the k-path wins -- regardless of
    # the order the routers were inserted in.
    assert policy.compute_path(_equal_cost_diamond(), "a", "b") == ("a", "k", "b")


def test_shortest_path_routes_around_down_edges():
    policy = make_routing_policy("shortest-path")
    graph = _diamond()
    down = frozenset({("a", "upper"), ("upper", "a")})
    assert policy.compute_path(graph, "a", "b", down) == ("a", "lower", "b")


def test_shortest_path_returns_none_when_cut():
    policy = make_routing_policy("shortest-path")
    graph = _diamond()
    down = frozenset({("a", "upper"), ("a", "lower")})
    assert policy.compute_path(graph, "a", "b", down) is None


def test_static_route_pins_a_path_and_falls_back():
    policy = make_routing_policy(
        "static-route", routes={("a", "b"): ("a", "lower", "b")}
    )
    graph = _diamond()
    # Pinned: takes the (more expensive) lower path.
    assert policy.compute_path(graph, "a", "b") == ("a", "lower", "b")
    # Reverse direction has no pin: shortest-path fallback.
    assert policy.compute_path(graph, "b", "a") == ("b", "upper", "a")
    # Pinned path crosses a downed edge: falls back to shortest-path.
    down = frozenset({("lower", "b")})
    assert policy.compute_path(graph, "a", "b", down) == ("a", "upper", "b")


def test_static_route_validates_endpoints():
    with pytest.raises(ValueError, match="static route"):
        make_routing_policy("static-route", routes={("a", "b"): ("a", "x", "c")})


def test_cost_weighted_hop_penalty_prefers_fewer_hops():
    regions = NetworkTopology(
        [RegionInfo("a", 0), RegionInfo("b", 0)], {("a", "b"): 0.05}
    )
    graph = WanGraph(regions)
    graph.add_edge("a", "b", 0.05)
    graph.add_router("detour")
    graph.add_edge("a", "detour", 0.02)
    graph.add_edge("detour", "b", 0.02)
    # Pure latency: the 2-hop detour (0.04) beats the direct edge (0.05).
    assert make_routing_policy("shortest-path").compute_path(graph, "a", "b") == (
        "a",
        "detour",
        "b",
    )
    assert make_routing_policy("cost-weighted", hop_penalty_s=0.0).compute_path(
        graph, "a", "b"
    ) == ("a", "detour", "b")
    # A hop penalty flips the choice to the direct edge.
    assert make_routing_policy("cost-weighted", hop_penalty_s=0.02).compute_path(
        graph, "a", "b"
    ) == ("a", "b")
    with pytest.raises(ValueError, match="hop_penalty_s"):
        make_routing_policy("cost-weighted", hop_penalty_s=-1.0)


def test_register_routing_policy_extension_point():
    @register_routing_policy("test-reverse-alphabetic")
    class ReverseAlphabetic:
        def compute_path(self, graph, src, dst, down_edges=frozenset()):
            return (src, dst) if graph.has_edge(src, dst) else None

    try:
        policy = make_routing_policy("test-reverse-alphabetic")
        graph = _diamond()
        assert policy.compute_path(graph, "a", "upper") == ("a", "upper")
    finally:
        _ROUTING_POLICIES.unregister("test-reverse-alphabetic")
