"""Route re-convergence determinism: serial == workers=2 == forced spawn.

The routed network's ``route_changed`` event sequence is part of the
deterministic run payload: a partition -> heal replay (plus explicit
link-down/link-up faults on backbone edges) must produce identical event
tuples whether the cell runs in-process, in a forked worker pool, or in a
forced-``spawn`` pool that re-imports everything from scratch.
"""

import multiprocessing

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    SweepExecutor,
    SweepTask,
    build_tot_workload,
)
from repro.faults import FaultSchedule, LinkDown, LinkUp, RegionPartition
from repro.net import NetConfig, run_route_trace
from repro.replica import TINY_TEST_PROFILE

_NET = NetConfig(topology="backbone", topology_args=(("redundancy", 2),))

_FAULTS = (
    FaultSchedule.single(5.0, RegionPartition(a="us", b="eu", duration_s=10.0))
    .add(8.0, LinkDown(a="wan/north-america/a", b="wan/europe/a", duration_s=6.0))
    .add(20.0, LinkDown(a="wan/asia/a", b="wan/europe/a"))
    .add(24.0, LinkUp(a="wan/asia/a", b="wan/europe/a"))
)


def _task(seed):
    return SweepTask(
        system=REGISTRY.spec("skywalker"),
        workload=build_tot_workload(scale=0.06, seed=2),
        cluster=ClusterConfig(
            replicas_per_region={"us": 1, "eu": 1, "asia": 1},
            profile=TINY_TEST_PROFILE,
            network=_NET,
        ),
        duration_s=30.0,
        seed=seed,
        faults=_FAULTS,
    )


def _traces(executor):
    return executor.map(run_route_trace, [_task(1), _task(2)])


def test_route_trace_has_the_expected_shape():
    (trace, _) = _traces(SweepExecutor(workers=1))
    assert trace  # events actually fired
    reasons = [event[1] for event in trace]
    assert set(reasons) == {"partition", "heal", "link-down", "link-up"}
    # Partition fires at t=5, heals at t=15; link faults at 8/14 and 20/24.
    times = {event[1]: event[0] for event in trace}
    assert times["heal"] == 15.0
    # Every event names an ordered (src, dst) region pair and the heal
    # restores a concrete path where the partition left None.
    for time, reason, src, dst, old_path, new_path in trace:
        assert src != dst
        if reason == "partition":
            assert new_path is None
        if reason == "heal":
            assert old_path is None and new_path is not None


def test_reconvergence_trace_identical_serial_fork_and_spawn():
    serial = _traces(SweepExecutor(workers=1))
    forked = _traces(SweepExecutor(workers=2))
    spawned = _traces(
        SweepExecutor(workers=2, mp_context=multiprocessing.get_context("spawn"))
    )
    assert forked == serial
    assert spawned == serial
    # Distinct seeds agree on the route trace too: route changes depend on
    # the fault schedule and topology, not on traffic randomness.
    assert serial[0] == serial[1]
