"""Unit tests for the analytical model profiles."""

import pytest

from repro.replica import LLAMA_8B_A100, LLAMA_8B_L4, TINY_TEST_PROFILE, ModelProfile


def test_l4_profile_matches_paper_prefill_number():
    # §2.1: a 512-token prompt takes roughly 300 ms on the L4.
    assert LLAMA_8B_L4.prefill_time(512) == pytest.approx(0.32, abs=0.05)


def test_prefill_time_is_monotonic_in_tokens():
    previous = 0.0
    for tokens in (1, 16, 128, 512, 2048):
        current = LLAMA_8B_L4.prefill_time(tokens)
        assert current > previous
        previous = current


def test_prefill_of_fully_cached_prompt_is_one_step():
    fully_cached = LLAMA_8B_L4.prefill_time(0)
    assert 0 < fully_cached < LLAMA_8B_L4.prefill_time(64)


def test_prefill_rejects_negative_tokens():
    with pytest.raises(ValueError):
        LLAMA_8B_L4.prefill_time(-1)


def test_decode_step_grows_with_batch_and_context():
    small = LLAMA_8B_L4.decode_step_time(1, 500)
    larger_batch = LLAMA_8B_L4.decode_step_time(16, 500)
    larger_context = LLAMA_8B_L4.decode_step_time(1, 50_000)
    assert larger_batch > small
    assert larger_context > small


def test_decode_step_requires_a_sequence():
    with pytest.raises(ValueError):
        LLAMA_8B_L4.decode_step_time(0, 0)


def test_kv_capacity_supports_tens_of_concurrent_requests():
    # §3.3: the L4 replica hosts roughly 20-50 outstanding requests whose
    # combined footprint is a few thousand tokens each.
    capacity = LLAMA_8B_L4.kv_capacity_tokens
    assert 20_000 < capacity < 200_000


def test_a100_is_faster_and_larger_than_l4():
    assert LLAMA_8B_A100.prefill_time(512) < LLAMA_8B_L4.prefill_time(512)
    assert LLAMA_8B_A100.kv_capacity_tokens > LLAMA_8B_L4.kv_capacity_tokens


def test_tokens_to_bytes_roundtrip():
    assert LLAMA_8B_L4.tokens_to_bytes(10) == 10 * LLAMA_8B_L4.kv_bytes_per_token


def test_profile_with_oversized_weights_is_rejected():
    profile = ModelProfile(
        name="broken",
        prefill_base_s=0.01,
        prefill_per_token_s=0.001,
        decode_base_s=0.01,
        decode_per_seq_s=0.001,
        decode_per_kilotoken_s=0.001,
        kv_bytes_per_token=1,
        gpu_memory_bytes=100,
        weight_memory_bytes=200,
    )
    with pytest.raises(ValueError):
        _ = profile.kv_capacity_tokens


def test_tiny_profile_is_small_enough_to_stress_memory():
    assert TINY_TEST_PROFILE.kv_capacity_tokens < 5_000
