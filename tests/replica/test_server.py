"""Integration-style tests for the replica server simulation process."""

import pytest

from repro.replica import LLAMA_8B_L4, ReplicaServer, TINY_TEST_PROFILE

from ..conftest import make_request


def drive(env, replica, requests, until=200.0):
    """Submit requests at t=0 and run the simulation."""
    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            request.lb_arrival_time = env.now
            yield replica.submit(request)

    env.process(feeder(env))
    env.run(until=until)


def test_single_request_completes_with_sane_timestamps(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    done = []
    replica.add_completion_listener(done.append)
    request = make_request(prompt_len=40, output_len=5)
    drive(env, replica, [request])
    assert done == [request]
    assert request.finished
    assert request.first_token_time is not None
    assert request.finish_time >= request.first_token_time
    assert request.schedule_time >= request.replica_arrival_time
    assert request.generated_tokens == 5
    assert request.replica_name == "us/r0"
    assert request.serving_region == "us"


def test_first_token_listener_fires_before_completion(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    events = []
    replica.add_first_token_listener(lambda r: events.append(("first", env.now)))
    replica.add_completion_listener(lambda r: events.append(("done", env.now)))
    drive(env, replica, [make_request(prompt_len=30, output_len=4)])
    assert [kind for kind, _ in events] == ["first", "done"]
    assert events[0][1] <= events[1][1]


def test_requests_with_longer_output_take_longer(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    short = make_request(prompt_len=20, output_len=2)
    long = make_request(prompt_len=20, output_len=40)
    drive(env, replica, [short, long])
    assert short.e2e_latency < long.e2e_latency


def test_prefix_sharing_reduces_ttft(env):
    replica = ReplicaServer(env, "us/r0", "us", LLAMA_8B_L4)
    shared = tuple(range(900_000, 900_800))
    cold = make_request(prompt_len=1000, prefix=shared, output_len=1)
    warm = make_request(prompt_len=1000, prefix=shared, output_len=1)
    done = []
    replica.add_completion_listener(done.append)

    def feeder(env):
        cold.sent_time = env.now
        cold.lb_arrival_time = env.now
        yield replica.submit(cold)
        yield env.timeout(10)
        warm.sent_time = env.now
        warm.lb_arrival_time = env.now
        yield replica.submit(warm)

    env.process(feeder(env))
    env.run(until=100)
    assert len(done) == 2
    assert warm.cached_prefix_tokens >= 700
    assert warm.ttft < cold.ttft


def test_pending_queue_builds_under_memory_pressure(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big_prompt = capacity - TINY_TEST_PROFILE.admission_output_reserve
    requests = [
        make_request(prompt_len=big_prompt, output_len=200),
        make_request(prompt_len=big_prompt, output_len=200),
    ]

    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            request.lb_arrival_time = env.now
            yield replica.submit(request)

    env.process(feeder(env))
    env.run(until=0.5)
    # The second request cannot be admitted while the first occupies memory.
    assert replica.num_pending >= 1
    assert not replica.has_capacity


def test_has_capacity_when_idle(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    env.run(until=0.1)
    assert replica.has_capacity
    assert replica.num_outstanding == 0


def test_fail_aborts_outstanding_work_and_rejects_new(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    request = make_request(prompt_len=30, output_len=500)

    def feeder(env):
        request.sent_time = env.now
        request.lb_arrival_time = env.now
        yield replica.submit(request)
        yield env.timeout(1.0)
        aborted = replica.fail()
        assert request in aborted

    env.process(feeder(env))
    env.run(until=5.0)
    assert not replica.healthy
    assert request.status == "failed"
    with pytest.raises(RuntimeError):
        replica.submit(make_request())


def test_recover_restores_service(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    done = []
    replica.add_completion_listener(done.append)

    def scenario(env):
        yield env.timeout(0.1)
        replica.fail()
        yield env.timeout(0.1)
        replica.recover()
        request = make_request(prompt_len=20, output_len=2)
        request.sent_time = env.now
        request.lb_arrival_time = env.now
        yield replica.submit(request)

    env.process(scenario(env))
    env.run(until=20.0)
    assert len(done) == 1
    assert replica.healthy


def test_utilization_samples_recorded_when_enabled(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE, record_utilization=True)
    drive(env, replica, [make_request(prompt_len=30, output_len=10)])
    assert replica.stats.utilization_samples
    times = [t for t, _ in replica.stats.utilization_samples]
    assert times == sorted(times)
    assert all(0.0 <= u <= 1.0 for _, u in replica.stats.utilization_samples)


def test_stats_accumulate_busy_time(env):
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    drive(env, replica, [make_request(prompt_len=30, output_len=10)])
    assert replica.stats.steps > 0
    assert replica.stats.busy_time > 0
    assert replica.stats.prefill_time > 0
    assert replica.stats.decode_time > 0
