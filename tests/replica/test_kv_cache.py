"""Unit tests for the radix KV prefix cache."""

import pytest

from repro.replica import RadixCache


def seq(*values):
    return tuple(values)


def test_empty_cache_matches_nothing():
    cache = RadixCache()
    result = cache.match_prefix(seq(1, 2, 3))
    assert result.matched_tokens == 0
    assert result.nodes == []


def test_insert_then_match_full_sequence():
    cache = RadixCache()
    added = cache.insert(seq(1, 2, 3, 4))
    assert added == 4
    result = cache.match_prefix(seq(1, 2, 3, 4))
    assert result.matched_tokens == 4
    assert cache.total_tokens == 4


def test_partial_prefix_match():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4, 5))
    result = cache.match_prefix(seq(1, 2, 3, 9, 9))
    assert result.matched_tokens == 3


def test_shared_prefix_is_stored_once():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4))
    cache.insert(seq(1, 2, 3, 7, 8))
    # 4 tokens for the first insert, 2 new for the divergent suffix.
    assert cache.total_tokens == 6


def test_insert_is_idempotent_for_identical_sequences():
    cache = RadixCache()
    cache.insert(seq(5, 6, 7))
    added = cache.insert(seq(5, 6, 7))
    assert added == 0
    assert cache.total_tokens == 3


def test_edge_split_preserves_matches():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4, 5, 6))
    cache.insert(seq(1, 2, 3, 9))
    for probe, expected in [
        (seq(1, 2, 3, 4, 5, 6), 6),
        (seq(1, 2, 3, 9), 4),
        (seq(1, 2, 3), 3),
    ]:
        assert cache.match_prefix(probe).matched_tokens == expected
    cache.check_invariants()


def test_capacity_truncates_insert():
    cache = RadixCache(capacity_tokens=5)
    added = cache.insert(seq(1, 2, 3, 4, 5, 6, 7, 8))
    assert added == 5
    assert cache.total_tokens == 5
    cache.check_invariants()


def test_eviction_frees_least_recently_used_leaf():
    cache = RadixCache(capacity_tokens=100)
    cache.insert(seq(1, 2, 3), now=1.0)
    cache.insert(seq(10, 20, 30), now=2.0)
    # Touch the first sequence so the second becomes the LRU leaf.
    cache.match_prefix(seq(1, 2, 3), now=3.0)
    evicted = cache.evict(1, now=4.0)
    assert evicted >= 1
    assert cache.match_prefix(seq(1, 2, 3), record=False).matched_tokens == 3
    assert cache.match_prefix(seq(10, 20, 30), record=False).matched_tokens == 0


def test_locked_paths_are_never_evicted():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4))
    result = cache.match_prefix(seq(1, 2, 3, 4), record=False)
    cache.lock(result.last_node)
    evicted = cache.evict(100)
    assert evicted == 0
    assert cache.total_tokens == 4
    cache.unlock(result.last_node)
    assert cache.evict(100) == 4
    assert cache.total_tokens == 0


def test_unlock_without_lock_raises():
    cache = RadixCache()
    cache.insert(seq(1, 2))
    node = cache.match_prefix(seq(1, 2), record=False).last_node
    with pytest.raises(RuntimeError):
        cache.unlock(node)


def test_lock_survives_edge_split():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4, 5, 6))
    locked = cache.match_prefix(seq(1, 2, 3, 4, 5, 6), record=False).last_node
    cache.lock(locked)
    # Splitting the locked edge must keep the whole original path protected.
    cache.insert(seq(1, 2, 3, 99))
    assert cache.evict(10_000) <= 1  # only the new divergent token is evictable
    assert cache.match_prefix(seq(1, 2, 3, 4, 5, 6), record=False).matched_tokens == 6
    cache.unlock(locked)
    cache.check_invariants()


def test_hit_rate_counters():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3, 4))
    cache.match_prefix(seq(1, 2, 3, 4))
    cache.match_prefix(seq(9, 9, 9, 9))
    assert cache.hit_rate == pytest.approx(0.5)


def test_clear_empties_unlocked_cache():
    cache = RadixCache()
    cache.insert(seq(1, 2, 3))
    cache.insert(seq(4, 5))
    cache.clear()
    assert cache.total_tokens == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        RadixCache(capacity_tokens=0)


def test_path_tokens_reconstructs_sequence():
    cache = RadixCache()
    cache.insert(seq(7, 8, 9, 10))
    node = cache.match_prefix(seq(7, 8, 9, 10), record=False).last_node
    assert node.path_tokens() == seq(7, 8, 9, 10)


def _recount_tokens(cache):
    return sum(
        node.num_tokens for node in cache._iter_nodes() if node.parent is not None
    )


def _recount_evictable(cache):
    return sum(
        node.num_tokens
        for node in cache._iter_nodes()
        if node.parent is not None and node.lock_count == 0
    )


def test_evict_accounting_survives_interleaved_operations():
    """Interleave insert/lock/evict/clear and recount after every step.

    Regression guard for accounting drift in ``total_tokens`` and the O(1)
    ``evictable_tokens`` counter (mirrors ``PrefixTree.check_invariants``):
    each step's running totals must match a full recount of the tree.
    """
    cache = RadixCache(capacity_tokens=64)
    sequences = [
        seq(1, 2, 3, 4, 5, 6),
        seq(1, 2, 3, 9, 9),          # splits the first path
        seq(7, 8),
        seq(1, 2, 3, 4, 5, 6, 7, 8), # extends the first path
        seq(20, 21, 22, 23),
    ]
    locked = []
    now = 0.0
    for step, tokens in enumerate(sequences):
        now += 1.0
        match = cache.match_prefix(tokens, now=now)
        if match.last_node is not None and step % 2 == 0:
            cache.lock(match.last_node)
            locked.append(match.last_node)
        cache.insert(tokens, now=now)
        if step % 2 == 1:
            cache.evict(3, now=now)
        cache.check_invariants()
        assert cache.total_tokens == _recount_tokens(cache)
        assert cache.evictable_tokens() == _recount_evictable(cache)

    # Locked paths must pin their tokens through an eviction storm...
    cache.evict(cache.total_tokens, now=now + 1)
    cache.check_invariants()
    assert cache.total_tokens == _recount_tokens(cache)
    for node in locked:
        assert cache.match_prefix(node.path_tokens(), record=False).matched_tokens > 0

    # ...and unlocking + clear drains the tree completely, with totals intact.
    for node in locked:
        cache.unlock(node)
    cache.check_invariants()
    assert cache.evictable_tokens() == _recount_evictable(cache)
    cache.clear()
    cache.check_invariants()
    assert cache.total_tokens == _recount_tokens(cache) == 0
    assert cache.evictable_tokens() == 0


def test_eviction_order_is_deterministic_under_timestamp_ties():
    """Leaves created at the same sim time evict in the historical DFS-scan
    order, so heap-based eviction reproduces the full-scan implementation."""
    runs = []
    for _ in range(3):
        cache = RadixCache()
        for tokens in (seq(1, 2), seq(3, 4), seq(5, 6), seq(7, 8)):
            cache.insert(tokens, now=5.0)  # all tie on last_access
        order = []
        while True:
            victim = cache._pop_lru_leaf()
            if victim is None:
                break
            order.append(victim.key)
            cache._remove_leaf(victim)
        runs.append(order)
    assert runs[0] == runs[1] == runs[2]
    assert len(runs[0]) == 4
