"""Unit tests for the KV memory manager (admission grants and accounting)."""

import pytest

from repro.replica import KVMemoryManager, TINY_TEST_PROFILE


@pytest.fixture
def memory():
    return KVMemoryManager(TINY_TEST_PROFILE)


def prompt(n, start=0):
    return tuple(range(start, start + n))


def test_admit_grants_cached_and_new_token_counts(memory):
    first = memory.admit(1, prompt(100), now=0.0)
    assert first is not None
    assert first.cached_tokens == 0
    assert first.new_prompt_tokens == 100

    second = memory.admit(2, prompt(120), now=1.0)  # shares the first 100 tokens
    assert second is not None
    assert second.cached_tokens == 100
    assert second.new_prompt_tokens == 20


def test_duplicate_admit_is_rejected(memory):
    memory.admit(1, prompt(10), now=0.0)
    with pytest.raises(ValueError):
        memory.admit(1, prompt(10), now=0.0)


def test_admission_fails_when_memory_is_exhausted(memory):
    capacity = memory.capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    assert memory.admit(1, prompt(big), now=0.0) is not None
    # A second, completely distinct prompt cannot fit while the first runs.
    assert memory.admit(2, prompt(big, start=10_000), now=0.0) is None


def test_release_makes_memory_reusable(memory):
    capacity = memory.capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    assert memory.admit(1, prompt(big), now=0.0) is not None
    memory.release(1, now=1.0)
    # The prefix stays cached but is no longer locked, so a new distinct
    # request can evict it and be admitted.
    assert memory.admit(2, prompt(big, start=10_000), now=2.0) is not None


def test_release_unknown_request_raises(memory):
    with pytest.raises(KeyError):
        memory.release(99, now=0.0)


def test_output_tokens_count_toward_utilization(memory):
    memory.admit(1, prompt(50), now=0.0)
    used_before = memory.used_tokens
    memory.add_output_token(1, count=10)
    assert memory.used_tokens == used_before + 10
    assert memory.context_tokens(1) == 60


def test_add_output_token_requires_running_request(memory):
    with pytest.raises(KeyError):
        memory.add_output_token(123)


def test_utilization_is_bounded(memory):
    memory.admit(1, prompt(200), now=0.0)
    memory.add_output_token(1, count=5)
    assert 0.0 < memory.utilization <= 1.0
    memory.check_invariants()


def test_can_admit_matches_admit_for_fresh_prompts(memory):
    small = prompt(50)
    assert memory.can_admit(small)
    assert memory.admit(1, small, now=0.0) is not None


def test_prefix_cache_disabled_never_reports_cached_tokens():
    memory = KVMemoryManager(TINY_TEST_PROFILE, enable_prefix_cache=False)
    memory.admit(1, prompt(100), now=0.0)
    grant = memory.admit(2, prompt(100), now=1.0)
    assert grant is not None
    assert grant.cached_tokens == 0
    assert grant.new_prompt_tokens == 100
    memory.check_invariants()


def test_cached_output_extends_reusable_prefix(memory):
    full_sequence = prompt(80)
    memory.admit(1, prompt(40), now=0.0)
    memory.release(1, now=1.0, cache_output=True, full_sequence=full_sequence)
    grant = memory.admit(2, full_sequence, now=2.0)
    assert grant is not None
    assert grant.cached_tokens == 80
