"""Property-based tests for the radix KV cache (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.replica import RadixCache

# Small alphabet so random sequences share prefixes often.
token = st.integers(min_value=0, max_value=5)
sequence = st.lists(token, min_size=1, max_size=24).map(tuple)


@given(st.lists(sequence, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_invariants_hold_after_arbitrary_inserts(sequences):
    cache = RadixCache()
    for index, seq in enumerate(sequences):
        cache.insert(seq, now=float(index))
        cache.check_invariants()


@given(st.lists(sequence, min_size=1, max_size=30), sequence)
@settings(max_examples=60, deadline=None)
def test_match_never_exceeds_true_common_prefix(sequences, probe):
    cache = RadixCache()
    for seq in sequences:
        cache.insert(seq)
    matched = cache.match_prefix(probe, record=False).matched_tokens
    best_true = 0
    for seq in sequences:
        common = 0
        for a, b in zip(seq, probe):
            if a != b:
                break
            common += 1
        best_true = max(best_true, common)
    # The cache can never report more overlap than genuinely exists, and an
    # unbounded cache must find the full best overlap.
    assert matched == best_true


@given(st.lists(sequence, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_inserted_sequences_are_fully_matched_when_capacity_unbounded(sequences):
    cache = RadixCache()
    for seq in sequences:
        cache.insert(seq)
    for seq in sequences:
        assert cache.match_prefix(seq, record=False).matched_tokens == len(seq)


@given(st.lists(sequence, min_size=1, max_size=30), st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_capacity_is_never_exceeded(sequences, capacity):
    cache = RadixCache(capacity_tokens=capacity)
    for index, seq in enumerate(sequences):
        needed = len(seq)
        free = cache.capacity_tokens - cache.total_tokens
        if needed > free:
            cache.evict(needed - free, now=float(index))
        cache.insert(seq, now=float(index))
        assert cache.total_tokens <= capacity
        cache.check_invariants()


@given(st.lists(sequence, min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_eviction_of_unlocked_tree_can_reach_zero(sequences):
    cache = RadixCache()
    for seq in sequences:
        cache.insert(seq)
    cache.evict(cache.total_tokens + 10)
    assert cache.total_tokens == 0


@given(st.lists(sequence, min_size=1, max_size=20), st.data())
@settings(max_examples=40, deadline=None)
def test_locked_sequence_survives_eviction(sequences, data):
    cache = RadixCache()
    for seq in sequences:
        cache.insert(seq)
    protected = data.draw(st.sampled_from(sequences))
    node = cache.match_prefix(protected, record=False).last_node
    cache.lock(node)
    cache.evict(cache.total_tokens)
    assert cache.match_prefix(protected, record=False).matched_tokens == len(protected)
    cache.unlock(node)
    cache.check_invariants()
