"""Test package."""
