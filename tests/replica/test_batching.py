"""Unit tests for the continuous-batching scheduler state."""

import pytest

from repro.replica import ContinuousBatcher, TINY_TEST_PROFILE

from ..conftest import make_request


@pytest.fixture
def batcher():
    return ContinuousBatcher(TINY_TEST_PROFILE)


def test_enqueue_makes_request_pending(batcher):
    request = make_request(prompt_len=20, output_len=3)
    batcher.enqueue(request, now=1.0)
    assert batcher.num_pending == 1
    assert batcher.num_running == 0
    assert batcher.num_outstanding == 1
    assert request.replica_arrival_time == 1.0


def test_admit_moves_requests_into_the_batch(batcher):
    for _ in range(3):
        batcher.enqueue(make_request(prompt_len=10, output_len=2), now=0.0)
    admitted = batcher.admit(now=1.0)
    assert len(admitted) == 3
    assert batcher.num_pending == 0
    assert batcher.num_running == 3
    for seq in admitted:
        assert seq.request.schedule_time == 1.0


def test_admission_respects_max_batch_size(batcher):
    for _ in range(TINY_TEST_PROFILE.max_batch_size + 5):
        batcher.enqueue(make_request(prompt_len=4, output_len=2), now=0.0)
    batcher.admit(now=0.0)
    assert batcher.num_running == TINY_TEST_PROFILE.max_batch_size
    assert batcher.num_pending == 5


def test_admission_blocks_on_memory_and_is_fcfs(batcher):
    capacity = batcher.memory.capacity_tokens
    huge = make_request(prompt_len=capacity - TINY_TEST_PROFILE.admission_output_reserve,
                        output_len=2)
    small_a = make_request(prompt_len=10, output_len=2)
    small_b = make_request(prompt_len=10, output_len=2)
    batcher.enqueue(huge, now=0.0)
    batcher.enqueue(small_a, now=0.0)
    batcher.enqueue(small_b, now=0.0)
    admitted = batcher.admit(now=0.0)
    # The huge request fills memory; the small ones wait behind it (FCFS,
    # head-of-line blocking by design).
    assert [seq.request for seq in admitted] == [huge]
    assert batcher.num_pending == 2


def test_plan_step_prefers_prefill_then_decodes(batcher):
    batcher.enqueue(make_request(prompt_len=30, output_len=3), now=0.0)
    plan = batcher.plan_step(now=0.0)
    assert plan.kind == "prefill"
    assert plan.duration > 0
    finished = batcher.complete_prefill(plan.admitted, now=1.0)
    assert finished == []
    next_plan = batcher.plan_step(now=1.0)
    assert next_plan.kind == "decode"


def test_plan_step_idle_when_no_work(batcher):
    assert batcher.plan_step(now=0.0).kind == "idle"


def test_prefill_emits_first_token_and_single_token_requests_finish(batcher):
    one_shot = make_request(prompt_len=12, output_len=1)
    batcher.enqueue(one_shot, now=0.0)
    plan = batcher.plan_step(now=0.0)
    finished = batcher.complete_prefill(plan.admitted, now=2.0)
    assert finished == [one_shot]
    assert one_shot.first_token_time == 2.0
    assert one_shot.finish_time == 2.0
    assert one_shot.finished


def test_decode_steps_finish_requests_in_output_length_order(batcher):
    short = make_request(prompt_len=10, output_len=2)
    long = make_request(prompt_len=10, output_len=4)
    batcher.enqueue(short, now=0.0)
    batcher.enqueue(long, now=0.0)
    plan = batcher.plan_step(now=0.0)
    batcher.complete_prefill(plan.admitted, now=0.5)
    finish_order = []
    clock = 1.0
    while batcher.num_running:
        finish_order.extend(batcher.complete_decode_step(now=clock))
        clock += 1.0
    assert finish_order == [short, long]
    assert short.generated_tokens == 2
    assert long.generated_tokens == 4


def test_finished_requests_release_memory(batcher):
    request = make_request(prompt_len=50, output_len=2)
    batcher.enqueue(request, now=0.0)
    plan = batcher.plan_step(now=0.0)
    batcher.complete_prefill(plan.admitted, now=0.1)
    batcher.complete_decode_step(now=0.2)
    assert batcher.num_running == 0
    assert batcher.memory.num_running == 0


def test_cache_hit_rate_reflects_shared_prefixes(batcher):
    shared = tuple(range(5_000, 5_100))
    first = make_request(prompt_len=120, prefix=shared, output_len=1)
    second = make_request(prompt_len=120, prefix=shared, output_len=1)
    for request in (first, second):
        batcher.enqueue(request, now=0.0)
        plan = batcher.plan_step(now=0.0)
        batcher.complete_prefill(plan.admitted, now=0.1)
    assert batcher.total_cached_tokens >= 100
    assert 0.0 < batcher.cache_hit_rate < 1.0
    assert second.cached_prefix_tokens >= 100


def test_abort_all_fails_everything(batcher):
    running = make_request(prompt_len=10, output_len=5)
    waiting = make_request(prompt_len=10, output_len=5)
    batcher.enqueue(running, now=0.0)
    plan = batcher.plan_step(now=0.0)
    batcher.complete_prefill(plan.admitted, now=0.1)
    batcher.enqueue(waiting, now=0.2)
    aborted = batcher.abort_all(now=0.3)
    assert set(aborted) == {running, waiting}
    assert batcher.num_outstanding == 0
    assert all(r.status == "failed" for r in aborted)
