"""Tests for the request tracker, frontend and clients."""

import pytest

from repro.cluster import ClosedLoopClient, Frontend, OpenLoopClient, RequestTracker
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer
from repro.sim import Environment, Store
from repro.workloads import Program
from repro.workloads.request import Request

from ..conftest import make_request


class StubBalancer:
    """Minimal balancer endpoint: records what it receives."""

    def __init__(self, env, name, region):
        self.env = env
        self.name = name
        self.region = region
        self.inbox = Store(env)


def test_tracker_completes_registered_requests(env):
    tracker = RequestTracker(env)
    request = make_request()
    event = tracker.register(request)
    assert tracker.outstanding == 1
    tracker.complete(request)
    assert event.triggered
    assert tracker.completed == [request]
    assert tracker.outstanding == 0


def test_tracker_fail_also_releases_waiters(env):
    tracker = RequestTracker(env)
    request = make_request()
    event = tracker.register(request)
    tracker.fail(request)
    assert event.triggered
    assert tracker.failed == [request]


def test_frontend_dispatches_to_nearest_balancer(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    us = StubBalancer(env, "lb-us", "us")
    eu = StubBalancer(env, "lb-eu", "eu")
    frontend.register_balancer(us)
    frontend.register_balancer(eu)

    request = make_request(region="eu")
    request.sent_time = 0.0
    frontend.dispatch(request)
    env.run()
    assert len(eu.inbox.items) == 1
    assert len(us.inbox.items) == 0
    assert request.ingress_region == "eu"


def test_frontend_respects_health_state(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    us = StubBalancer(env, "lb-us", "us")
    eu = StubBalancer(env, "lb-eu", "eu")
    frontend.register_balancer(us)
    frontend.register_balancer(eu)
    frontend.set_health("lb-us", False)

    request = make_request(region="us")
    frontend.dispatch(request)
    env.run()
    assert len(eu.inbox.items) == 1


def test_frontend_raises_when_no_balancer_is_healthy(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    with pytest.raises(RuntimeError):
        frontend.dispatch(make_request())


def _make_program(program_id, stages, region="us", user="user-0"):
    return Program(program_id=program_id, user_id=user, region=region, stages=stages)


def test_closed_loop_client_waits_for_each_stage(env):
    """Stage k+1 must not be issued before stage k's responses returned."""
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    replica = ReplicaServer(env, "us/r0", "us", TINY_TEST_PROFILE)
    tracker = RequestTracker(env)
    replica.add_completion_listener(tracker.complete)

    class DirectBalancer(StubBalancer):
        """Forwards straight to the replica (keeps the test focused)."""

    balancer = DirectBalancer(env, "lb-us", "us")
    frontend.register_balancer(balancer)

    def pump(env):
        while True:
            request = yield balancer.inbox.get()
            yield replica.submit(request)

    env.process(pump(env))

    first = make_request(prompt_len=10, output_len=2)
    second = make_request(prompt_len=10, output_len=2)
    program = _make_program("p0", [[first], [second]])
    client = ClosedLoopClient(
        env, "client-0", "us", frontend, tracker, [program]
    )
    env.run(until=60)
    assert client.completed_programs == 1
    assert client.issued_requests == 2
    # The second stage was sent only after the first stage completed.
    assert second.sent_time >= first.finish_time


def test_closed_loop_client_issues_stage_requests_concurrently(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    balancer = StubBalancer(env, "lb-us", "us")
    frontend.register_balancer(balancer)
    tracker = RequestTracker(env)

    a = make_request(prompt_len=5, output_len=1)
    b = make_request(prompt_len=5, output_len=1)
    program = _make_program("p1", [[a, b]])
    ClosedLoopClient(env, "client-0", "us", frontend, tracker, [program])
    env.run(until=1.0)
    assert a.sent_time == b.sent_time == 0.0
    assert len(balancer.inbox.items) == 2


def test_open_loop_client_issues_all_requests_at_given_rate(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    balancer = StubBalancer(env, "lb-us", "us")
    frontend.register_balancer(balancer)
    tracker = RequestTracker(env)
    requests = [make_request(prompt_len=5, output_len=1) for _ in range(20)]
    client = OpenLoopClient(
        env, "open-0", "us", frontend, tracker, requests, rate_per_s=100.0, seed=1
    )
    env.run(until=10.0)
    assert client.issued_requests == 20
    assert len(balancer.inbox.items) == 20
    times = [r.sent_time for r in requests]
    assert times == sorted(times)


def test_open_loop_client_rejects_nonpositive_rate(env):
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    tracker = RequestTracker(env)
    with pytest.raises(ValueError):
        OpenLoopClient(env, "open-0", "us", frontend, tracker, [], rate_per_s=0.0)
