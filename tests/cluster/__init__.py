"""Test package."""
