"""Unit tests for multi-region deployments."""

import pytest

from repro.cluster import Deployment, G6_XLARGE, ReplicaSpec
from repro.replica import TINY_TEST_PROFILE
from repro.sim import Environment


@pytest.fixture
def deployment(env):
    specs = [
        ReplicaSpec(region="us", count=3, profile=TINY_TEST_PROFILE),
        ReplicaSpec(region="eu", count=2, profile=TINY_TEST_PROFILE),
        ReplicaSpec(region="asia", count=1, profile=TINY_TEST_PROFILE),
    ]
    return Deployment(env, specs)


def test_replica_counts_per_region(deployment):
    assert deployment.num_replicas == 6
    assert len(deployment.replicas_in("us")) == 3
    assert len(deployment.replicas_in("eu")) == 2
    assert len(deployment.replicas_in("asia")) == 1
    assert deployment.replicas_in("unknown") == []


def test_replica_names_are_unique_and_region_scoped(deployment):
    names = [replica.name for replica in deployment.replicas]
    assert len(names) == len(set(names))
    for replica in deployment.replicas_in("eu"):
        assert replica.name.startswith("eu/")
        assert replica.region == "eu"


def test_replica_lookup_by_name(deployment):
    name = deployment.replicas[0].name
    assert deployment.replica_by_name(name) is deployment.replicas[0]
    with pytest.raises(KeyError):
        deployment.replica_by_name("does-not-exist")


def test_unknown_region_in_spec_is_rejected(env):
    with pytest.raises(KeyError):
        Deployment(env, [ReplicaSpec(region="mars", count=1, profile=TINY_TEST_PROFILE)])


def test_hourly_cost_scales_with_fleet_size(env, deployment):
    single = Deployment(env, [ReplicaSpec(region="us", count=1, profile=TINY_TEST_PROFILE)])
    assert deployment.hourly_cost() == pytest.approx(6 * single.hourly_cost())
    assert deployment.hourly_cost("on_demand") == pytest.approx(6 * G6_XLARGE.on_demand_hourly)


def test_aggregate_cache_hit_rate_is_zero_before_any_traffic(deployment):
    assert deployment.aggregate_cache_hit_rate() == 0.0
    assert deployment.total_processed_tokens() == 0


def test_outstanding_by_replica_reports_every_replica(deployment):
    outstanding = deployment.outstanding_by_replica()
    assert len(outstanding) == 6
    assert all(value == 0 for value in outstanding.values())


def test_instance_for_each_replica(deployment):
    for replica in deployment.replicas:
        assert deployment.instance_for(replica.name) is G6_XLARGE
