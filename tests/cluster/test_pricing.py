"""Unit tests for instance pricing."""

import pytest

from repro.cluster import G6_XLARGE, ON_PREMISE_DISCOUNT, P5_48XLARGE, PRICING_CATALOG


def test_paper_quoted_prices_for_p5():
    # §2.1 quotes $98.32/h on demand and $37.56/h for a 3-year reservation.
    assert P5_48XLARGE.on_demand_hourly == pytest.approx(98.32)
    assert P5_48XLARGE.reserved_3yr_hourly == pytest.approx(37.56)
    assert P5_48XLARGE.gpus_per_instance == 8


def test_reserved_is_cheaper_than_on_demand():
    for instance in PRICING_CATALOG.values():
        assert instance.reserved_3yr_hourly < instance.reserved_1yr_hourly
        assert instance.reserved_1yr_hourly < instance.on_demand_hourly


def test_on_premise_applies_tco_discount():
    expected = P5_48XLARGE.reserved_3yr_hourly * (1 - ON_PREMISE_DISCOUNT)
    assert P5_48XLARGE.on_premise_hourly == pytest.approx(expected)
    assert P5_48XLARGE.hourly("on_premise") == pytest.approx(expected)


def test_hourly_lookup_by_commitment():
    assert G6_XLARGE.hourly("on_demand") == G6_XLARGE.on_demand_hourly
    assert G6_XLARGE.hourly("reserved_1yr") == G6_XLARGE.reserved_1yr_hourly
    assert G6_XLARGE.hourly("reserved_3yr") == G6_XLARGE.reserved_3yr_hourly


def test_unknown_commitment_rejected():
    with pytest.raises(ValueError):
        G6_XLARGE.hourly("spot")


def test_catalog_is_keyed_by_instance_name():
    assert PRICING_CATALOG["p5.48xlarge"] is P5_48XLARGE
    assert PRICING_CATALOG["g6.xlarge"] is G6_XLARGE
