"""Unit tests for the consistent-hash ring."""

import pytest

from repro.core import ConsistentHashRing


def test_lookup_is_deterministic():
    ring = ConsistentHashRing(["a", "b", "c"])
    assert ring.lookup("user-1") == ring.lookup("user-1")
    assert all(ring.lookup(f"key-{i}") in {"a", "b", "c"} for i in range(50))


def test_empty_ring_returns_none():
    ring = ConsistentHashRing()
    assert ring.lookup("anything") is None


def test_lookup_skips_unavailable_targets():
    ring = ConsistentHashRing(["a", "b", "c"])
    key = "session-42"
    primary = ring.lookup(key)
    others = {"a", "b", "c"} - {primary}
    fallback = ring.lookup(key, available=others)
    assert fallback in others
    assert fallback != primary


def test_lookup_with_empty_available_set_returns_none():
    ring = ConsistentHashRing(["a", "b"])
    assert ring.lookup("key", available=[]) is None
    assert ring.lookup("key", available=["not-a-member"]) is None


def test_same_key_maps_to_same_target_for_all_requests():
    """The property SkyWalker-CH relies on: a user's requests stick to one
    replica as long as it stays available."""
    ring = ConsistentHashRing([f"replica-{i}" for i in range(8)])
    targets = {ring.lookup("user-alpha") for _ in range(100)}
    assert len(targets) == 1


def test_removing_a_target_only_remaps_its_keys():
    ring = ConsistentHashRing([f"replica-{i}" for i in range(6)], virtual_nodes=128)
    keys = [f"user-{i}" for i in range(300)]
    before = {key: ring.lookup(key) for key in keys}
    ring.remove_target("replica-3")
    after = {key: ring.lookup(key) for key in keys}
    for key in keys:
        if before[key] != "replica-3":
            assert after[key] == before[key]
        else:
            assert after[key] != "replica-3"


def test_add_target_registers_membership():
    ring = ConsistentHashRing(["a"])
    ring.add_target("b")
    assert "b" in ring
    assert len(ring) == 2
    ring.add_target("b")  # idempotent
    assert len(ring) == 2


def test_key_distribution_is_roughly_balanced():
    ring = ConsistentHashRing([f"replica-{i}" for i in range(4)], virtual_nodes=256)
    keys = [f"user-{i}" for i in range(4000)]
    counts = ring.key_distribution(keys)
    assert sum(counts.values()) == 4000
    assert min(counts.values()) > 0.4 * (4000 / 4)
    assert max(counts.values()) < 2.0 * (4000 / 4)


def test_invalid_virtual_nodes_rejected():
    with pytest.raises(ValueError):
        ConsistentHashRing(virtual_nodes=0)


def test_ring_supports_non_string_targets():
    ring = ConsistentHashRing([0, 1, 2])
    assert ring.lookup("key") in {0, 1, 2}
