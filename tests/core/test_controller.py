"""Tests for the service controller's load-balancer failure recovery (§4.2)."""

import pytest

from repro.cluster import Frontend, RequestTracker
from repro.core import ServiceController, SkyWalkerBalancer
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer
from repro.sim import Environment

from ..conftest import make_request


@pytest.fixture
def system(env):
    """Three regional balancers with one replica each, plus the controller."""
    network = Network(env, default_topology(), jitter_fraction=0.0)
    frontend = Frontend(env, network)
    tracker = RequestTracker(env)
    balancers = {}
    replicas = {}
    for region in ("us", "eu", "asia"):
        balancer = SkyWalkerBalancer(env, f"sw@{region}", region, network, probe_interval_s=0.05)
        replica = ReplicaServer(env, f"{region}/replica-0", region, TINY_TEST_PROFILE)
        replica.add_completion_listener(tracker.complete)
        balancer.add_replica(replica)
        balancers[region] = balancer
        replicas[region] = replica
    for balancer in balancers.values():
        for peer in balancers.values():
            if peer is not balancer:
                balancer.add_peer(peer)
        balancer.start()
        frontend.register_balancer(balancer)
    controller = ServiceController(
        env, network, frontend, health_probe_interval_s=0.1, recovery_time_s=2.0
    )
    for balancer in balancers.values():
        controller.register_balancer(balancer)
    controller.start()
    return {
        "env": env,
        "network": network,
        "frontend": frontend,
        "tracker": tracker,
        "balancers": balancers,
        "replicas": replicas,
        "controller": controller,
    }


def test_failover_reassigns_replicas_to_nearest_balancer(system):
    env = system["env"]
    eu = system["balancers"]["eu"]
    us = system["balancers"]["us"]
    eu.fail()
    env.run(until=1.0)
    record = system["controller"].failovers[0]
    assert record.failed_balancer == "sw@eu"
    # The US is the nearest healthy region to Europe in the default topology.
    assert record.takeover_balancer == "sw@us"
    assert "eu/replica-0" in record.replica_names
    assert any(r.name == "eu/replica-0" for r in us.local_replicas())


def test_failed_balancer_is_removed_from_dns(system):
    env = system["env"]
    system["balancers"]["eu"].fail()
    env.run(until=1.0)
    assert system["frontend"].dns.resolve("eu") != "sw@eu"


def test_recovery_transfers_replicas_back(system):
    env = system["env"]
    eu = system["balancers"]["eu"]
    us = system["balancers"]["us"]
    eu.fail()
    env.run(until=5.0)  # recovery_time_s = 2.0, plus detection latency
    record = system["controller"].failovers[0]
    assert record.recovered_at is not None
    assert eu.healthy
    assert any(r.name == "eu/replica-0" for r in eu.local_replicas())
    assert all(r.name != "eu/replica-0" for r in us.local_replicas())
    assert system["frontend"].dns.resolve("eu") == "sw@eu"


def test_stranded_requests_are_rerouted_and_completed(system):
    env = system["env"]
    eu = system["balancers"]["eu"]
    request = make_request(prompt_len=20, output_len=2, region="eu")
    request.sent_time = 0.0
    system["tracker"].register(request)
    eu.inbox.put(request)
    eu.fail()
    env.run(until=15.0)
    assert request in system["tracker"].completed
    assert request.finished


def test_traffic_keeps_flowing_during_the_outage(system):
    env = system["env"]
    frontend = system["frontend"]
    tracker = system["tracker"]
    system["balancers"]["eu"].fail()
    env.run(until=0.5)  # let the controller detect and repoint DNS

    requests = [make_request(prompt_len=20, output_len=2, region="eu") for _ in range(3)]

    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            tracker.register(request)
            frontend.dispatch(request)
            yield env.timeout(0.1)

    env.process(feeder(env))
    env.run(until=30.0)
    assert all(r.finished for r in requests)


def test_multiple_concurrent_failures_are_tolerated(system):
    env = system["env"]
    system["balancers"]["eu"].fail()
    system["balancers"]["asia"].fail()
    env.run(until=10.0)
    assert len(system["controller"].failovers) == 2
    assert all(record.recovered_at is not None for record in system["controller"].failovers)
    assert all(balancer.healthy for balancer in system["balancers"].values())


def test_rebuild_state_reports_current_ownership(system):
    mapping = system["controller"].rebuild_state()
    assert mapping["sw@us"] == ["us/replica-0"]
    assert mapping["sw@eu"] == ["eu/replica-0"]
    assert mapping["sw@asia"] == ["asia/replica-0"]
