"""The PR 2 failover-state fixes, exercised through injected fault schedules.

``recover()`` clearing the prefix tries and ``add_remote_balancer`` seeding
peer probes from live state were originally regression-tested with direct
method calls.  These tests drive the same code paths end to end: a
:class:`FaultSchedule` kills a balancer mid-run, the controller (or a
custom registered fault) does the rest, and the assertions read the
resulting state -- no ``fail()``/``recover()`` calls from test code.
"""

from dataclasses import dataclass

import pytest

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    build_arena_workload,
    run_experiment,
)
from repro.faults import (
    BalancerFailure,
    FaultSchedule,
    FaultSpec,
    register_fault,
    unregister_fault,
)
from repro.replica import TINY_TEST_PROFILE

CLUSTER = ClusterConfig(
    replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
)

#: A token sequence no workload generates (far outside the vocab range).
SENTINEL_TOKENS = tuple(range(10_000_000, 10_000_024))


def run_skywalker(schedule, *, duration=30.0):
    workload = build_arena_workload(scale=0.03, seed=1)
    config = ExperimentConfig(
        system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
        cluster=CLUSTER,
        duration_s=duration,
        seed=1,
        faults=schedule,
    )
    return run_experiment(config, workload)


def test_recovery_clears_tries_under_injected_balancer_failure():
    """A recovered balancer must not route on pre-failure affinity data.

    A custom fault plants a sentinel prompt into the eu balancer's tries
    just before the injected failure (and into us as a control).  After the
    controller-driven recovery, the sentinel must be gone from eu -- wiped
    by ``recover()`` -- while the untouched us balancer still has it.
    """

    @dataclass(frozen=True)
    class PlantSentinel(FaultSpec):
        kind: str = "plant-sentinel"
        region: str = "eu"

    @register_fault("plant-sentinel", spec=PlantSentinel)
    def _plant(spec, ctx, record):
        record.opens_window = False
        balancer = ctx.balancer_in(spec.region)
        balancer.replica_trie.insert(SENTINEL_TOKENS, "sentinel-replica")
        balancer.snapshot_trie.insert(SENTINEL_TOKENS, "sentinel-peer")

    try:
        schedule = (
            FaultSchedule(controller_probe_interval_s=0.25, recovery_time_s=3.0)
            .add(7.5, PlantSentinel(region="eu"))
            .add(7.5, PlantSentinel(region="us"))
            .add(8.0, BalancerFailure(region="eu"))
        )
        result = run_skywalker(schedule)
    finally:
        unregister_fault("plant-sentinel")

    controller = result.controller
    assert controller is not None and len(controller.failovers) == 1
    assert controller.failovers[0].recovered_at is not None

    eu = next(b for b in result.balancers if b.region == "eu")
    us = next(b for b in result.balancers if b.region == "us")
    assert eu.healthy
    # recover() wiped the failed balancer's tries: the sentinel is gone...
    assert eu.replica_trie.match_length(SENTINEL_TOKENS) == 0
    assert eu.snapshot_trie.match_length(SENTINEL_TOKENS) == 0
    # ...while the healthy balancer kept its copy (no eviction pressure:
    # the default trie capacity dwarfs this run's insertions).
    assert us.replica_trie.match_length(SENTINEL_TOKENS) == len(SENTINEL_TOKENS)
    assert us.snapshot_trie.match_length(SENTINEL_TOKENS) == len(SENTINEL_TOKENS)


def test_replicas_and_rings_transfer_through_injected_failover():
    """End-to-end §4.2: takeover, then replicas home again after recovery."""
    schedule = FaultSchedule.single(
        8.0,
        BalancerFailure(region="eu"),
        controller_probe_interval_s=0.25,
        recovery_time_s=3.0,
    )
    result = run_skywalker(schedule)
    record = result.controller.failovers[0]
    assert record.failed_balancer == "skywalker@eu"
    assert "eu/replica-0" in record.replica_names

    eu = next(b for b in result.balancers if b.region == "eu")
    takeover = next(b for b in result.balancers if b.name == record.takeover_balancer)
    assert [r.name for r in eu.local_replicas()] == ["eu/replica-0"]
    assert all(r.name != "eu/replica-0" for r in takeover.local_replicas())
    # The hash ring tracks membership (it survives recovery by design).
    assert "eu/replica-0" in eu.replica_ring.targets


def test_attaching_a_dead_peer_seeds_an_unhealthy_probe():
    """``add_remote_balancer`` must seed from the peer's *live* state.

    Mid-failover re-wiring can attach a peer that is already dead; the
    optimistic-seed bug would have made it a forward target until the
    first real probe.  Here a custom fault re-attaches the dead eu
    balancer to us while the outage is still open (``use_controller=False``
    keeps eu down) and captures what the monitor believed at that instant.
    """
    observed = {}

    @dataclass(frozen=True)
    class ReattachPeer(FaultSpec):
        kind: str = "reattach-peer"
        at_region: str = "us"
        peer_region: str = "eu"

    @register_fault("reattach-peer", spec=ReattachPeer)
    def _reattach(spec, ctx, record):
        record.opens_window = False
        balancer = ctx.balancer_in(spec.at_region)
        peer = ctx.balancer_in(spec.peer_region)
        balancer.remove_peer(peer.name)
        balancer.add_peer(peer)
        probe = balancer.monitor.balancer_probes[peer.name]
        observed["probe_healthy"] = probe.healthy
        observed["available"] = [p.name for p in balancer.monitor.available_remote_balancers()]
        observed["peer_healthy"] = peer.healthy

    try:
        schedule = (
            FaultSchedule(use_controller=False)
            .add(8.0, BalancerFailure(region="eu"))  # stays down: no duration
            .add(9.0, ReattachPeer(at_region="us", peer_region="eu"))
        )
        result = run_skywalker(schedule, duration=15.0)
    finally:
        unregister_fault("reattach-peer")

    assert observed["peer_healthy"] is False  # eu really was down at attach time
    assert observed["probe_healthy"] is False  # seeded from live (dead) state
    assert "skywalker@eu" not in observed["available"]
    assert result.metrics.resilience.num_fault_events == 2
