"""Unit tests for the load balancer's prefix tree (regional snapshots)."""

import pytest

from repro.core import PrefixTree


def seq(*values):
    return tuple(values)


def test_empty_tree_has_no_target():
    tree = PrefixTree()
    match = tree.best_target(seq(1, 2, 3), available=["a", "b"])
    assert match.target is None
    assert match.matched_tokens == 0
    assert match.hit_ratio == 0.0


def test_insert_then_best_target_returns_longest_match():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "replica-a")
    tree.insert(seq(1, 2, 9, 9), "replica-b")
    match = tree.best_target(seq(1, 2, 3, 4, 5), available=["replica-a", "replica-b"])
    assert match.target == "replica-a"
    assert match.matched_tokens == 4
    assert match.hit_ratio == pytest.approx(4 / 5)


def test_unavailable_targets_are_ignored():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "replica-a")
    tree.insert(seq(1, 2), "replica-b")
    match = tree.best_target(seq(1, 2, 3, 4), available=["replica-b"])
    assert match.target == "replica-b"
    assert match.matched_tokens == 2


def test_traversal_terminates_when_no_available_target_remains():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4, 5, 6), "replica-a")
    match = tree.best_target(seq(1, 2, 3, 4, 5, 6), available=["replica-z"])
    assert match.target is None
    assert match.matched_tokens == 0


def test_child_targets_are_subsets_of_parents():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "a")
    tree.insert(seq(1, 2, 3, 4, 5, 6), "b")
    tree.insert(seq(1, 2, 7), "c")
    tree.check_invariants()


def test_match_length_per_target():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "a")
    tree.insert(seq(1, 2), "b")
    assert tree.match_length(seq(1, 2, 3, 4)) == 4
    assert tree.match_length(seq(1, 2, 3, 4), target="b") == 2
    assert tree.match_length(seq(9, 9)) == 0


def test_capacity_evicts_earliest_inserted_paths_first():
    tree = PrefixTree(max_tokens=8)
    tree.insert(seq(1, 2, 3, 4), "a")      # oldest
    tree.insert(seq(10, 20, 30, 40), "b")  # fills capacity
    tree.insert(seq(100, 200, 300, 400), "c")  # forces eviction of the oldest
    assert tree.total_tokens <= 8
    # The earliest inserted path was evicted; the newest is present.
    assert tree.best_target(seq(100, 200, 300, 400), available=["a", "b", "c"]).target == "c"
    assert tree.best_target(seq(1, 2, 3, 4), available=["a"]).target is None
    tree.check_invariants()


def test_remove_target_erases_every_reference():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3), "a")
    tree.insert(seq(1, 2, 3), "b")
    tree.remove_target("a")
    match = tree.best_target(seq(1, 2, 3), available=["a", "b"])
    assert match.target == "b"
    assert tree.best_target(seq(1, 2, 3), available=["a"]).target is None
    tree.check_invariants()


def test_remove_only_target_prunes_nodes():
    tree = PrefixTree()
    tree.insert(seq(5, 6, 7, 8), "solo")
    assert tree.total_tokens == 4
    tree.remove_target("solo")
    assert tree.total_tokens == 0


def test_zero_length_prompt():
    tree = PrefixTree()
    tree.insert(seq(1, 2), "a")
    match = tree.best_target(seq(), available=["a"])
    assert match.matched_tokens == 0
    assert match.prompt_tokens == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PrefixTree(max_tokens=0)


def test_tie_break_prefers_most_recent_insert_not_repr_order():
    """Regression for the old ``min(reachable, key=repr)`` tie-break.

    Two targets recorded for the *same* prompt tie on match length; the
    documented rule picks the one recorded by the most recent insert.  The
    old rule compared ``repr`` strings, which ordered "r10" before "r9"
    lexicographically and ignored recency entirely.
    """
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "r10")
    tree.insert(seq(1, 2, 3, 4), "r9")  # most recent insert for this path
    match = tree.best_target(seq(1, 2, 3, 4), available={"r9", "r10"})
    assert match.target == "r9"
    # Re-inserting for r10 flips the preference: recency decides, not repr.
    tree.insert(seq(1, 2, 3, 4), "r10")
    assert tree.best_target(seq(1, 2, 3, 4), available={"r9", "r10"}).target == "r10"
    # The rule is applied per node: an unavailable newer target never masks
    # an older available one.
    assert tree.best_target(seq(1, 2, 3, 4), available={"r9"}).target == "r9"


def test_node_count_tracks_structure():
    tree = PrefixTree()
    assert len(tree) == 0
    tree.insert(seq(1, 2, 3, 4), "a")
    assert tree.node_count == 1
    tree.insert(seq(1, 2, 9), "b")  # splits (1,2,3,4) and adds a sibling
    assert tree.node_count == 3
    tree.remove_target("b")
    tree.remove_target("a")
    assert tree.node_count == len(tree) == 0
    tree.check_invariants()


def test_shared_prefix_tracks_both_targets():
    tree = PrefixTree()
    tree.insert(seq(1, 2, 3, 4), "a")
    tree.insert(seq(1, 2, 3, 9), "b")
    # Both targets are recorded on the shared (1,2,3) prefix.
    match_a = tree.best_target(seq(1, 2, 3), available=["a"])
    match_b = tree.best_target(seq(1, 2, 3), available=["b"])
    assert match_a.target == "a" and match_a.matched_tokens == 3
    assert match_b.target == "b" and match_b.matched_tokens == 3
