"""Unit tests for the pushing policies (BP, SP-O, SP-P)."""

import pytest

from repro.core import (
    BlindPushing,
    PushingPolicy,
    SelectivePushingOutstanding,
    SelectivePushingPending,
    make_pushing_policy,
    register_pushing_policy,
    registered_pushing_policies,
    unregister_pushing_policy,
)
from repro.core.pushing import ReplicaProbe


def probe(pending=0, running=0, outstanding=None, healthy=True):
    if outstanding is None:
        outstanding = pending + running
    return ReplicaProbe(
        replica_name="r0",
        healthy=healthy,
        num_pending=pending,
        num_running=running,
        num_outstanding=outstanding,
        memory_utilization=0.5,
        probe_time=0.0,
    )


# ----------------------------------------------------------------------
# Blind pushing
# ----------------------------------------------------------------------
def test_blind_pushing_accepts_any_healthy_replica():
    policy = BlindPushing()
    assert policy.blind
    assert policy.replica_available(probe(pending=100, running=50), dispatched_since_probe=999)


def test_blind_pushing_rejects_dead_replicas():
    assert not BlindPushing().replica_available(probe(healthy=False), 0)


# ----------------------------------------------------------------------
# SP-O: fixed outstanding threshold
# ----------------------------------------------------------------------
def test_sp_o_enforces_fixed_threshold():
    policy = SelectivePushingOutstanding(max_outstanding=8)
    assert policy.replica_available(probe(running=7), 0)
    assert not policy.replica_available(probe(running=8), 0)
    assert not policy.replica_available(probe(running=20), 0)


def test_sp_o_counts_recent_dispatches():
    policy = SelectivePushingOutstanding(max_outstanding=8)
    assert policy.replica_available(probe(running=5), dispatched_since_probe=2)
    assert not policy.replica_available(probe(running=5), dispatched_since_probe=3)


def test_sp_o_rejects_invalid_threshold():
    with pytest.raises(ValueError):
        SelectivePushingOutstanding(max_outstanding=0)


def test_sp_o_is_insensitive_to_memory_footprint():
    """The weakness the paper highlights: SP-O looks identical for a replica
    holding a few huge requests and one holding many small ones."""
    policy = SelectivePushingOutstanding(max_outstanding=24)
    few_huge = probe(running=4)
    many_small = probe(running=4)
    assert policy.replica_available(few_huge, 0) == policy.replica_available(many_small, 0)


# ----------------------------------------------------------------------
# SP-P: pending-request based (SkyWalker)
# ----------------------------------------------------------------------
def test_sp_p_available_only_without_pending_requests():
    policy = SelectivePushingPending()
    assert policy.replica_available(probe(pending=0, running=40), 0)
    assert not policy.replica_available(probe(pending=1, running=2), 0)


def test_sp_p_adapts_to_batch_capacity_not_request_count():
    """A replica running many requests but still admitting (no pending) is
    available; a replica with few requests but a full batch is not."""
    policy = SelectivePushingPending()
    busy_but_admitting = probe(pending=0, running=48)
    full_with_few = probe(pending=3, running=6)
    assert policy.replica_available(busy_but_admitting, 0)
    assert not policy.replica_available(full_with_few, 0)


def test_sp_p_staleness_guard_bounds_dispatches_per_probe():
    policy = SelectivePushingPending(pending_slack=0, max_dispatch_per_probe=3)
    assert policy.replica_available(probe(pending=0), dispatched_since_probe=0)
    assert policy.replica_available(probe(pending=0), dispatched_since_probe=2)
    assert not policy.replica_available(probe(pending=0), dispatched_since_probe=3)


def test_sp_p_rejects_invalid_dispatch_bound():
    with pytest.raises(ValueError):
        SelectivePushingPending(max_dispatch_per_probe=0)


def test_sp_p_slack_allows_a_small_buffer():
    policy = SelectivePushingPending(pending_slack=2)
    assert policy.replica_available(probe(pending=2), 0)
    assert not policy.replica_available(probe(pending=3), 0)


def test_sp_p_rejects_negative_slack():
    with pytest.raises(ValueError):
        SelectivePushingPending(pending_slack=-1)


def test_unhealthy_replicas_are_never_available():
    for policy in (SelectivePushingPending(), SelectivePushingOutstanding(8)):
        assert not policy.replica_available(probe(healthy=False), 0)


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
def test_factory_builds_each_policy():
    assert isinstance(make_pushing_policy("BP"), BlindPushing)
    assert isinstance(make_pushing_policy("sp-o", max_outstanding=10), SelectivePushingOutstanding)
    assert isinstance(make_pushing_policy("SP-P"), SelectivePushingPending)


def test_factory_rejects_unknown_policy():
    with pytest.raises(ValueError, match="registered policies"):
        make_pushing_policy("magic")


# ----------------------------------------------------------------------
# the pushing-policy registry
# ----------------------------------------------------------------------
def test_builtin_policies_are_registered():
    assert {"BP", "SP-O", "SP-P"} <= set(registered_pushing_policies())


def test_third_party_policy_registers_and_resolves_by_name():
    @register_pushing_policy("never-push")
    class NeverPush(PushingPolicy):
        name = "never-push"

        def replica_available(self, probe, dispatched_since_probe):
            return False

    try:
        assert "NEVER-PUSH" in registered_pushing_policies()
        policy = make_pushing_policy("never-push")
        assert isinstance(policy, NeverPush)
        assert not policy.replica_available(probe(), 0)
        # Lookup is case-insensitive, like the built-in names.
        assert isinstance(make_pushing_policy("Never-Push"), NeverPush)
    finally:
        unregister_pushing_policy("never-push")
    with pytest.raises(ValueError):
        make_pushing_policy("never-push")


def test_duplicate_policy_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_pushing_policy("bp")(BlindPushing)
