"""Property-based tests for the prefix tree (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import PrefixTree

token = st.integers(min_value=0, max_value=4)
sequence = st.lists(token, min_size=1, max_size=16).map(tuple)
target = st.sampled_from(["a", "b", "c", "d"])
insertion = st.tuples(sequence, target)


@given(st.lists(insertion, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_structural_invariants_always_hold(insertions):
    tree = PrefixTree()
    for tokens, tgt in insertions:
        tree.insert(tokens, tgt)
        tree.check_invariants()


@given(st.lists(insertion, min_size=1, max_size=40), sequence)
@settings(max_examples=60, deadline=None)
def test_best_target_never_overstates_the_match(insertions, probe):
    tree = PrefixTree()
    for tokens, tgt in insertions:
        tree.insert(tokens, tgt)
    targets = {tgt for _, tgt in insertions}
    match = tree.best_target(probe, available=targets)
    # Ground truth: the longest common prefix between the probe and any
    # sequence inserted for the matched target.
    if match.target is None:
        return
    best_true = 0
    for tokens, tgt in insertions:
        if tgt != match.target:
            continue
        common = 0
        for a, b in zip(tokens, probe):
            if a != b:
                break
            common += 1
        best_true = max(best_true, common)
    assert best_true >= match.matched_tokens


@given(st.lists(insertion, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_inserted_sequence_is_found_for_its_own_target(insertions):
    tree = PrefixTree()
    for tokens, tgt in insertions:
        tree.insert(tokens, tgt)
    for tokens, tgt in insertions:
        assert tree.match_length(tokens, target=tgt) == len(tokens)


@given(st.lists(insertion, min_size=1, max_size=60), st.integers(min_value=4, max_value=32))
@settings(max_examples=40, deadline=None)
def test_capacity_bound_is_respected(insertions, capacity):
    tree = PrefixTree(max_tokens=capacity)
    for tokens, tgt in insertions:
        tree.insert(tokens, tgt)
        assert tree.total_tokens <= capacity
        tree.check_invariants()


#: One random churn step: insert a sequence, shrink capacity (forces heap
#: eviction), or decommission a target.
churn_op = st.one_of(
    st.tuples(st.just("insert"), sequence, target),
    st.tuples(st.just("evict"), st.integers(min_value=4, max_value=48), st.none()),
    st.tuples(st.just("remove"), st.none(), target),
)


@given(st.lists(churn_op, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_node_count_and_tokens_survive_random_churn(ops):
    tree = PrefixTree()
    for op, payload, tgt in ops:
        if op == "insert":
            tree.insert(payload, tgt)
        elif op == "evict":
            tree.max_tokens = payload
            tree.insert((0,), "a")  # trigger capacity enforcement
        else:
            tree.remove_target(tgt)
        # check_invariants recounts tokens and nodes against the running
        # totals and verifies every leaf is visible to the eviction heap.
        tree.check_invariants()
        recounted = sum(1 for node in tree._iter_nodes() if node.parent is not None)
        assert tree.node_count == len(tree) == recounted
        assert tree.total_tokens <= tree.max_tokens


@given(st.lists(insertion, min_size=1, max_size=40), target)
@settings(max_examples=40, deadline=None)
def test_removed_target_is_never_returned(insertions, removed):
    tree = PrefixTree()
    for tokens, tgt in insertions:
        tree.insert(tokens, tgt)
    tree.remove_target(removed)
    for tokens, _ in insertions:
        match = tree.best_target(tokens, available=[removed])
        assert match.target is None
    tree.check_invariants()
