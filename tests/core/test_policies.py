"""Unit tests for routing constraints (GDPR, continent, deny lists)."""

import pytest

from repro.core import (
    AllowAll,
    CompositeConstraint,
    DenyRegions,
    GDPRConstraint,
    SameContinentConstraint,
    make_constraint,
    register_constraint,
    registered_constraints,
    unregister_constraint,
)
from repro.network import default_topology, wide_topology

from ..conftest import make_request


def test_allow_all_allows_everything():
    constraint = AllowAll()
    request = make_request(region="eu")
    assert constraint.allows(request, "eu", "us")
    assert constraint.allows(request, "us", "asia")


def test_gdpr_traffic_stays_in_gdpr_scope():
    constraint = GDPRConstraint(default_topology())
    eu_request = make_request(region="eu")
    us_request = make_request(region="us")
    # EU-origin traffic may not leave GDPR scope...
    assert not constraint.allows(eu_request, "eu", "us")
    assert not constraint.allows(eu_request, "eu", "asia")
    assert constraint.allows(eu_request, "eu", "eu")
    # ...but non-GDPR traffic may be offloaded into the EU (§7).
    assert constraint.allows(us_request, "us", "eu")
    assert constraint.allows(us_request, "us", "asia")


def test_same_continent_constraint():
    topology = wide_topology()
    constraint = SameContinentConstraint(topology)
    request = make_request(region="us-east-1")
    assert constraint.allows(request, "us-east-1", "us-west")
    assert not constraint.allows(request, "us-east-1", "eu-west")


def test_deny_regions():
    constraint = DenyRegions(["asia"])
    request = make_request(region="us")
    assert constraint.allows(request, "us", "eu")
    assert not constraint.allows(request, "us", "asia")


def test_composite_requires_all_members_to_allow():
    topology = default_topology()
    constraint = CompositeConstraint([GDPRConstraint(topology), DenyRegions(["asia"])])
    us_request = make_request(region="us")
    eu_request = make_request(region="eu")
    assert constraint.allows(us_request, "us", "eu")
    assert not constraint.allows(us_request, "us", "asia")   # deny list
    assert not constraint.allows(eu_request, "eu", "us")     # GDPR


def test_filter_regions_helper():
    constraint = GDPRConstraint(default_topology())
    eu_request = make_request(region="eu")
    assert constraint.filter_regions(eu_request, "eu", ["us", "eu", "asia"]) == ["eu"]


# ----------------------------------------------------------------------
# the constraint registry
# ----------------------------------------------------------------------
def test_builtin_constraints_are_registered():
    assert {"allow-all", "gdpr", "continent"} <= set(registered_constraints())


def test_make_constraint_builds_each_builtin():
    topology = default_topology()
    assert isinstance(make_constraint("allow-all", topology), AllowAll)
    assert isinstance(make_constraint("gdpr", topology), GDPRConstraint)
    assert isinstance(make_constraint("continent", topology), SameContinentConstraint)
    # Lookup is case-insensitive.
    assert isinstance(make_constraint("GDPR", topology), GDPRConstraint)


def test_third_party_constraint_registers_and_resolves_by_name():
    @register_constraint("no-asia")
    def _no_asia(topology):
        return DenyRegions({"asia"})

    try:
        assert "no-asia" in registered_constraints()
        constraint = make_constraint("no-asia", default_topology())
        request = make_request(region="us")
        assert constraint.allows(request, "us", "eu")
        assert not constraint.allows(request, "us", "asia")
    finally:
        unregister_constraint("no-asia")
    with pytest.raises(ValueError):
        make_constraint("no-asia", default_topology())


def test_duplicate_constraint_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_constraint("gdpr")(GDPRConstraint)


def test_unknown_constraint_error_names_registered():
    with pytest.raises(ValueError, match="registered constraints"):
        make_constraint("lunar", default_topology())
