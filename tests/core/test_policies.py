"""Unit tests for routing constraints (GDPR, continent, deny lists)."""

from repro.core import (
    AllowAll,
    CompositeConstraint,
    DenyRegions,
    GDPRConstraint,
    SameContinentConstraint,
)
from repro.network import default_topology, wide_topology

from ..conftest import make_request


def test_allow_all_allows_everything():
    constraint = AllowAll()
    request = make_request(region="eu")
    assert constraint.allows(request, "eu", "us")
    assert constraint.allows(request, "us", "asia")


def test_gdpr_traffic_stays_in_gdpr_scope():
    constraint = GDPRConstraint(default_topology())
    eu_request = make_request(region="eu")
    us_request = make_request(region="us")
    # EU-origin traffic may not leave GDPR scope...
    assert not constraint.allows(eu_request, "eu", "us")
    assert not constraint.allows(eu_request, "eu", "asia")
    assert constraint.allows(eu_request, "eu", "eu")
    # ...but non-GDPR traffic may be offloaded into the EU (§7).
    assert constraint.allows(us_request, "us", "eu")
    assert constraint.allows(us_request, "us", "asia")


def test_same_continent_constraint():
    topology = wide_topology()
    constraint = SameContinentConstraint(topology)
    request = make_request(region="us-east-1")
    assert constraint.allows(request, "us-east-1", "us-west")
    assert not constraint.allows(request, "us-east-1", "eu-west")


def test_deny_regions():
    constraint = DenyRegions(["asia"])
    request = make_request(region="us")
    assert constraint.allows(request, "us", "eu")
    assert not constraint.allows(request, "us", "asia")


def test_composite_requires_all_members_to_allow():
    topology = default_topology()
    constraint = CompositeConstraint([GDPRConstraint(topology), DenyRegions(["asia"])])
    us_request = make_request(region="us")
    eu_request = make_request(region="eu")
    assert constraint.allows(us_request, "us", "eu")
    assert not constraint.allows(us_request, "us", "asia")   # deny list
    assert not constraint.allows(eu_request, "eu", "us")     # GDPR


def test_filter_regions_helper():
    constraint = GDPRConstraint(default_topology())
    eu_request = make_request(region="eu")
    assert constraint.filter_regions(eu_request, "eu", ["us", "eu", "asia"]) == ["eu"]
