"""Tests for the availability monitor (Algorithm 1's MONITORAVAILABILITY)."""

import pytest

from repro.core import AvailabilityMonitor, SelectivePushingPending
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer

from ..conftest import make_request


class StubPeer:
    """Minimal stand-in for a peer SkyWalkerBalancer."""

    def __init__(self, name, region, available_replicas=1, queue=0, healthy=True):
        self.name = name
        self.region = region
        self.healthy = healthy
        self.num_available_replicas = available_replicas
        self.queue_size = queue


@pytest.fixture
def monitor(env, network):
    return AvailabilityMonitor(env, network, "us", probe_interval_s=0.1)


def test_new_replica_is_optimistically_available(env, monitor, make_tiny_replica):
    replica = make_tiny_replica("us")
    monitor.add_local_replica(replica)
    assert monitor.available_local_replicas() == [replica]


def test_probes_discover_a_full_replica(env, monitor, make_tiny_replica):
    replica = make_tiny_replica("us")
    monitor.add_local_replica(replica)
    monitor.start()
    # Saturate the replica: one huge request occupies all memory, a second
    # one becomes pending.
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve

    def feeder(env):
        for _ in range(2):
            request = make_request(prompt_len=big, output_len=500)
            request.sent_time = env.now
            request.lb_arrival_time = env.now
            yield replica.submit(request)

    env.process(feeder(env))
    env.run(until=1.0)
    assert replica.num_pending >= 1
    assert monitor.available_local_replicas() == []


def test_dispatch_notes_bound_per_interval_pushes(env, monitor, make_tiny_replica):
    replica = make_tiny_replica("us")
    monitor.add_local_replica(replica)
    monitor.start()
    env.run(until=0.25)
    assert monitor.available_local_replicas() == [replica]
    # The staleness guard tolerates a handful of dispatches per interval ...
    for _ in range(monitor.pushing_policy.max_dispatch_per_probe):
        assert monitor.available_local_replicas() == [replica]
        monitor.note_dispatch(replica.name)
    # ... then holds the replica back until the next heartbeat refreshes it.
    assert monitor.available_local_replicas() == []
    env.run(until=0.5)
    assert monitor.available_local_replicas() == [replica]


def test_remove_local_replica(env, monitor, make_tiny_replica):
    replica = make_tiny_replica("us")
    monitor.add_local_replica(replica)
    monitor.remove_local_replica(replica.name)
    assert monitor.available_local_replicas() == []
    assert monitor.local_replicas() == []


def test_remote_balancer_availability_follows_probe_state(env, monitor):
    healthy_peer = StubPeer("lb-eu", "eu", available_replicas=2, queue=0)
    saturated_peer = StubPeer("lb-asia", "asia", available_replicas=0, queue=0)
    backlogged_peer = StubPeer("lb-eu2", "eu", available_replicas=3, queue=50)
    for peer in (healthy_peer, saturated_peer, backlogged_peer):
        monitor.add_remote_balancer(peer)
    monitor.start()
    env.run(until=1.0)
    available = monitor.available_remote_balancers()
    assert healthy_peer in available
    assert saturated_peer not in available
    assert backlogged_peer not in available


def test_attaching_an_already_failed_peer_is_not_available(env, monitor):
    """Regression: the seed probe used to hard-code ``healthy=True``, so a
    peer that was already down when attached (controller failover
    re-wiring) was selected as a forward target until the first real probe
    landed.  The seed must mirror the peer's live state instead."""
    dead_peer = StubPeer("lb-eu", "eu", available_replicas=2, healthy=False)
    monitor.add_remote_balancer(dead_peer)
    # No probe cycle has run yet: the seed alone must already exclude it.
    assert monitor.available_remote_balancers() == []
    probe = monitor.balancer_probes[dead_peer.name]
    assert not probe.healthy


def test_attach_seeds_peer_probe_from_live_state(env, monitor):
    peer = StubPeer("lb-eu", "eu", available_replicas=3, queue=2)
    monitor.add_remote_balancer(peer)
    probe = monitor.balancer_probes[peer.name]
    assert probe.healthy
    assert probe.num_available_replicas == 3
    assert probe.queue_size == 2


def test_attaching_a_peer_with_no_free_replicas_is_not_available(env, monitor):
    saturated = StubPeer("lb-asia", "asia", available_replicas=0)
    monitor.add_remote_balancer(saturated)
    assert monitor.available_remote_balancers() == []


def test_dispatched_since_probe_public_accessor(env, monitor, make_tiny_replica):
    replica = make_tiny_replica("us")
    monitor.add_local_replica(replica)
    assert monitor.dispatched_since_probe(replica.name) == 0
    monitor.note_dispatch(replica.name)
    monitor.note_dispatch(replica.name)
    assert monitor.dispatched_since_probe(replica.name) == 2
    assert monitor.dispatched_since_probe("never-seen") == 0


def test_unhealthy_peer_is_excluded_after_probe(env, monitor):
    peer = StubPeer("lb-eu", "eu", available_replicas=2)
    monitor.add_remote_balancer(peer)
    monitor.start()
    env.run(until=1.0)
    assert peer in monitor.available_remote_balancers()
    peer.healthy = False
    env.run(until=2.0)
    assert peer not in monitor.available_remote_balancers()


def test_forward_note_respects_remote_queue_buffer(env, monitor):
    peer = StubPeer("lb-eu", "eu", available_replicas=2, queue=0)
    monitor.add_remote_balancer(peer)
    monitor.start()
    env.run(until=1.0)
    for _ in range(monitor.remote_queue_buffer + 1):
        monitor.note_forward(peer.name)
    assert peer not in monitor.available_remote_balancers()
    env.run(until=2.0)  # the next probe resets the counter
    assert peer in monitor.available_remote_balancers()


def test_wait_for_change_triggers_on_each_probe_cycle(env, monitor, make_tiny_replica):
    monitor.add_local_replica(make_tiny_replica("us"))
    monitor.start()
    wakeups = []

    def waiter(env):
        for _ in range(3):
            yield monitor.wait_for_change()
            wakeups.append(env.now)

    env.process(waiter(env))
    env.run(until=1.0)
    assert len(wakeups) == 3
    # Changes arrive roughly once per probe interval (100 ms).
    assert wakeups[-1] <= 0.5


def test_probe_counters_reflect_probe_traffic(env, network, make_tiny_replica):
    monitor = AvailabilityMonitor(env, network, "us", probe_interval_s=0.05)
    monitor.add_local_replica(make_tiny_replica("us"))
    monitor.add_remote_balancer(StubPeer("lb-eu", "eu"))
    monitor.start()
    env.run(until=1.0)
    assert network.probe_count >= 20  # ~2 probes per 50 ms cycle
