"""Tests for the SkyWalker regional load balancer (Algorithm 1)."""

import pytest

from repro.core import (
    BlindPushing,
    GDPRConstraint,
    ROUTING_CONSISTENT_HASH,
    SkyWalkerBalancer,
)
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer
from repro.sim import Environment

from ..conftest import make_request


def make_balancer(env, network, region, **kwargs) -> SkyWalkerBalancer:
    return SkyWalkerBalancer(env, f"sw@{region}", region, network, probe_interval_s=0.05, **kwargs)


def submit(env, network, balancer, requests, spacing=0.0, region=None):
    """Deliver requests to a balancer's inbox from its own region."""

    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            request.arrival_time = env.now
            network.deliver(request, region or request.region, balancer.region, balancer.inbox)
            if spacing:
                yield env.timeout(spacing)
        if not spacing:
            yield env.timeout(0)

    env.process(feeder(env))


# ----------------------------------------------------------------------
# local routing
# ----------------------------------------------------------------------
def test_requests_are_served_by_local_replicas_when_available(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    replicas = [make_tiny_replica("us") for _ in range(2)]
    for replica in replicas:
        balancer.add_replica(replica)
    balancer.start()

    requests = [make_request(prompt_len=20, output_len=2, region="us") for _ in range(4)]
    submit(env, network, balancer, requests, spacing=0.2)
    env.run(until=30)
    assert all(r.finished for r in requests)
    assert all(r.serving_region == "us" for r in requests)
    assert balancer.local_dispatches == 4
    assert balancer.remote_forwards == 0


def test_prefix_affinity_routes_same_session_to_same_replica(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    for _ in range(3):
        balancer.add_replica(make_tiny_replica("us"))
    balancer.start()

    shared = tuple(range(10_000, 10_200))
    requests = [
        make_request(prompt_len=260, prefix=shared, output_len=1, region="us",
                     user_id="alice", session_id="alice/s0")
        for _ in range(5)
    ]
    submit(env, network, balancer, requests, spacing=1.0)
    env.run(until=60)
    assert all(r.finished for r in requests)
    # After the first request seeds the prefix tree, the rest follow it.
    replicas_used = {r.replica_name for r in requests[1:]}
    assert len(replicas_used) == 1


def test_consistent_hash_variant_keeps_user_on_one_replica(env, network, make_tiny_replica):
    balancer = make_balancer(
        env, network, "us",
        routing=ROUTING_CONSISTENT_HASH,
        hash_key_fn=lambda request: request.user_id,
    )
    for _ in range(4):
        balancer.add_replica(make_tiny_replica("us"))
    balancer.start()

    requests = [
        make_request(prompt_len=30, output_len=1, region="us", user_id="bob")
        for _ in range(6)
    ]
    submit(env, network, balancer, requests, spacing=1.0)
    env.run(until=60)
    assert all(r.finished for r in requests)
    assert len({r.replica_name for r in requests}) == 1


def test_low_prefix_affinity_spreads_load(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    for _ in range(3):
        balancer.add_replica(make_tiny_replica("us"))
    balancer.start()

    # Twelve completely unrelated prompts arriving close together: with no
    # prefix affinity anywhere the balancer falls back to load spreading.
    requests = [make_request(prompt_len=40, output_len=50, region="us") for _ in range(12)]
    submit(env, network, balancer, requests, spacing=0.01)
    env.run(until=60)
    assert all(r.finished for r in requests)
    assert len({r.replica_name for r in requests}) >= 2


# ----------------------------------------------------------------------
# cross-region behaviour
# ----------------------------------------------------------------------
def _two_region_setup(env, network, make_tiny_replica, **kwargs):
    us = make_balancer(env, network, "us", **kwargs)
    eu = make_balancer(env, network, "eu", **kwargs)
    us_replica = make_tiny_replica("us")
    eu_replica = make_tiny_replica("eu")
    us.add_replica(us_replica)
    eu.add_replica(eu_replica)
    us.add_peer(eu)
    eu.add_peer(us)
    us.start()
    eu.start()
    return us, eu, us_replica, eu_replica


def test_requests_stay_local_while_capacity_allows(env, network, make_tiny_replica):
    us, eu, us_replica, eu_replica = _two_region_setup(env, network, make_tiny_replica)
    requests = [make_request(prompt_len=20, output_len=2, region="us") for _ in range(3)]
    submit(env, network, us, requests, spacing=1.0)
    env.run(until=30)
    assert all(r.finished for r in requests)
    assert all(r.serving_region == "us" for r in requests)
    assert us.remote_forwards == 0


def test_overloaded_region_offloads_to_remote_region(env, network, make_tiny_replica):
    us, eu, us_replica, eu_replica = _two_region_setup(env, network, make_tiny_replica)
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    # Saturate the single US replica with two huge long-running requests,
    # then send small ones: they must be offloaded to the idle EU replica.
    blockers = [make_request(prompt_len=big, output_len=800, region="us") for _ in range(2)]
    small = [make_request(prompt_len=20, output_len=2, region="us") for _ in range(3)]
    submit(env, network, us, blockers + small, spacing=0.3)
    env.run(until=90)
    assert all(r.finished for r in small)
    offloaded = [r for r in small if r.serving_region == "eu"]
    assert offloaded, "at least one small request must be served remotely"
    assert us.remote_forwards >= 1
    assert all(r.forward_hops == 1 for r in offloaded)
    assert eu.received_forwards >= 1


def test_forwarded_requests_are_never_forwarded_again(env, network, make_tiny_replica):
    us, eu, us_replica, eu_replica = _two_region_setup(env, network, make_tiny_replica)
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    blockers = [make_request(prompt_len=big, output_len=800, region="us") for _ in range(2)]
    small = [make_request(prompt_len=20, output_len=2, region="us") for _ in range(4)]
    submit(env, network, us, blockers + small, spacing=0.3)
    env.run(until=90)
    assert all(r.forward_hops <= 1 for r in blockers + small)


def test_region_local_mode_never_offloads(env, network, make_tiny_replica):
    us = make_balancer(env, network, "us", allow_remote=False)
    eu = make_balancer(env, network, "eu", allow_remote=False)
    us.add_replica(make_tiny_replica("us"))
    eu.add_replica(make_tiny_replica("eu"))
    us.add_peer(eu)
    eu.add_peer(us)
    us.start()
    eu.start()
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    requests = [make_request(prompt_len=big, output_len=100, region="us") for _ in range(3)]
    submit(env, network, us, requests, spacing=0.2)
    env.run(until=120)
    assert us.remote_forwards == 0
    assert all(r.serving_region in (None, "us") for r in requests)


def test_gdpr_constraint_blocks_eu_offload_to_us(env, network, make_tiny_replica):
    constraint = GDPRConstraint(network.topology)
    eu = make_balancer(env, network, "eu", constraint=constraint)
    us = make_balancer(env, network, "us", constraint=constraint)
    eu.add_replica(make_tiny_replica("eu"))
    us.add_replica(make_tiny_replica("us"))
    eu.add_peer(us)
    us.add_peer(eu)
    eu.start()
    us.start()
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    blockers = [make_request(prompt_len=big, output_len=800, region="eu") for _ in range(2)]
    small = [make_request(prompt_len=20, output_len=2, region="eu") for _ in range(3)]
    submit(env, network, eu, blockers + small, spacing=0.3, region="eu")
    env.run(until=60)
    # EU-origin traffic may never be served in the US.
    assert eu.remote_forwards == 0
    assert all(r.serving_region in (None, "eu") for r in blockers + small)


def test_blind_pushing_dispatches_even_to_full_replicas(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us", pushing_policy=BlindPushing())
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    balancer.start()
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    requests = [make_request(prompt_len=big, output_len=300, region="us") for _ in range(3)]
    submit(env, network, balancer, requests, spacing=0.1)
    env.run(until=0.5)
    # Everything was pushed immediately; nothing is queued at the balancer
    # even though only one request fits in the replica's memory.
    assert balancer.queue_size == 0
    assert replica.num_outstanding == 3
    assert replica.num_pending >= 2


def test_selective_pushing_queues_at_the_balancer(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    balancer.start()
    capacity = TINY_TEST_PROFILE.kv_capacity_tokens
    big = capacity - TINY_TEST_PROFILE.admission_output_reserve
    requests = [make_request(prompt_len=big, output_len=300, region="us") for _ in range(4)]
    submit(env, network, balancer, requests, spacing=0.05)
    env.run(until=0.8)
    # With SP-P the balancer holds back work once the replica stops admitting.
    # (Probe staleness can let a request or two slip through, but the bulk of
    # the backlog stays queued at the balancer instead of piling up on the
    # replica, which is the behaviour blind pushing lacks.)
    assert balancer.queue_size >= 1
    assert replica.num_pending <= 2


# ----------------------------------------------------------------------
# bookkeeping
# ----------------------------------------------------------------------
def test_add_and_remove_replica_updates_rings_and_tries(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    assert replica.name in balancer.replica_ring
    removed = balancer.remove_replica(replica.name)
    assert removed is replica
    assert replica.name not in balancer.replica_ring
    assert balancer.local_replicas() == []


def test_invalid_routing_policy_rejected(env, network):
    with pytest.raises(ValueError):
        SkyWalkerBalancer(env, "bad", "us", network, routing="magic")


def test_registered_selection_policy_resolves_as_routing_name(env, network):
    from repro.core import PrefixTreeSelection, register_selection_policy, unregister_selection_policy

    @register_selection_policy("unit-test-routing")
    class UnitTestSelection(PrefixTreeSelection):
        routing = "unit-test-routing"

    try:
        balancer = SkyWalkerBalancer(env, "custom", "us", network, routing="unit-test-routing")
        assert isinstance(balancer.selection, UnitTestSelection)
        assert balancer.routing == "unit-test-routing"
    finally:
        unregister_selection_policy("unit-test-routing")


def test_fail_strands_queued_requests_and_recover_restarts(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    balancer.add_replica(make_tiny_replica("us"))
    request = make_request(region="us")
    balancer.inbox.put(request)
    env.run(until=0.01)
    stranded = balancer.fail()
    assert request in stranded
    assert not balancer.healthy
    # The controller picks the stranded requests up exactly once.
    assert balancer.take_stranded() == stranded
    assert balancer.take_stranded() == []
    balancer.recover()
    assert balancer.healthy


def test_recover_clears_prefix_trees_but_keeps_rings(env, network, make_tiny_replica):
    """Regression: a recovered balancer must not route on pre-failure
    affinity data -- the replicas' caches were churned by the takeover
    balancer while it was down.  Membership-derived state (hash rings)
    stays; the controller re-drives membership itself."""
    us = make_balancer(env, network, "us")
    eu = make_balancer(env, network, "eu")
    replica = make_tiny_replica("us")
    us.add_replica(replica)
    us.add_peer(eu)
    prompt = tuple(range(64))
    us.replica_trie.insert(prompt, replica.name)
    us.snapshot_trie.insert(prompt, eu.name)
    assert us.replica_trie.total_tokens > 0

    us.start()
    env.run(until=0.01)
    us.fail()
    us.recover()

    assert us.healthy
    assert us.replica_trie.total_tokens == 0
    assert us.snapshot_trie.total_tokens == 0
    assert us.replica_trie.best_target(prompt, [replica.name]).target is None
    assert us.snapshot_trie.best_target(prompt, [eu.name]).target is None
    # Rings survive: membership is re-driven by the controller, not lost.
    assert replica.name in us.replica_ring
    assert eu.name in us.balancer_ring


def test_estimated_load_uses_public_dispatch_accessor(env, network, make_tiny_replica):
    balancer = make_balancer(env, network, "us")
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    # Optimistic seed probe reports zero outstanding; two un-probed
    # dispatches must still be counted.
    assert balancer.estimated_load(replica) == 0
    balancer.monitor.note_dispatch(replica.name)
    balancer.monitor.note_dispatch(replica.name)
    assert balancer.monitor.dispatched_since_probe(replica.name) == 2
    assert balancer.estimated_load(replica) == 2


# ----------------------------------------------------------------------
# listener hygiene across add/remove cycles (controller takeovers)
# ----------------------------------------------------------------------
def test_remove_replica_detaches_listeners_and_readd_does_not_stack(env, network, make_tiny_replica):
    balancer = SkyWalkerBalancer(env, "lb@us", "us", network)
    replica = make_tiny_replica("us")

    for _ in range(3):  # repeated takeover/recover cycles
        balancer.add_replica(replica)
        balancer.remove_replica(replica.name)
    balancer.add_replica(replica)
    # Exactly one completion and one health listener from this balancer.
    assert replica._on_complete.count(balancer._on_replica_complete) == 1
    assert replica._on_health.count(balancer._on_replica_health) == 1

    # outstanding is decremented exactly once per completion.
    request = make_request(region="us")
    request.replica_name = replica.name
    balancer.outstanding[replica.name] = 2
    for callback in replica._on_complete:
        callback(request)
    assert balancer.outstanding[replica.name] == 1


def test_duplicate_add_replica_is_idempotent(env, network, make_tiny_replica):
    balancer = SkyWalkerBalancer(env, "lb@us", "us", network)
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    balancer.add_replica(replica)
    assert replica._on_complete.count(balancer._on_replica_complete) == 1
    assert len(balancer.local_replicas()) == 1
