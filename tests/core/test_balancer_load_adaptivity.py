"""Tests for the adaptive interaction between prefix affinity and load.

§5.1 of the paper: "the prefix tree variant is more adaptive: when the prefix
hit ratio is low, it explores other underutilized replicas", and §3.3 argues
that prefix-aware routing must be combined with load balancing.  These tests
pin down that behaviour: affinity wins while the favourite replica is not
overloaded, and load balancing takes over when it is.
"""

import pytest

from repro.core import SkyWalkerBalancer
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE

from ..conftest import make_request


@pytest.fixture
def balancer(env, network, make_tiny_replica):
    balancer = SkyWalkerBalancer(
        env, "sw@us", "us", network,
        probe_interval_s=0.05,
        balance_abs_threshold=4,
        balance_rel_threshold=1.5,
    )
    for _ in range(3):
        balancer.add_replica(make_tiny_replica("us"))
    return balancer


def test_affinity_sticks_while_favourite_is_lightly_loaded(balancer):
    replicas = balancer.local_replicas()
    shared = tuple(range(70_000, 70_200))
    balancer.replica_trie.insert(shared, replicas[0].name)
    request = make_request(prompt_len=240, prefix=shared, region="us")
    chosen = balancer._select_replica(request, replicas)
    assert chosen is replicas[0]


def test_affinity_yields_when_favourite_is_severely_imbalanced(balancer):
    replicas = balancer.local_replicas()
    shared = tuple(range(71_000, 71_200))
    balancer.replica_trie.insert(shared, replicas[0].name)
    # Make the favourite look far busier than its peers via the monitor's
    # optimistic dispatch counters (the same signal routing uses live).
    for _ in range(10):
        balancer.monitor.note_dispatch(replicas[0].name)
    request = make_request(prompt_len=240, prefix=shared, region="us")
    chosen = balancer._select_replica(request, replicas)
    assert chosen is not replicas[0]


def test_low_hit_ratio_prefers_least_loaded(balancer):
    replicas = balancer.local_replicas()
    shared = tuple(range(72_000, 72_020))  # only 20 shared tokens
    balancer.replica_trie.insert(shared, replicas[0].name)
    balancer.monitor.note_dispatch(replicas[0].name)
    balancer.monitor.note_dispatch(replicas[1].name)
    # 20 / 400 tokens is far below the 0.5 threshold -> load balancing wins.
    request = make_request(prompt_len=400, prefix=shared, region="us")
    chosen = balancer._select_replica(request, replicas)
    assert chosen is replicas[2]


def test_estimated_load_combines_probe_and_recent_dispatches(balancer):
    replicas = balancer.local_replicas()
    assert balancer._estimated_load(replicas[0]) == 0
    balancer.monitor.note_dispatch(replicas[0].name)
    balancer.monitor.note_dispatch(replicas[0].name)
    assert balancer._estimated_load(replicas[0]) == 2


def test_severely_imbalanced_requires_both_thresholds(balancer):
    replicas = balancer.local_replicas()
    # Busy, but everyone is equally busy: not imbalanced.
    for replica in replicas:
        for _ in range(6):
            balancer.monitor.note_dispatch(replica.name)
    assert not balancer._severely_imbalanced(replicas[0], replicas)
    # Now make one replica clearly busier than the rest.
    for _ in range(8):
        balancer.monitor.note_dispatch(replicas[0].name)
    assert balancer._severely_imbalanced(replicas[0], replicas)
