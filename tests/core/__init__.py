"""Test package."""
