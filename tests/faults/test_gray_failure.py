"""Gray failures: degraded replicas, lossy links, and fault composition."""

import pytest

from repro.faults import (
    FaultSchedule,
    LinkDegrade,
    LinkLatencySpike,
    RegionPartition,
    ReplicaCrash,
    ReplicaDegrade,
    ReplicaRestore,
)
from repro.network import Network, default_topology
from repro.replica import (
    PERFORMANCE_LEVELS,
    TINY_TEST_PROFILE,
    ReplicaServer,
    resolve_performance_scale,
)
from repro.sim import Environment, Store

from .test_injector import run_faulted, tiny_cluster


@pytest.fixture
def env():
    return Environment()


# ----------------------------------------------------------------------
# performance levels
# ----------------------------------------------------------------------
def test_performance_levels_resolve_by_name_or_float():
    assert resolve_performance_scale("nominal") == 1.0
    assert resolve_performance_scale("thermal-throttle") == PERFORMANCE_LEVELS[
        "thermal-throttle"
    ]
    assert resolve_performance_scale(0.5) == 0.5
    with pytest.raises(ValueError, match="unknown performance level"):
        resolve_performance_scale("warp-speed")
    with pytest.raises(ValueError, match="must be in"):
        resolve_performance_scale(0.0)
    with pytest.raises(ValueError, match="must be in"):
        resolve_performance_scale(1.5)


def test_degrade_stretches_compute_but_not_promotion_stall(env):
    replica = ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)
    batcher = replica.batcher
    nominal = TINY_TEST_PROFILE.prefill_time(100)
    replica.set_performance_level(0.5)
    assert batcher.performance_scale == 0.5
    # Compute time doubles at half speed; the scale applies at plan time.
    assert TINY_TEST_PROFILE.prefill_time(100) == nominal  # profile untouched
    replica.restore_performance()
    assert batcher.performance_scale == 1.0


def test_degraded_replica_stays_healthy_and_reports_load(env):
    """The gray-failure contract: slow, not dead -- probes still answer."""
    replica = ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)
    replica.set_performance_level("thermal-throttle")
    assert replica.healthy
    assert replica.performance_level == "thermal-throttle"
    assert replica.num_pending == 0  # probe surface keeps working
    assert replica.has_capacity  # still admits work


def test_restore_epoch_token_guards_stale_restores(env):
    replica = ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)
    token_old = replica.set_performance_level("power-cap")
    token_new = replica.set_performance_level("p-state-floor")
    # A stale timed restore (from the superseded degrade) must not lift
    # the newer, deeper degrade.
    replica.restore_performance(token_old)
    assert replica.performance_scale == PERFORMANCE_LEVELS["p-state-floor"]
    replica.restore_performance(token_new)
    assert replica.performance_scale == 1.0
    # Forced restore works regardless of epochs.
    replica.set_performance_level("power-cap")
    replica.restore_performance()
    assert replica.performance_scale == 1.0


# ----------------------------------------------------------------------
# crash-while-degraded precedence (the restart-clears-transients rule)
# ----------------------------------------------------------------------
def test_crash_recovery_keeps_degrade_only_while_scheduled(env):
    """Precedence: a restart comes up at full rate unless the degrade
    window is still open (environmental causes outlast the process)."""
    replica = ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)

    def scenario():
        yield env.timeout(5.0)
        replica.set_performance_level("thermal-throttle", until=15.0)
        yield env.timeout(3.0)  # t=8
        replica.fail()
        yield env.timeout(3.0)  # t=11, degrade still scheduled until 15
        replica.recover()
        assert replica.healthy
        assert replica.batcher.performance_scale == pytest.approx(
            PERFORMANCE_LEVELS["thermal-throttle"]
        )
        yield env.timeout(5.0)  # t=16, past the window
        replica.fail()
        yield env.timeout(1.0)  # t=17
        replica.recover()
        # The window expired while down: the replacement runs at full rate.
        assert replica.batcher.performance_scale == 1.0
        assert replica.performance_level is None

    env.process(scenario())
    env.run(until=20.0)


def test_crash_recovery_keeps_indefinite_degrade(env):
    """An open-ended degrade (until=None) survives a crash/recover cycle:
    only an explicit restore lifts it."""
    replica = ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)

    def scenario():
        yield env.timeout(2.0)
        replica.set_performance_level("power-cap")  # no until
        replica.fail()
        yield env.timeout(1.0)
        replica.recover()
        assert replica.batcher.performance_scale == pytest.approx(
            PERFORMANCE_LEVELS["power-cap"]
        )
        replica.restore_performance()
        assert replica.batcher.performance_scale == 1.0

    env.process(scenario())
    env.run(until=5.0)


def test_crash_while_degraded_end_to_end():
    """Injector-level precedence: degrade, crash, timed recovery inside
    the degrade window -> both records resolve, replica ends nominal."""
    schedule = (
        FaultSchedule()
        .add(5.0, ReplicaDegrade(region="us", index=0, duration_s=15.0))
        .add(8.0, ReplicaCrash(region="us", index=0, duration_s=3.0))
    )
    result = run_faulted("skywalker", schedule)
    resilience = result.metrics.resilience
    assert resilience.outage_windows == [pytest.approx((8.0, 11.0))]
    assert resilience.degraded_windows == [pytest.approx((5.0, 20.0))]
    replica = result.deployment.replicas_in("us")[0]
    assert replica.healthy
    assert replica.performance_scale == 1.0


# ----------------------------------------------------------------------
# replica-degrade faults end to end
# ----------------------------------------------------------------------
def test_replica_degrade_opens_degraded_window_not_outage():
    schedule = FaultSchedule.single(
        5.0, ReplicaDegrade(region="us", index=0, level="thermal-throttle", duration_s=10.0)
    )
    result = run_faulted("skywalker", schedule)
    resilience = result.metrics.resilience
    assert resilience.outage_windows == []
    assert resilience.degraded_windows == [pytest.approx((5.0, 15.0))]
    assert resilience.mean_time_to_recovery_s == pytest.approx(10.0)
    # Nothing crashed: no failures, and the run kept completing work.
    assert resilience.failed_requests == 0
    assert result.metrics.num_completed > 0
    assert result.deployment.replicas_in("us")[0].performance_scale == 1.0


def test_explicit_replica_restore_closes_the_degraded_window():
    schedule = (
        FaultSchedule()
        .add(5.0, ReplicaDegrade(region="eu", index=0))  # open-ended
        .add(12.0, ReplicaRestore(region="eu", index=0))
    )
    result = run_faulted("skywalker", schedule)
    resilience = result.metrics.resilience
    assert resilience.degraded_windows == [pytest.approx((5.0, 12.0))]
    assert result.deployment.replicas_in("eu")[0].performance_scale == 1.0


def test_degraded_replica_serves_less_traffic_under_hybrid_routing():
    """Observability: probes see the slow replica's inflated queue, so
    load-discounted routing shifts work away without any crash signal."""
    degrade = FaultSchedule.single(
        0.0, ReplicaDegrade(region="us", index=0, level="p-state-floor")
    )
    nominal = run_faulted("skywalker-hybrid", None, duration=60.0)
    degraded = run_faulted("skywalker-hybrid", degrade, duration=60.0)

    def us_share(result):
        completed = result.metrics.num_completed
        served = sum(
            1 for r in result.tracker.completed if r.serving_region == "us"
        )
        return served / max(completed, 1)

    # The degraded replica never looks unhealthy...
    assert degraded.deployment.replicas_in("us")[0].healthy
    # ...but it ends up with a measurably smaller share of the fleet's work.
    assert us_share(degraded) < us_share(nominal)


# ----------------------------------------------------------------------
# link degrades (loss + jitter)
# ----------------------------------------------------------------------
def test_link_degrade_drops_messages_at_the_configured_rate(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.add_link_degrade("us", "eu", loss_probability=0.5)
    inbox = Store(env)
    for _ in range(200):
        net.deliver("x", "us", "eu", inbox)
    assert 40 <= net.dropped_messages <= 160  # ~100 expected
    # The reverse direction is degraded too (symmetric by default).
    assert net.link_loss_probability("eu", "us") == pytest.approx(0.5)


def test_link_degrade_contributions_are_additive_and_heal(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.add_link_degrade("us", "eu", loss_probability=0.2, extra_jitter_fraction=0.3)
    net.add_link_degrade("us", "eu", loss_probability=0.1)
    assert net.link_loss_probability("us", "eu") == pytest.approx(0.3)
    net.remove_link_degrade("us", "eu", loss_probability=0.2, extra_jitter_fraction=0.3)
    assert net.link_loss_probability("us", "eu") == pytest.approx(0.1)
    net.remove_link_degrade("us", "eu", loss_probability=0.1)
    assert net.link_loss_probability("us", "eu") == 0.0


def test_link_degrade_jitter_only_inflates(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    base = net.topology.one_way("us", "eu")
    net.add_link_degrade("us", "eu", extra_jitter_fraction=0.5)
    samples = [net.sample_one_way("us", "eu") for _ in range(100)]
    assert all(base <= s <= base * 1.5 for s in samples)
    assert len(set(samples)) > 1


def test_link_degrade_probes_feel_jitter_but_are_never_lost(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.add_link_degrade("us", "eu", loss_probability=1.0)
    results = []

    def prober():
        value = yield from net.probe("us", "eu", lambda: "alive")
        results.append(value)

    env.process(prober())
    env.run()
    assert results == ["alive"]  # 100% message loss, probe still answers


def test_degrade_rng_is_independent_of_the_jitter_stream(env):
    """Installing a degrade must not perturb the nominal jitter draws."""
    plain = Network(env, default_topology(), jitter_fraction=0.2, seed=7)
    degraded = Network(env, default_topology(), jitter_fraction=0.2, seed=7)
    degraded.add_link_degrade("eu", "asia", extra_jitter_fraction=0.5)
    # Sampling an *unaffected* link gives identical draws on both networks.
    a = [plain.sample_one_way("us", "eu") for _ in range(50)]
    b = [degraded.sample_one_way("us", "eu") for _ in range(50)]
    assert a == b


def test_link_degrade_fault_end_to_end():
    schedule = FaultSchedule.single(
        5.0,
        LinkDegrade(
            a="us", b="eu", loss_probability=0.3, extra_jitter_fraction=0.5,
            duration_s=10.0,
        ),
    )
    result = run_faulted("skywalker", schedule)
    resilience = result.metrics.resilience
    assert resilience.degraded_windows == [pytest.approx((5.0, 15.0))]
    assert resilience.outage_windows == []
    assert resilience.dropped_messages > 0
    # Healed: no residual loss or jitter.
    net = result.env  # noqa: F841  (document that the run finished)
    assert result.metrics.num_completed > 0


# ----------------------------------------------------------------------
# fault composition on one edge (the spike/partition satellite)
# ----------------------------------------------------------------------
def test_spike_heal_does_not_resurrect_a_partitioned_link(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.set_link_blocked("us", "eu", True)
    net.add_link_extra_latency("us", "eu", 0.2)
    net.remove_link_extra_latency("us", "eu", 0.2)
    # The spike settling touched only the latency table, never the block.
    assert net.link_blocked("us", "eu")
    assert net.link_extra_latency("us", "eu") == 0.0
    net.set_link_blocked("us", "eu", False)
    assert not net.link_blocked("us", "eu")


def test_partition_heal_leaves_an_open_spike_active(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.add_link_extra_latency("us", "eu", 0.2)
    net.set_link_blocked("us", "eu", True)
    net.set_link_blocked("us", "eu", False)
    assert net.link_extra_latency("us", "eu") == pytest.approx(0.2)


def test_overlapping_spikes_sum_and_heal_independently(env):
    net = Network(env, default_topology(), jitter_fraction=0.0, seed=1)
    net.add_link_extra_latency("us", "eu", 0.2)
    net.add_link_extra_latency("us", "eu", 0.3)
    assert net.link_extra_latency("us", "eu") == pytest.approx(0.5)
    net.remove_link_extra_latency("us", "eu", 0.2)
    assert net.link_extra_latency("us", "eu") == pytest.approx(0.3)
    net.remove_link_extra_latency("us", "eu", 0.3)
    assert net.link_extra_latency("us", "eu") == 0.0


def test_spike_and_partition_at_identical_timestamps_compose():
    """Regression: same-edge, same-time spike + partition.  Fault ops at
    identical timestamps apply in schedule order and neither clobbers the
    other's state; both heal cleanly."""
    schedule = (
        FaultSchedule()
        .add(10.0, LinkLatencySpike(a="us", b="eu", extra_s=0.2, duration_s=5.0))
        .add(10.0, RegionPartition(a="us", b="eu", duration_s=8.0))
        .add(10.0, LinkLatencySpike(a="us", b="eu", extra_s=0.1, duration_s=12.0))
    )
    result = run_faulted("skywalker", schedule)
    # Injection order at t=10 is list order (stable sort).
    kinds = [r.fault.kind for r in result.injector.records]
    assert kinds == ["link-latency-spike", "region-partition", "link-latency-spike"]
    # All healed: the partition's unblock did not cancel the longer spike
    # early, the spikes' settles did not unblock the partition, and after
    # every duration elapsed the edge is fully clean.
    net = result.injector.network
    assert not net.link_blocked("us", "eu")
    assert not net.link_blocked("eu", "us")
    assert net.link_extra_latency("us", "eu") == 0.0
    assert result.metrics.num_completed > 0


def test_sorted_events_is_stable_for_identical_timestamps():
    spike = LinkLatencySpike(a="us", b="eu", extra_s=0.2)
    partition = RegionPartition(a="us", b="eu")
    schedule = FaultSchedule().add(10.0, spike).add(10.0, partition)
    assert [e.fault for e in schedule.sorted_events()] == [spike, partition]
    flipped = FaultSchedule().add(10.0, partition).add(10.0, spike)
    assert [e.fault for e in flipped.sorted_events()] == [partition, spike]
