"""Seeded renewal processes: compile determinism, serial == parallel."""

import multiprocessing

import pytest

pytestmark = pytest.mark.strict_invariants

from repro.experiments import REGISTRY, SweepExecutor, build_arena_workload
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    RenewalFaultProcess,
    ReplicaCrash,
    ReplicaDegrade,
    ReplicaRecover,
    StochasticFaultSchedule,
    make_fault_schedule,
    resolve_fault_schedule,
)

from .test_injector import run_faulted, tiny_cluster


def crash_process(**overrides):
    kwargs = dict(
        fault=ReplicaCrash(region="us", index=0),
        mtbf_s=20.0,
        mttr_s=5.0,
        seed=3,
    )
    kwargs.update(overrides)
    return RenewalFaultProcess(**kwargs)


# ----------------------------------------------------------------------
# compile determinism
# ----------------------------------------------------------------------
def test_same_seed_compiles_bit_identically():
    a = crash_process().compile_events(300.0, run_seed=7)
    b = crash_process().compile_events(300.0, run_seed=7)
    assert a == b
    assert len(a) >= 1
    # Occurrences carry their own drawn repair as duration_s.
    assert all(event.fault.duration_s > 0 for event in a)
    # Renewal structure: next failure starts after the previous repair.
    for prev, cur in zip(a, a[1:]):
        assert cur.at_s > prev.at_s + prev.fault.duration_s


def test_different_process_or_run_seeds_diverge():
    base = crash_process().compile_events(300.0, run_seed=7)
    assert crash_process(seed=4).compile_events(300.0, run_seed=7) != base
    assert crash_process().compile_events(300.0, run_seed=8) != base


def test_two_processes_in_one_bundle_draw_independent_streams():
    # Same template and timing parameters, different process seeds: the
    # bundle must not collapse them onto one stream.
    bundle = StochasticFaultSchedule(
        processes=(crash_process(seed=1), crash_process(seed=2))
    )
    compiled = bundle.compile(duration_s=300.0, seed=7)
    times = [event.at_s for event in compiled.events]
    assert len(times) == len(set(times))  # no duplicated draws


def test_weibull_mean_matches_mtbf():
    process = crash_process(
        distribution="weibull", shape=1.5, mtbf_s=30.0, mttr_s=1.0, seed=11
    )
    events = process.compile_events(100_000.0, run_seed=0)
    gaps = []
    prev_end = process.start_s
    for event in events:
        gaps.append(event.at_s - prev_end)
        prev_end = event.at_s + event.fault.duration_s
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(30.0, rel=0.15)


def test_compile_respects_duration_and_max_events():
    process = crash_process(mtbf_s=1.0, mttr_s=0.5, max_events=10)
    events = process.compile_events(1000.0, run_seed=0)
    assert len(events) == 10
    short = crash_process(mtbf_s=50.0).compile_events(10.0, run_seed=0)
    assert all(event.at_s < 10.0 for event in short)


def test_bundle_appends_process_events_after_base():
    base = FaultSchedule.single(1.0, ReplicaCrash(region="eu", index=0, duration_s=2.0))
    bundle = StochasticFaultSchedule(processes=(crash_process(),), base=base)
    compiled = bundle.compile(duration_s=100.0, seed=7)
    assert compiled.events[0] == base.events[0]
    assert len(compiled.events) > 1
    assert compiled.use_controller == base.use_controller


def test_validation_errors():
    with pytest.raises(ValueError, match="duration_s"):
        RenewalFaultProcess(fault=ReplicaRecover())  # no duration_s field
    with pytest.raises(ValueError, match="must be positive"):
        crash_process(mtbf_s=0.0)
    with pytest.raises(ValueError, match="unknown distribution"):
        crash_process(distribution="pareto")
    with pytest.raises(TypeError, match="FaultSpec"):
        RenewalFaultProcess(fault="replica-crash")
    with pytest.raises(TypeError, match="RenewalFaultProcess"):
        StochasticFaultSchedule(processes=("gray-throttle-renewal",))


def test_injector_rejects_uncompiled_schedules():
    from repro.sim import Environment

    # The type check fires before any collaborator is touched, so the
    # wiring can stay empty here.
    with pytest.raises(TypeError, match="compile"):
        FaultInjector(
            Environment(),
            StochasticFaultSchedule(processes=(crash_process(),)),
            network=None,
            deployment=None,
            frontend=None,
            balancers=[],
        )


# ----------------------------------------------------------------------
# end to end: the runner compiles per (duration, seed)
# ----------------------------------------------------------------------
def test_runner_compiles_stochastic_schedules():
    bundle = StochasticFaultSchedule(
        processes=(
            RenewalFaultProcess(
                fault=ReplicaDegrade(region="us", index=0, level="power-cap"),
                mtbf_s=10.0,
                mttr_s=4.0,
                seed=5,
            ),
        )
    )
    result = run_faulted("skywalker", bundle, duration=60.0)
    resilience = result.metrics.resilience
    assert resilience is not None
    assert len(resilience.degraded_windows) >= 1
    assert resilience.outage_windows == []
    # The compiled occurrences match an offline compile at the run's
    # (duration, seed) -- what makes golden traces reproducible.
    offline = bundle.compile(duration_s=60.0, seed=1)
    assert len(result.injector.schedule.events) == len(offline.events)


def test_nothing_fires_within_duration_behaves_like_no_faults():
    quiet = StochasticFaultSchedule(
        processes=(crash_process(mtbf_s=1e9),)
    )
    baseline = run_faulted("skywalker", None)
    result = run_faulted("skywalker", quiet)
    # Compiled empty -> no injector, no resilience record: bit-identical
    # metrics payload to the historical fault-free path.
    assert result.injector is None
    assert result.metrics.to_dict() == baseline.metrics.to_dict()


def test_named_stochastic_scenarios_resolve():
    schedule = resolve_fault_schedule("gray-throttle-renewal")
    assert isinstance(schedule, StochasticFaultSchedule)
    compiled = schedule.compile(duration_s=600.0, seed=0)
    assert not compiled.is_empty
    assert compiled.events[0].fault.kind == "replica-degrade"


# ----------------------------------------------------------------------
# sweep determinism: serial == workers=2 == forced spawn
# ----------------------------------------------------------------------
def _payloads(result):
    out = {}
    for workload in result.workloads():
        for system in result.systems(workload):
            for seed, metrics in result.runs_for(workload, system).items():
                out[(workload, system, seed)] = metrics.to_dict()
    return out


def _stochastic_sweep(executor):
    workload = build_arena_workload(scale=0.03, seed=7)
    # A short mtbf keeps every seed's compiled schedule non-empty within
    # the 30 s horizon (with the default 40 s it's seed-dependent).
    faults = make_fault_schedule("spot-eviction-wave", mtbf_s=12.0, mttr_s=4.0)
    return executor.run(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("round-robin")],
        [workload],
        cluster=tiny_cluster(),
        duration_s=30.0,
        seed=1,
        seeds=[1, 2],
        faults=faults,
    )


def test_stochastic_sweep_parallel_and_spawn_match_serial():
    serial = _payloads(_stochastic_sweep(SweepExecutor(workers=1)))
    parallel = _payloads(_stochastic_sweep(SweepExecutor(workers=2)))
    spawned = _payloads(
        _stochastic_sweep(
            SweepExecutor(workers=2, mp_context=multiprocessing.get_context("spawn"))
        )
    )
    assert parallel == serial
    assert spawned == serial
    # The two seeds really exercised different compiled schedules.
    sample = next(key for key in serial if key[2] == 1)
    other = (sample[0], sample[1], 2)
    assert serial[sample] != serial[other]
    # And the faults left a mark: resilience appears in every payload.
    assert all("resilience" in payload for payload in serial.values())
