"""Fault specs, the fault registry and schedule semantics."""

import pickle

import pytest

from repro.faults import (
    BalancerFailure,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    LinkLatencySpike,
    RegionPartition,
    ReplicaCrash,
    make_fault,
    make_fault_schedule,
    register_fault,
    register_fault_schedule,
    registered_fault_schedules,
    registered_faults,
    resolve_fault,
    resolve_fault_schedule,
    unregister_fault,
    unregister_fault_schedule,
)

BUILTIN_KINDS = (
    "replica-crash",
    "replica-recover",
    "balancer-fail",
    "balancer-recover",
    "region-partition",
    "link-latency-spike",
)


# ----------------------------------------------------------------------
# the fault registry
# ----------------------------------------------------------------------
def test_every_builtin_fault_is_registered():
    assert set(BUILTIN_KINDS) <= set(registered_faults())


def test_unknown_fault_kind_raises():
    with pytest.raises(ValueError, match="unknown fault"):
        resolve_fault("quantum-flip")


def test_make_fault_builds_typed_specs():
    fault = make_fault("replica-crash", region="eu", index=1, duration_s=3.0)
    assert isinstance(fault, ReplicaCrash)
    assert fault.kind == "replica-crash"
    assert fault.region == "eu"
    assert fault.index == 1
    assert fault.duration_s == pytest.approx(3.0)


def test_register_fault_round_trip():
    calls = []

    @register_fault("unit-test-fault")
    def _apply(spec, ctx, record):
        calls.append(spec)

    try:
        assert "unit-test-fault" in registered_faults()
        entry = resolve_fault("unit-test-fault")
        entry.applier(FaultSpec(kind="unit-test-fault"), None, None)
        assert len(calls) == 1
        with pytest.raises(ValueError, match="already registered"):
            register_fault("unit-test-fault")(lambda spec, ctx, record: None)
    finally:
        unregister_fault("unit-test-fault")
    assert "unit-test-fault" not in registered_faults()


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_schedule_is_immutable_builder():
    empty = FaultSchedule()
    assert empty.is_empty
    assert len(empty) == 0
    one = empty.add(5.0, ReplicaCrash(region="us"))
    two = one.add(2.0, BalancerFailure(region="eu"))
    assert empty.is_empty  # builders never mutate
    assert len(one) == 1 and len(two) == 2
    assert two.kinds() == ("replica-crash", "balancer-fail")
    # Sorted execution order, not insertion order.
    assert [event.at_s for event in two.sorted_events()] == [2.0, 5.0]


def test_schedule_validates_events():
    with pytest.raises(ValueError, match="non-negative"):
        FaultEvent(-1.0, ReplicaCrash())
    with pytest.raises(TypeError, match="FaultSpec"):
        FaultEvent(1.0, "replica-crash")
    with pytest.raises(TypeError, match="FaultEvent"):
        FaultSchedule(events=(ReplicaCrash(),))
    with pytest.raises(ValueError, match="recovery_time_s"):
        FaultSchedule(recovery_time_s=0.0)


def test_schedule_single_and_equality():
    a = FaultSchedule.single(30.0, BalancerFailure(region="eu", duration_s=20.0))
    b = FaultSchedule(events=(FaultEvent(30.0, BalancerFailure(region="eu", duration_s=20.0)),))
    assert a == b  # plain data: value equality, usable as a cache key


def test_schedule_pickles_for_worker_processes():
    schedule = (
        FaultSchedule()
        .add(10.0, BalancerFailure(region="eu", duration_s=5.0))
        .add(12.0, RegionPartition(a="us", b="asia", duration_s=3.0))
        .add(15.0, LinkLatencySpike(a="us", b="eu", extra_s=0.1, duration_s=2.0))
    )
    assert pickle.loads(pickle.dumps(schedule)) == schedule


# ----------------------------------------------------------------------
# the schedule registry
# ----------------------------------------------------------------------
def test_builtin_outage_schedule_resolves_by_name():
    assert "eu-balancer-outage" in registered_fault_schedules()
    schedule = make_fault_schedule("eu-balancer-outage", at_s=7.0, duration_s=3.0)
    assert schedule.kinds() == ("balancer-fail",)
    assert schedule.events[0].at_s == pytest.approx(7.0)
    assert schedule.events[0].fault.duration_s == pytest.approx(3.0)
    assert schedule.recovery_time_s == pytest.approx(3.0)


def test_resolve_fault_schedule_normalises():
    assert resolve_fault_schedule(None) is None
    schedule = FaultSchedule.single(1.0, ReplicaCrash())
    assert resolve_fault_schedule(schedule) is schedule
    assert resolve_fault_schedule("eu-balancer-outage") == make_fault_schedule(
        "eu-balancer-outage"
    )
    with pytest.raises(ValueError, match="unknown fault schedule"):
        resolve_fault_schedule("does-not-exist")
    with pytest.raises(TypeError, match="faults must be"):
        resolve_fault_schedule(42)


def test_register_fault_schedule_round_trip():
    @register_fault_schedule("unit-test-outage")
    def _factory(at_s: float = 1.0):
        return FaultSchedule.single(at_s, ReplicaCrash(region="us"))

    try:
        schedule = make_fault_schedule("unit-test-outage", at_s=2.5)
        assert schedule.events[0].at_s == pytest.approx(2.5)
    finally:
        unregister_fault_schedule("unit-test-outage")
    with pytest.raises(ValueError, match="unknown fault schedule"):
        make_fault_schedule("unit-test-outage")


def test_schedule_factory_must_return_schedule():
    @register_fault_schedule("unit-test-broken")
    def _factory():
        return ["not", "a", "schedule"]

    try:
        with pytest.raises(TypeError, match="expected FaultSchedule"):
            make_fault_schedule("unit-test-broken")
    finally:
        unregister_fault_schedule("unit-test-broken")
