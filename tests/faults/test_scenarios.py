"""The named chaos-scenario library: every entry resolves, runs, heals."""

import pytest

from repro.faults import (
    CompilesToFaultSchedule,
    FaultSchedule,
    StochasticFaultSchedule,
    make_fault_schedule,
    registered_fault_schedules,
    registered_faults,
    resolve_fault_schedule,
)
from repro.faults.scenarios import DEFAULT_REGIONS

from .test_injector import run_faulted

EXPECTED_SCENARIOS = {
    "eu-balancer-outage",
    "rolling-upgrade",
    "zone-outage-correlated",
    "region-partition-flap",
    "thermal-throttle",
    "power-cap-region",
    "slow-replica-epidemic",
    "flash-crowd-throttle",
    "lossy-wan",
    "wan-brownout",
    "gray-failure-mix",
    "spot-eviction-wave",
    "replica-crash-storm",
    "gray-throttle-renewal",
}


def test_library_contains_the_advertised_scenarios():
    assert EXPECTED_SCENARIOS <= set(registered_fault_schedules())


@pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
def test_every_scenario_compiles_to_known_fault_kinds(name):
    """Each entry resolves by name, compiles to a concrete schedule, and
    only references registered fault kinds and default-topology regions --
    i.e. it will pass injector validation against the standard cluster."""
    schedule = resolve_fault_schedule(name)
    assert isinstance(schedule, (FaultSchedule, CompilesToFaultSchedule))
    compiled = schedule.compile(duration_s=600.0, seed=0)
    assert isinstance(compiled, FaultSchedule)
    assert not compiled.is_empty
    known_kinds = set(registered_faults())
    for event in compiled.sorted_events():
        assert event.fault.kind in known_kinds
        assert event.at_s >= 0.0
        for attr in ("region", "a", "b"):
            value = getattr(event.fault, attr, None)
            if value is not None:
                assert value in DEFAULT_REGIONS


def test_scenarios_take_keyword_overrides():
    schedule = make_fault_schedule("thermal-throttle", at_s=3.0, duration_s=4.0)
    (event,) = schedule.events
    assert event.at_s == 3.0
    assert event.fault.duration_s == 4.0
    storm = make_fault_schedule("replica-crash-storm", mtbf_s=5.0, region="eu")
    assert isinstance(storm, StochasticFaultSchedule)
    assert storm.processes[0].fault.region == "eu"


def test_rolling_upgrade_staggers_one_replica_at_a_time():
    schedule = resolve_fault_schedule("rolling-upgrade")
    events = schedule.sorted_events()
    assert len(events) == len(DEFAULT_REGIONS)
    # Windows never overlap: each drain ends before the next begins.
    for prev, cur in zip(events, events[1:]):
        assert prev.at_s + prev.fault.duration_s < cur.at_s
    result = run_faulted("skywalker", "rolling-upgrade", duration=60.0)
    assert len(result.metrics.resilience.outage_windows) == len(DEFAULT_REGIONS)
    assert all(replica.healthy for replica in result.deployment.replicas)


def test_zone_outage_takes_replica_and_balancer_down_together():
    result = run_faulted("skywalker", "zone-outage-correlated", duration=60.0)
    resilience = result.metrics.resilience
    assert resilience.failover_count == 1
    # Replica and balancer windows open at the same instant.
    assert len(resilience.outage_windows) == 2
    assert all(start == pytest.approx(20.0) for start, _ in resilience.outage_windows)


def test_wan_brownout_composes_spike_and_degrade_on_one_edge():
    result = run_faulted("skywalker", "wan-brownout", duration=50.0)
    net = result.injector.network
    # Both the spike and the degrade healed without clobbering each other
    # despite firing at the identical timestamp on the identical edge.
    assert net.link_extra_latency("us", "eu") == 0.0
    assert net.link_loss_probability("us", "eu") == 0.0
    assert not net.link_blocked("us", "eu")
    resilience = result.metrics.resilience
    assert resilience.outage_windows == [pytest.approx((12.0, 37.0))]
    assert resilience.degraded_windows == [pytest.approx((12.0, 37.0))]


def test_gray_failure_mix_merges_component_scenarios():
    schedule = resolve_fault_schedule("gray-failure-mix")
    kinds = sorted(schedule.kinds())
    assert kinds == ["link-degrade", "link-latency-spike", "replica-degrade"]
    result = run_faulted("skywalker", "gray-failure-mix", duration=60.0)
    resilience = result.metrics.resilience
    # Two gray windows (slow replica + lossy link) and one spike outage.
    assert len(resilience.degraded_windows) == 2
    assert len(resilience.outage_windows) == 1
    assert resilience.failed_requests == 0


def test_slow_replica_epidemic_spreads_over_time():
    schedule = resolve_fault_schedule("slow-replica-epidemic")
    events = schedule.sorted_events()
    assert len(events) == len(DEFAULT_REGIONS)
    assert all(event.fault.kind == "replica-degrade" for event in events)
    starts = [event.at_s for event in events]
    assert starts == sorted(starts)
    assert len(set(starts)) == len(starts)  # staggered, not simultaneous
