"""Resilience aggregation against hand-computed fixtures."""

import json

import pytest

from repro.metrics import ResilienceMetrics, collect_resilience_metrics
from repro.metrics.summary import percentile

from ..conftest import make_request


def finished_request(sent, first_token, finish, *, prompt_len=10, generated=5, region="us"):
    request = make_request(prompt_len=prompt_len, output_len=generated, region=region)
    request.sent_time = sent
    request.first_token_time = first_token
    request.finish_time = finish
    request.generated_tokens = generated
    request.response_network_delay = 0.0
    return request


def test_phases_goodput_and_recovery_hand_computed():
    # One outage window [10, 20] in a 40 s run.
    #   r1: sent 5,  ft 6,  finish 7   -> before, ttft 1.0
    #   r2: sent 12, ft 15, finish 18  -> during, ttft 3.0, finishes in-window
    #   r3: sent 25, ft 26, finish 27  -> after,  ttft 1.0
    r1 = finished_request(5.0, 6.0, 7.0)
    r2 = finished_request(12.0, 15.0, 18.0, prompt_len=20, generated=10)
    r3 = finished_request(25.0, 26.0, 27.0)
    metrics = collect_resilience_metrics(
        completed=[r1, r2, r3],
        duration_s=40.0,
        outage_windows=[(10.0, 20.0)],
        num_fault_events=1,
        failover_count=1,
        stranded_requests=2,
        parked_requests=3,
        failed_requests=4,
        dropped_messages=5,
    )
    assert metrics.completed_before == 1
    assert metrics.completed_during == 1
    assert metrics.completed_after == 1
    # Only r2 finishes inside [10, 20]: (20 prompt + 10 output) / 10 s span.
    assert metrics.goodput_during_outage_tokens_per_s == pytest.approx(3.0)
    assert metrics.mean_time_to_recovery_s == pytest.approx(10.0)
    assert metrics.max_time_to_recovery_s == pytest.approx(10.0)
    # Single-sample phases: the p90 is the sample itself.
    assert metrics.ttft_p90_before_s == pytest.approx(1.0)
    assert metrics.ttft_p90_during_s == pytest.approx(3.0)
    assert metrics.ttft_p90_after_s == pytest.approx(1.0)
    # Counters pass through verbatim.
    assert metrics.stranded_requests == 2
    assert metrics.parked_requests == 3
    assert metrics.failed_requests == 4
    assert metrics.dropped_messages == 5


def test_multiple_windows_span_and_ttr():
    # Two windows: [5, 8] and [20, 30] -> span [5, 30], TTRs 3 and 10.
    requests = [
        finished_request(2.0, 3.0, 4.0),    # before
        finished_request(10.0, 11.0, 12.0),  # between windows counts as during
        finished_request(35.0, 36.0, 37.0),  # after
    ]
    metrics = collect_resilience_metrics(
        completed=requests,
        duration_s=40.0,
        outage_windows=[(20.0, 30.0), (5.0, 8.0)],
        num_fault_events=2,
        failover_count=2,
    )
    assert metrics.outage_windows == [(5.0, 8.0), (20.0, 30.0)]
    assert metrics.mean_time_to_recovery_s == pytest.approx(6.5)
    assert metrics.max_time_to_recovery_s == pytest.approx(10.0)
    assert (metrics.completed_before, metrics.completed_during, metrics.completed_after) == (1, 1, 1)


def test_windows_are_clipped_to_the_run():
    metrics = collect_resilience_metrics(
        completed=[],
        duration_s=40.0,
        outage_windows=[(35.0, 120.0), (-3.0, 2.0), (50.0, 60.0)],
        num_fault_events=3,
        failover_count=0,
    )
    # (50, 60) lies wholly past the run and vanishes; the rest clip.
    assert metrics.outage_windows == [(0.0, 2.0), (35.0, 40.0)]


def test_no_windows_means_no_outage_phases():
    request = finished_request(5.0, 6.0, 7.0)
    metrics = collect_resilience_metrics(
        completed=[request],
        duration_s=40.0,
        outage_windows=[],
        num_fault_events=1,  # e.g. a latency spike that never "opened" an outage
        failover_count=0,
    )
    assert metrics.completed_before == 1
    assert metrics.completed_during == 0
    assert metrics.goodput_during_outage_tokens_per_s is None
    assert metrics.mean_time_to_recovery_s is None
    assert metrics.ttft_p90_during_s is None


def test_rejects_non_positive_duration():
    with pytest.raises(ValueError, match="duration_s"):
        collect_resilience_metrics(
            completed=[], duration_s=0.0, outage_windows=[], num_fault_events=0, failover_count=0
        )


def test_to_dict_round_trips_through_json():
    metrics = collect_resilience_metrics(
        completed=[finished_request(12.0, 13.0, 14.0)],
        duration_s=40.0,
        outage_windows=[(10.0, 20.0)],
        num_fault_events=1,
        failover_count=1,
    )
    payload = json.loads(json.dumps(metrics.to_dict()))
    assert payload["failover_count"] == 1
    assert payload["outage_windows"] == [[10.0, 20.0]]
    assert payload["completed_during"] == 1
    assert isinstance(metrics.format_row(), str)
    # ResilienceMetrics is a plain dataclass: equal payloads compare equal,
    # which is what the serial-vs-parallel identity checks rely on.
    assert isinstance(metrics, ResilienceMetrics)

# ----------------------------------------------------------------------
# gray (degraded) windows
# ----------------------------------------------------------------------
def test_degraded_windows_hand_computed():
    # One gray window [10, 30] in a 40 s run, no hard outage.
    #   r1: sent 5,  ft 6,  finish 7   -> nominal
    #   r2: sent 12, ft 16, finish 25  -> degraded, ttft 4.0, finishes in-window
    #   r3: sent 28, ft 29, finish 35  -> degraded (sent in-window), ttft 1.0,
    #                                     but finishes after: no goodput tokens
    r1 = finished_request(5.0, 6.0, 7.0)
    r2 = finished_request(12.0, 16.0, 25.0, prompt_len=30, generated=10)
    r3 = finished_request(28.0, 29.0, 35.0)
    metrics = collect_resilience_metrics(
        completed=[r1, r2, r3],
        duration_s=40.0,
        outage_windows=[],
        degraded_windows=[(10.0, 30.0)],
        num_fault_events=1,
        failover_count=0,
    )
    # No hard outage: the legacy phases degenerate to "everything before"...
    assert metrics.outage_windows == []
    assert metrics.completed_before == 3
    assert metrics.goodput_during_outage_tokens_per_s is None
    # ...while the gray channel reports the degraded experience.
    assert metrics.degraded_windows == [(10.0, 30.0)]
    assert metrics.completed_degraded == 2
    # Only r2 finishes inside the window: (30 + 10) tokens / 20 s.
    assert metrics.goodput_while_degraded_tokens_per_s == pytest.approx(2.0)
    assert metrics.ttft_p90_degraded_s == pytest.approx(percentile([4.0, 1.0], 90.0))
    # Degrade windows count toward TTR (time until full service returns).
    assert metrics.mean_time_to_recovery_s == pytest.approx(20.0)
    assert "degraded:" in metrics.format_row()


def test_outage_and_degraded_windows_are_independent_channels():
    # Outage [5, 10], gray [15, 25]: one request in each.
    r_outage = finished_request(7.0, 8.0, 9.0)
    r_gray = finished_request(18.0, 19.0, 20.0)
    metrics = collect_resilience_metrics(
        completed=[r_outage, r_gray],
        duration_s=40.0,
        outage_windows=[(5.0, 10.0)],
        degraded_windows=[(15.0, 25.0)],
        num_fault_events=2,
        failover_count=0,
    )
    assert metrics.completed_during == 1   # send-time inside the outage span
    assert metrics.completed_degraded == 1
    # TTR averages the outage (5 s) and the gray repair (10 s).
    assert metrics.mean_time_to_recovery_s == pytest.approx(7.5)
    assert metrics.max_time_to_recovery_s == pytest.approx(10.0)


def test_degraded_windows_clip_and_empty_payload_is_stable():
    metrics = collect_resilience_metrics(
        completed=[],
        duration_s=40.0,
        outage_windows=[],
        degraded_windows=[(35.0, 90.0), (50.0, 60.0)],
        num_fault_events=1,
        failover_count=0,
    )
    assert metrics.degraded_windows == [(35.0, 40.0)]
    # A window with zero completions really did serve nothing: 0.0, not
    # None ("not applicable") -- the distinction the CI columns rely on.
    assert metrics.goodput_while_degraded_tokens_per_s == 0.0
    assert metrics.ttft_p90_degraded_s is None
    # The gray keys are always present in the payload (serial/parallel
    # comparisons hash the full dict), defaulting to empty/None/zero.
    payload = metrics.to_dict()
    assert payload["degraded_windows"] == [[35.0, 40.0]]
    assert payload["completed_degraded"] == 0
