"""End-to-end fault injection through ``run_experiment(..., faults=...)``."""

import pytest

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    build_arena_workload,
    build_skewed_workload,
    run_experiment,
)
from repro.faults import (
    BalancerFailure,
    BalancerRecovery,
    FaultSchedule,
    LinkLatencySpike,
    RegionPartition,
    ReplicaCrash,
)
from repro.replica import TINY_TEST_PROFILE


def tiny_cluster(profile=TINY_TEST_PROFILE):
    replicas = {"us": 1, "eu": 1, "asia": 1}
    if profile is None:  # the default (paper) profile: a roomy KV pool
        return ClusterConfig(replicas_per_region=replicas)
    return ClusterConfig(replicas_per_region=replicas, profile=profile)


def run_faulted(kind, schedule, *, duration=40.0, scale=0.03, seed=1,
                workload_builder=build_arena_workload, cluster=None):
    workload = workload_builder(scale=scale)
    config = ExperimentConfig(
        system=REGISTRY.spec(kind, hash_key=workload.hash_key),
        cluster=cluster or tiny_cluster(),
        duration_s=duration,
        seed=seed,
        faults=schedule,
    )
    return run_experiment(config, workload)


# ----------------------------------------------------------------------
# replica faults
# ----------------------------------------------------------------------
def test_replica_crash_aborts_and_recovers():
    schedule = FaultSchedule.single(5.0, ReplicaCrash(region="us", index=0, duration_s=5.0))
    result = run_faulted("skywalker", schedule)
    resilience = result.metrics.resilience
    assert resilience is not None
    assert resilience.num_fault_events == 1
    # The crash aborted in-flight work; clients were unblocked via the
    # tracker instead of hanging forever.
    assert resilience.failed_requests == len(result.tracker.failed)
    assert resilience.failed_requests > 0
    # The replica is back and the run still completed traffic afterwards.
    us_replica = result.deployment.replicas_in("us")[0]
    assert us_replica.healthy
    assert result.metrics.num_completed > 0
    assert resilience.outage_windows == [pytest.approx((5.0, 10.0))]


def test_explicit_replica_recover_closes_the_window():
    from repro.faults import ReplicaRecover

    schedule = (
        FaultSchedule()
        .add(5.0, ReplicaCrash(region="eu", index=0))
        .add(9.0, ReplicaCrash(region="eu", index=0))  # no-op on a dead replica
        .add(10.0, ReplicaRecover(region="eu", index=0))
        .add(12.0, ReplicaCrash(region="us", index=0, duration_s=4.0))
    )
    result = run_faulted("skywalker", schedule)
    windows = result.metrics.resilience.outage_windows
    # The eu window closes at the explicit recover; crashing an
    # already-dead replica opened no second window.
    assert windows == [pytest.approx((5.0, 10.0)), pytest.approx((12.0, 16.0))]
    assert all(replica.healthy for replica in result.deployment.replicas)


def test_replica_fault_validates_target():
    schedule = FaultSchedule.single(1.0, ReplicaCrash(region="us", index=7))
    with pytest.raises(ValueError, match="out of range"):
        run_faulted("skywalker", schedule, duration=5.0)


# ----------------------------------------------------------------------
# balancer faults without a controller (centralized / gateway)
# ----------------------------------------------------------------------
def test_total_outage_queues_on_stale_dns_and_drains_after_recovery():
    # round-robin has exactly one balancer (us): killing it is a total
    # outage.  Clients keep sending via the stale DNS record; the backlog
    # drains after recovery instead of erroring out.  (Default profile: the
    # tiny KV pool cannot admit the arena workload's largest prompts, and a
    # blindly-pushed oversized prompt would head-of-line block its replica
    # and stall the clients this test needs active during the outage.)
    schedule = FaultSchedule.single(8.0, BalancerFailure(region="us", duration_s=8.0))
    result = run_faulted("round-robin", schedule, cluster=tiny_cluster(profile=None))
    resilience = result.metrics.resilience
    assert result.frontend.stale_dispatches > 0
    assert resilience.failover_count == 1
    assert resilience.mean_time_to_recovery_s == pytest.approx(8.0)
    balancer = result.balancers[0]
    assert balancer.healthy
    assert result.metrics.num_completed > 0
    # Requests sent during the outage waited for recovery: their tail TTFT
    # clearly exceeds the healthy phase's (requests sent near the end of
    # the window wait only briefly, so the ratio is bounded but real).
    assert resilience.ttft_p90_during_s > 1.5 * resilience.ttft_p90_before_s


def test_gateway_outage_reroutes_to_surviving_regions():
    schedule = FaultSchedule.single(8.0, BalancerFailure(region="us", duration_s=8.0))
    result = run_faulted("gke-gateway", schedule)
    resilience = result.metrics.resilience
    # Other regions' gateways were healthy, so DNS re-routed instead of
    # queueing on the stale record.
    assert result.frontend.stale_dispatches == 0
    assert resilience.completed_during > 0
    assert all(balancer.healthy for balancer in result.balancers)


def test_explicit_balancer_recovery_without_controller():
    schedule = FaultSchedule(
        events=(
            FaultSchedule.single(6.0, BalancerFailure(region="us")).events
            + FaultSchedule.single(12.0, BalancerRecovery(region="us")).events
        ),
        use_controller=False,
    )
    result = run_faulted("round-robin", schedule)
    assert result.metrics.resilience.outage_windows == [pytest.approx((6.0, 12.0))]
    assert result.balancers[0].healthy


def test_balancer_fault_in_absent_region_is_a_noop():
    # A cross-system sweep runs one schedule against every variant; the
    # centralized baseline has no eu balancer, so the fault records a no-op.
    schedule = FaultSchedule.single(5.0, BalancerFailure(region="eu", duration_s=5.0))
    result = run_faulted("round-robin", schedule, duration=20.0)
    resilience = result.metrics.resilience
    assert resilience.num_fault_events == 1
    assert resilience.outage_windows == []
    assert result.injector.records[0].target == "(no balancer in eu)"


# ----------------------------------------------------------------------
# controller-driven balancer failover (SkyWalker)
# ----------------------------------------------------------------------
def test_controller_driven_failover_end_to_end():
    schedule = FaultSchedule.single(
        8.0,
        BalancerFailure(region="eu"),
        controller_probe_interval_s=0.25,
        recovery_time_s=4.0,
    )
    result = run_faulted("skywalker", schedule)
    controller = result.controller
    assert controller is not None
    assert len(controller.failovers) == 1
    record = controller.failovers[0]
    assert record.failed_balancer == "skywalker@eu"
    assert record.recovered_at is not None
    resilience = result.metrics.resilience
    assert resilience.failover_count == 1
    # Window: injection at 8.0 until the controller-driven recovery
    # (detection <= probe interval, then recovery_time_s).
    (start, end) = resilience.outage_windows[0]
    assert start == pytest.approx(8.0)
    assert end == pytest.approx(record.recovered_at)
    assert end - start >= 4.0
    assert end - start < 4.0 + 0.5  # detection adds at most one probe cycle
    # Replicas went home and the balancer serves again.
    eu = next(b for b in result.balancers if b.region == "eu")
    assert eu.healthy
    assert any(r.name == "eu/replica-0" for r in eu.local_replicas())


def test_use_controller_false_downgrades_to_injector_ops():
    schedule = FaultSchedule.single(
        8.0, BalancerFailure(region="eu", duration_s=5.0), use_controller=False
    )
    result = run_faulted("skywalker", schedule)
    assert result.controller is None
    assert result.metrics.resilience.outage_windows == [pytest.approx((8.0, 13.0))]
    eu = next(b for b in result.balancers if b.region == "eu")
    assert eu.healthy


# ----------------------------------------------------------------------
# network faults
# ----------------------------------------------------------------------
def test_region_partition_blocks_and_heals():
    # The skewed workload overloads the us region so cross-region
    # offloading is active, then the partition cuts us off entirely.
    schedule = FaultSchedule.single(5.0, RegionPartition(a="us", duration_s=10.0))
    result = run_faulted(
        "skywalker", schedule, scale=0.08, duration=60.0, workload_builder=build_skewed_workload
    )
    resilience = result.metrics.resilience
    assert resilience.outage_windows == [pytest.approx((5.0, 15.0))]
    network = result.balancers[0].network
    assert not network.link_blocked("us", "eu")  # healed
    assert result.metrics.num_completed > 0


def test_latency_spike_inflates_and_settles():
    schedule = FaultSchedule.single(
        5.0, LinkLatencySpike(a="us", b="eu", extra_s=0.5, duration_s=10.0)
    )
    result = run_faulted("skywalker", schedule)
    network = result.balancers[0].network
    assert network.link_extra_latency("us", "eu") == 0.0  # settled
    assert result.metrics.resilience.outage_windows == [pytest.approx((5.0, 15.0))]


# ----------------------------------------------------------------------
# schedule resolution and validation at the config boundary
# ----------------------------------------------------------------------
def test_named_schedule_resolves_through_experiment_config():
    result = run_faulted("skywalker", "eu-balancer-outage")
    resilience = result.metrics.resilience
    assert resilience is not None
    assert resilience.failover_count == 1


def test_unknown_fault_kind_fails_fast_at_setup():
    from repro.faults import FaultEvent, FaultSpec

    schedule = FaultSchedule(events=(FaultEvent(1.0, FaultSpec(kind="quantum-flip")),))
    with pytest.raises(ValueError, match="unknown fault"):
        run_faulted("skywalker", schedule, duration=5.0)
