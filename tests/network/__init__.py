"""Test package."""
