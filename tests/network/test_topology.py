"""Unit tests for the region/latency topology."""

import pytest

from repro.network import NetworkTopology, RegionInfo, default_topology, wide_topology


def test_default_topology_has_three_regions():
    topology = default_topology()
    assert set(topology.region_names()) == {"us", "eu", "asia"}


def test_intra_region_latency_is_small():
    topology = default_topology()
    assert topology.one_way("us", "us") < 0.01


def test_cross_region_latency_is_symmetric_by_default():
    topology = default_topology()
    assert topology.one_way("us", "eu") == topology.one_way("eu", "us")
    assert topology.rtt("us", "asia") == pytest.approx(2 * topology.one_way("us", "asia"))


def test_cross_region_latencies_are_in_realistic_wan_range():
    topology = default_topology()
    for src in topology.region_names():
        for dst in topology.region_names():
            if src == dst:
                continue
            assert 0.02 < topology.one_way(src, dst) < 0.25


def test_unknown_region_raises():
    topology = default_topology()
    with pytest.raises(KeyError):
        topology.one_way("us", "mars")
    with pytest.raises(KeyError):
        topology.info("mars")


def test_missing_link_raises():
    topology = NetworkTopology(
        [RegionInfo("a", 0), RegionInfo("b", 0), RegionInfo("c", 0)],
        {("a", "b"): 0.05},
    )
    with pytest.raises(KeyError):
        topology.one_way("a", "c")


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        NetworkTopology([RegionInfo("a", 0), RegionInfo("b", 0)], {("a", "b"): -1.0})


def test_nearest_picks_lowest_latency_candidate():
    topology = default_topology()
    assert topology.nearest("us", ["eu", "asia"]) == "eu"
    assert topology.nearest("us", ["us", "eu", "asia"]) == "us"
    assert topology.nearest("us", []) is None


def test_gdpr_compatibility_rules():
    topology = default_topology()
    # Non-GDPR traffic may go anywhere, including into the EU.
    assert topology.gdpr_compatible("us", "eu")
    assert topology.gdpr_compatible("us", "asia")
    # GDPR traffic must stay within GDPR scope.
    assert topology.gdpr_compatible("eu", "eu")
    assert not topology.gdpr_compatible("eu", "us")
    assert not topology.gdpr_compatible("eu", "asia")


def test_same_continent_checks_continent_labels():
    topology = wide_topology()
    assert topology.same_continent("us-east-1", "us-west")
    assert not topology.same_continent("us-east-1", "eu-west")


def test_wide_topology_is_fully_connected():
    topology = wide_topology()
    names = topology.region_names()
    assert len(names) == 7
    for src in names:
        for dst in names:
            assert topology.one_way(src, dst) >= 0.0


def test_add_region_and_link_extend_topology():
    topology = default_topology()
    topology.add_region(RegionInfo("sa", utc_offset_hours=-3, continent="south-america"))
    topology.add_link("sa", "us", 0.12)
    assert topology.one_way("sa", "us") == 0.12
    assert topology.one_way("us", "sa") == 0.12


# ----------------------------------------------------------------------
# input validation: errors name the offending region/edge
# ----------------------------------------------------------------------
def test_negative_intra_region_latency_rejected():
    with pytest.raises(ValueError, match="intra_region_latency_s"):
        NetworkTopology([RegionInfo("a", 0)], {}, intra_region_latency_s=-0.001)


def test_duplicate_region_registration_rejected_and_names_region():
    topology = default_topology()
    with pytest.raises(ValueError, match="'us'"):
        topology.add_region(RegionInfo("us", utc_offset_hours=0))


def test_duplicate_region_in_constructor_rejected():
    with pytest.raises(ValueError, match="'a'"):
        NetworkTopology([RegionInfo("a", 0), RegionInfo("a", 0)], {})


def test_self_loop_link_rejected_and_names_edge():
    topology = default_topology()
    with pytest.raises(ValueError, match="'us' -> 'us'"):
        topology.add_link("us", "us", 0.001)


def test_negative_link_latency_error_names_edge():
    topology = default_topology()
    with pytest.raises(ValueError, match="'us' -> 'eu'"):
        topology.add_link("us", "eu", -0.5)


def test_links_returns_directed_matrix_copy():
    topology = default_topology()
    links = topology.links()
    assert links[("us", "eu")] == topology.one_way("us", "eu")
    assert links[("eu", "us")] == topology.one_way("eu", "us")
    # It is a copy: mutating it does not affect the topology.
    links[("us", "eu")] = 99.0
    assert topology.one_way("us", "eu") != 99.0
