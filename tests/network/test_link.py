"""Unit tests for the latency-faithful message transport."""

import pytest

from repro.network import Network, default_topology
from repro.sim import Environment, Store


@pytest.fixture
def net(env):
    return Network(env, default_topology(), jitter_fraction=0.0, seed=1)


def test_deliver_applies_one_way_latency(env, net):
    inbox = Store(env)
    arrivals = []

    def consumer(env):
        item = yield inbox.get()
        arrivals.append((item, env.now))

    env.process(consumer(env))
    net.deliver("payload", "us", "eu", inbox)
    env.run()
    assert arrivals == [("payload", pytest.approx(net.topology.one_way("us", "eu")))]


def test_deliver_intra_region_is_fast(env, net):
    inbox = Store(env)
    net.deliver("x", "us", "us", inbox)
    env.run()
    assert env.now <= 0.01


def test_jitter_stays_within_bounds(env):
    net = Network(env, default_topology(), jitter_fraction=0.2, seed=3)
    base = net.topology.one_way("us", "asia")
    samples = [net.sample_one_way("us", "asia") for _ in range(200)]
    assert all(base * 0.8 <= s <= base * 1.2 for s in samples)
    assert len(set(samples)) > 1  # actually random


def test_zero_jitter_is_deterministic(env, net):
    samples = {net.sample_one_way("us", "eu") for _ in range(10)}
    assert len(samples) == 1


def test_message_accounting_distinguishes_cross_region(env, net):
    inbox = Store(env)
    net.deliver("a", "us", "us", inbox)
    net.deliver("b", "us", "eu", inbox)
    net.deliver("c", "eu", "asia", inbox)
    assert net.messages_sent == 3
    assert net.cross_region_messages == 2


def test_call_after_delay_runs_callback_later(env, net):
    fired = []
    net.call_after_delay("us", "asia", lambda: fired.append(env.now))
    assert fired == []
    env.run()
    assert fired == [pytest.approx(net.topology.one_way("us", "asia"))]


def test_probe_generator_returns_value_after_rtt(env, net):
    state = {"value": 7}
    results = []

    def prober(env):
        value = yield from net.probe("us", "eu", lambda: state["value"])
        results.append((value, env.now))

    env.process(prober(env))
    # Mutate the state before the probe completes: the probe reads at the end
    # of the round trip, so it must observe the new value.
    state["value"] = 42
    env.run()
    assert results[0][0] == 42
    assert results[0][1] == pytest.approx(net.topology.rtt("us", "eu"))
    assert net.probe_count == 1


def test_probe_delay_counts_probes(env, net):
    def prober(env):
        yield net.probe_delay("us", "us")

    env.process(prober(env))
    env.run()
    assert net.probe_count == 1


# ----------------------------------------------------------------------
# link faults (partitions and latency spikes)
# ----------------------------------------------------------------------
def test_blocked_link_drops_messages_both_ways(env, net):
    inbox = Store(env)
    net.set_link_blocked("us", "eu")
    net.deliver("lost-there", "us", "eu", inbox)
    net.deliver("lost-back", "eu", "us", inbox)
    net.deliver("arrives", "us", "asia", inbox)
    env.run()
    assert list(inbox.items) == ["arrives"]
    assert net.dropped_messages == 2
    # Healing restores delivery (new messages only; dropped ones are gone).
    net.set_link_blocked("us", "eu", False)
    net.deliver("post-heal", "us", "eu", inbox)
    env.run()
    assert list(inbox.items) == ["arrives", "post-heal"]
    assert not net.link_blocked("us", "eu") and not net.link_blocked("eu", "us")


def test_blocked_link_drops_callbacks_too(env, net):
    fired = []
    net.set_link_blocked("us", "eu")
    net.call_after_delay("us", "eu", lambda: fired.append("nope"))
    env.run()
    assert fired == []
    assert net.dropped_messages == 1


def test_asymmetric_block(env, net):
    inbox = Store(env)
    net.set_link_blocked("us", "eu", symmetric=False)
    net.deliver("dropped", "us", "eu", inbox)
    net.deliver("arrives", "eu", "us", inbox)
    env.run()
    assert list(inbox.items) == ["arrives"]


def test_latency_spike_inflates_one_way_samples(env, net):
    base = net.topology.one_way("us", "eu")
    net.set_link_extra_latency("us", "eu", 0.25)
    assert net.sample_one_way("us", "eu") == pytest.approx(base + 0.25)
    assert net.sample_one_way("eu", "us") == pytest.approx(base + 0.25)
    assert net.link_extra_latency("us", "eu") == pytest.approx(0.25)
    # Other links are untouched, and clearing restores the baseline.
    assert net.sample_one_way("us", "asia") == pytest.approx(net.topology.one_way("us", "asia"))
    net.set_link_extra_latency("us", "eu", 0.0)
    assert net.sample_one_way("us", "eu") == pytest.approx(base)


def test_latency_spike_rejects_negative(env, net):
    with pytest.raises(ValueError, match="non-negative"):
        net.set_link_extra_latency("us", "eu", -0.1)


def test_overlapping_blocks_are_reference_counted(env, net):
    # Two overlapping faults block the same link; it must stay down until
    # BOTH have healed (the shorter fault's heal must not punch a hole in
    # the longer isolation).
    inbox = Store(env)
    net.set_link_blocked("us", "eu")   # long-lived isolation
    net.set_link_blocked("us", "eu")   # shorter overlapping partition
    net.set_link_blocked("us", "eu", False)  # shorter fault heals first
    net.deliver("still-dropped", "us", "eu", inbox)
    env.run()
    assert list(inbox.items) == []
    assert net.link_blocked("us", "eu")
    net.set_link_blocked("us", "eu", False)  # isolation heals
    assert not net.link_blocked("us", "eu")
    # Unbalanced unblocks are a no-op, not an error (and do not go negative).
    net.set_link_blocked("us", "eu", False)
    net.set_link_blocked("us", "eu")
    assert net.link_blocked("us", "eu")
