"""Unit tests for the latency-faithful message transport."""

import pytest

from repro.network import Network, default_topology
from repro.sim import Environment, Store


@pytest.fixture
def net(env):
    return Network(env, default_topology(), jitter_fraction=0.0, seed=1)


def test_deliver_applies_one_way_latency(env, net):
    inbox = Store(env)
    arrivals = []

    def consumer(env):
        item = yield inbox.get()
        arrivals.append((item, env.now))

    env.process(consumer(env))
    net.deliver("payload", "us", "eu", inbox)
    env.run()
    assert arrivals == [("payload", pytest.approx(net.topology.one_way("us", "eu")))]


def test_deliver_intra_region_is_fast(env, net):
    inbox = Store(env)
    net.deliver("x", "us", "us", inbox)
    env.run()
    assert env.now <= 0.01


def test_jitter_stays_within_bounds(env):
    net = Network(env, default_topology(), jitter_fraction=0.2, seed=3)
    base = net.topology.one_way("us", "asia")
    samples = [net.sample_one_way("us", "asia") for _ in range(200)]
    assert all(base * 0.8 <= s <= base * 1.2 for s in samples)
    assert len(set(samples)) > 1  # actually random


def test_zero_jitter_is_deterministic(env, net):
    samples = {net.sample_one_way("us", "eu") for _ in range(10)}
    assert len(samples) == 1


def test_message_accounting_distinguishes_cross_region(env, net):
    inbox = Store(env)
    net.deliver("a", "us", "us", inbox)
    net.deliver("b", "us", "eu", inbox)
    net.deliver("c", "eu", "asia", inbox)
    assert net.messages_sent == 3
    assert net.cross_region_messages == 2


def test_call_after_delay_runs_callback_later(env, net):
    fired = []
    net.call_after_delay("us", "asia", lambda: fired.append(env.now))
    assert fired == []
    env.run()
    assert fired == [pytest.approx(net.topology.one_way("us", "asia"))]


def test_probe_generator_returns_value_after_rtt(env, net):
    state = {"value": 7}
    results = []

    def prober(env):
        value = yield from net.probe("us", "eu", lambda: state["value"])
        results.append((value, env.now))

    env.process(prober(env))
    # Mutate the state before the probe completes: the probe reads at the end
    # of the round trip, so it must observe the new value.
    state["value"] = 42
    env.run()
    assert results[0][0] == 42
    assert results[0][1] == pytest.approx(net.topology.rtt("us", "eu"))
    assert net.probe_count == 1


def test_probe_delay_counts_probes(env, net):
    def prober(env):
        yield net.probe_delay("us", "us")

    env.process(prober(env))
    env.run()
    assert net.probe_count == 1
