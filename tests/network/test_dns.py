"""Unit tests for latency-based DNS resolution."""

import pytest

from repro.network import GeoDNS, default_topology


@pytest.fixture
def dns():
    dns = GeoDNS(default_topology())
    dns.register("lb-us", "us")
    dns.register("lb-eu", "eu")
    dns.register("lb-asia", "asia")
    return dns


def test_resolve_returns_same_region_endpoint(dns):
    assert dns.resolve("us") == "lb-us"
    assert dns.resolve("eu") == "lb-eu"
    assert dns.resolve("asia") == "lb-asia"


def test_resolve_skips_unhealthy_endpoints(dns):
    dns.set_health("lb-us", False)
    resolved = dns.resolve("us")
    assert resolved in ("lb-eu", "lb-asia")
    # The next-nearest region to the US in the default topology is Europe.
    assert resolved == "lb-eu"


def test_resolve_returns_none_when_everything_is_down(dns):
    for endpoint in dns.endpoints():
        dns.set_health(endpoint, False)
    assert dns.resolve("us") is None


def test_health_restoration_reverts_resolution(dns):
    dns.set_health("lb-us", False)
    dns.set_health("lb-us", True)
    assert dns.resolve("us") == "lb-us"


def test_register_validates_region(dns):
    with pytest.raises(KeyError):
        dns.register("lb-mars", "mars")


def test_set_health_of_unknown_endpoint_raises(dns):
    with pytest.raises(KeyError):
        dns.set_health("nope", True)


def test_deregister_removes_endpoint(dns):
    dns.deregister("lb-us")
    assert "lb-us" not in dns.endpoints()
    assert dns.resolve("us") != "lb-us"


def test_resolution_counter_increments(dns):
    before = dns.resolutions
    dns.resolve("us")
    dns.resolve("eu")
    assert dns.resolutions == before + 2


def test_endpoint_region_lookup(dns):
    assert dns.endpoint_region("lb-eu") == "eu"
    assert set(dns.healthy_endpoints()) == {"lb-us", "lb-eu", "lb-asia"}
