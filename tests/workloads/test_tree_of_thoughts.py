"""Unit tests for the Tree-of-Thoughts workload generator."""

import pytest

from repro.workloads import TreeOfThoughtsConfig, TreeOfThoughtsWorkload


def test_two_branch_tree_has_fifteen_requests():
    config = TreeOfThoughtsConfig(branching_factor=2, depth=4)
    assert config.requests_per_tree == 15
    workload = TreeOfThoughtsWorkload(config)
    program = workload.generate_tree("q0", "user-0", "us")
    assert program.num_requests == 15
    assert [len(stage) for stage in program.stages] == [1, 2, 4, 8]


def test_four_branch_tree_has_eighty_five_requests():
    config = TreeOfThoughtsConfig(branching_factor=4, depth=4)
    assert config.requests_per_tree == 85
    program = TreeOfThoughtsWorkload(config).generate_tree("q0", "user-0", "us")
    assert program.num_requests == 85
    assert [len(stage) for stage in program.stages] == [1, 4, 16, 64]


def test_children_extend_some_parent_prompt():
    workload = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=3, seed=1))
    program = workload.generate_tree("q1", "user-1", "eu")
    for parent_stage, child_stage in zip(program.stages, program.stages[1:]):
        parent_prompts = [r.prompt_tokens for r in parent_stage]
        for child in child_stage:
            assert any(
                child.prompt_tokens[: len(parent)] == parent for parent in parent_prompts
            ), "every child prompt must extend one of the parent prompts"


def test_all_nodes_share_the_root_context():
    workload = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=2))
    program = workload.generate_tree("q2", "user-2", "asia")
    root_prompt = program.stages[0][0].prompt_tokens
    for request in program.all_requests():
        assert request.prompt_tokens[: len(root_prompt)] == root_prompt


def test_trees_share_the_system_prompt_but_not_the_question():
    workload = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=3, seed=3))
    first = workload.generate_tree("qa", "user-a", "us")
    second = workload.generate_tree("qb", "user-b", "us")
    prompt_a = first.stages[0][0].prompt_tokens
    prompt_b = second.stages[0][0].prompt_tokens
    # Shared solver instructions produce a common prefix, but the questions
    # themselves (and thus the full prompts) differ.
    common = 0
    for a, b in zip(prompt_a, prompt_b):
        if a != b:
            break
        common += 1
    assert common > 0
    assert prompt_a != prompt_b


def test_session_id_is_the_question_id():
    workload = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=3))
    program = workload.generate_tree("question-7", "user-7", "us")
    assert all(r.session_id == "question-7" for r in program.all_requests())


def test_generate_programs_counts_and_regions():
    workload = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=3))
    programs = workload.generate_programs(5, "eu")
    assert len(programs) == 5
    assert all(p.region == "eu" for p in programs)
    assert len({p.program_id for p in programs}) == 5
    assert all(p.kind == "tot-2" for p in programs)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=0))
    with pytest.raises(ValueError):
        TreeOfThoughtsWorkload(TreeOfThoughtsConfig(depth=0))
