"""Unit tests for the multi-turn conversation workload generator."""

import pytest

from repro.analysis import analyze_similarity
from repro.workloads import ConversationConfig, ConversationWorkload


@pytest.fixture(scope="module")
def workload():
    config = ConversationConfig(
        regions=("us", "eu", "asia"),
        users_per_region=6,
        conversations_per_user=2,
        turns_range=(2, 4),
        seed=42,
    )
    return ConversationWorkload(config)


def test_user_population_per_region(workload):
    assert len(workload.users) == 18
    assert len(workload.users_in("us")) == 6
    assert {user.region for user in workload.users} == {"us", "eu", "asia"}


def test_each_turn_extends_the_previous_prompt(workload):
    user = workload.users[0]
    program = workload.generate_conversation(user, 0)
    prompts = [stage[0].prompt_tokens for stage in program.stages]
    for earlier, later in zip(prompts, prompts[1:]):
        assert later[: len(earlier)] == earlier
        assert len(later) > len(earlier)


def test_turns_share_the_user_system_prompt(workload):
    user = workload.users[3]
    first = workload.generate_conversation(user, 0)
    second = workload.generate_conversation(user, 1)
    system = user.system_tokens
    for program in (first, second):
        for stage in program.stages:
            assert stage[0].prompt_tokens[: len(system)] == system


def test_programs_carry_identity_and_region(workload):
    programs = workload.generate_programs()
    assert len(programs) == 18 * 2
    for program in programs:
        assert program.kind == "conversation"
        for request in program.all_requests():
            assert request.user_id == program.user_id
            assert request.region == program.region
            assert request.session_id == program.program_id
            assert request.output_len >= 1


def test_programs_by_region_grouping(workload):
    grouped = workload.programs_by_region()
    assert set(grouped) == {"us", "eu", "asia"}
    for region, programs in grouped.items():
        assert all(p.region == region for p in programs)
        assert len(programs) == 12


def test_turn_count_respects_configuration(workload):
    for program in workload.generate_programs():
        assert 2 <= program.num_stages <= 4


def test_generation_is_deterministic_per_seed():
    config = ConversationConfig(users_per_region=3, conversations_per_user=1, seed=7)
    a = ConversationWorkload(config).generate_programs()
    b = ConversationWorkload(config).generate_programs()
    assert [p.program_id for p in a] == [p.program_id for p in b]
    assert [r.prompt_tokens for p in a for r in p.all_requests()] == [
        r.prompt_tokens for p in b for r in p.all_requests()
    ]


def test_similarity_structure_matches_paper_ordering():
    """Fig. 5a: within-user similarity far exceeds cross-user, which exceeds
    cross-region similarity."""
    config = ConversationConfig(
        regions=("us", "eu", "asia"),
        users_per_region=8,
        conversations_per_user=2,
        turns_range=(2, 4),
        shared_templates=4,
        template_adoption=0.4,
        seed=11,
    )
    requests = [
        request
        for program in ConversationWorkload(config).generate_programs()
        for request in program.all_requests()
    ]
    report = analyze_similarity(requests, seed=1)
    assert report.within_user > report.across_user
    assert report.within_user > 2 * report.across_region
    assert report.within_user > 0.05


def test_zero_shared_templates_disables_cross_user_sharing():
    config = ConversationConfig(
        regions=("us",),
        users_per_region=6,
        conversations_per_user=1,
        shared_templates=0,
        seed=3,
    )
    workload = ConversationWorkload(config)
    assert all(not user.uses_shared_template for user in workload.users)
