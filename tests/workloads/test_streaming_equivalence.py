"""Streaming ≡ materialized: every workload builder, multiple seeds.

``stream=True`` swaps a builder's materialized program lists for lazy
:class:`~repro.workloads.streams.ProgramStream` specs.  The contract is that
the streamed programs carry a *byte-identical semantic payload* — prompt
tokens, output lengths, user/session/program identities, region, stage
structure — for every builder and seed; only the global ``request_id``
counter values may differ (allocation order interleaves differently).

The golden-trace tests separately pin that whole experiments produce
bit-identical metrics through the streamed path; this file is the
per-program microscope that localizes any divergence to a builder.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.diurnal_sweep import build_skewed_workload
from repro.experiments.workloads import (
    build_arena_workload,
    build_mixed_tree_workload,
    build_tot_workload,
    build_wildchat_workload,
)
from repro.workloads import ProgramStream

SEEDS = [411, 412, 413]

BUILDERS = {
    "wildchat": build_wildchat_workload,
    "arena": build_arena_workload,
    "tot": build_tot_workload,
    "mixed-tree": build_mixed_tree_workload,
    "skewed": build_skewed_workload,
}


def _request_payload(request):
    """Everything semantically meaningful about a request; excludes the
    global ``request_id`` allocation counter by design."""
    return (
        tuple(request.prompt_tokens),
        request.output_len,
        request.user_id,
        request.session_id,
        request.region,
    )


def _program_payload(program):
    return (
        program.program_id,
        program.user_id,
        program.region,
        program.kind,
        tuple(tuple(_request_payload(r) for r in stage) for stage in program.stages),
    )


def _spec_payloads(spec):
    return {
        region: [_program_payload(p) for p in programs]
        for region, programs in spec.programs_by_region.items()
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(BUILDERS), ids=sorted(BUILDERS))
def test_streamed_payload_identical_to_materialized(name, seed):
    build = BUILDERS[name]
    materialized = build(scale=0.1, seed=seed, stream=False)
    streamed = build(scale=0.1, seed=seed, stream=True)
    # The streamed spec really is lazy, not a list in disguise.
    for programs in streamed.programs_by_region.values():
        assert isinstance(programs, ProgramStream)
    assert _spec_payloads(streamed) == _spec_payloads(materialized)
    assert streamed.clients_per_region == materialized.clients_per_region
    assert streamed.hash_key == materialized.hash_key


@pytest.mark.parametrize("name", sorted(BUILDERS), ids=sorted(BUILDERS))
def test_stream_replays_identically(name):
    """fresh_copy()/re-iteration regenerates the exact same programs — the
    property sweep workers rely on."""
    spec = BUILDERS[name](scale=0.1, seed=SEEDS[0], stream=True)
    for programs in spec.programs_by_region.values():
        first = [_program_payload(p) for p in programs]
        again = [_program_payload(p) for p in programs.fresh_copy()]
        assert again == first


@pytest.mark.parametrize("name", sorted(BUILDERS), ids=sorted(BUILDERS))
def test_stream_length_matches_materialized(name):
    materialized = BUILDERS[name](scale=0.1, seed=SEEDS[1], stream=False)
    streamed = BUILDERS[name](scale=0.1, seed=SEEDS[1], stream=True)
    for region, programs in streamed.programs_by_region.items():
        assert len(programs) == len(materialized.programs_by_region[region])
        assert len(programs.materialize()) == len(programs)


@pytest.mark.parametrize("name", sorted(BUILDERS), ids=sorted(BUILDERS))
def test_stream_split_matches_list_round_robin(name):
    """stream.split(n)[i] must equal programs[i::n] of the materialized
    list — the layout clients are assigned by."""
    streamed = BUILDERS[name](scale=0.1, seed=SEEDS[2], stream=True)
    for programs in streamed.programs_by_region.values():
        full = [_program_payload(p) for p in programs]
        for parts in (1, 2, 3):
            views = programs.split(parts)
            assert len(views) == parts
            for index, view in enumerate(views):
                assert [_program_payload(p) for p in view] == full[index::parts]


@pytest.mark.parametrize("name", sorted(BUILDERS), ids=sorted(BUILDERS))
def test_stream_specs_are_picklable(name):
    """Sweep workers receive specs over multiprocessing: the frozen spec
    must round-trip through pickle and still generate identical programs."""
    streamed = BUILDERS[name](scale=0.1, seed=SEEDS[0], stream=True)
    for programs in streamed.programs_by_region.values():
        clone = pickle.loads(pickle.dumps(programs))
        assert [_program_payload(p) for p in clone] == [
            _program_payload(p) for p in programs
        ]
