"""Unit tests for diurnal traffic patterns and trace statistics."""

import pytest

from repro.workloads import COUNTRY_PROFILES, DiurnalPattern, RegionalTrace, generate_daily_trace


# ----------------------------------------------------------------------
# DiurnalPattern
# ----------------------------------------------------------------------
def test_rate_peaks_at_local_peak_hour():
    pattern = DiurnalPattern(utc_offset_hours=0, base_rate=100, peak_rate=1000, peak_local_hour=15)
    rates = {hour: pattern.rate_at(hour) for hour in range(24)}
    assert max(rates, key=rates.get) == 15


def test_timezone_offset_shifts_the_peak():
    base = DiurnalPattern(utc_offset_hours=0, base_rate=100, peak_rate=1000, peak_local_hour=15)
    shifted = DiurnalPattern(utc_offset_hours=+8, base_rate=100, peak_rate=1000, peak_local_hour=15)
    base_peak_utc = max(range(24), key=lambda h: base.rate_at(h))
    shifted_peak_utc = max(range(24), key=lambda h: shifted.rate_at(h))
    assert (shifted_peak_utc + 8) % 24 == pytest.approx(base_peak_utc % 24)


def test_rate_is_bounded_by_base_and_peak():
    pattern = COUNTRY_PROFILES["united-states"]
    for hour in range(24):
        rate = pattern.rate_at(hour)
        assert pattern.base_rate <= rate <= pattern.peak_rate + 1e-9


def test_country_profiles_cover_the_figure_2_panels():
    assert set(COUNTRY_PROFILES) == {
        "united-states", "russia", "china", "united-kingdom", "germany", "france",
    }


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def test_generate_daily_trace_shape_and_determinism():
    trace_a = generate_daily_trace(COUNTRY_PROFILES, seed=5)
    trace_b = generate_daily_trace(COUNTRY_PROFILES, seed=5)
    assert trace_a.num_hours == 24
    assert set(trace_a.regions) == set(COUNTRY_PROFILES)
    assert trace_a.hourly_counts == trace_b.hourly_counts


def test_noise_free_trace_matches_pattern():
    trace = generate_daily_trace(COUNTRY_PROFILES, poisson_noise=False)
    pattern = COUNTRY_PROFILES["france"]
    assert trace.series("france") == [int(round(pattern.rate_at(h))) for h in range(24)]


def test_regional_variance_shrinks_after_aggregation():
    """Fig. 3a: aggregating regions flattens the demand curve."""
    trace = generate_daily_trace(COUNTRY_PROFILES, seed=0)
    regional = [trace.peak_to_trough_ratio(region) for region in trace.regions]
    assert max(regional) > 3.0
    assert trace.aggregated_peak_to_trough_ratio() < min(regional)


# ----------------------------------------------------------------------
# RegionalTrace statistics
# ----------------------------------------------------------------------
@pytest.fixture
def small_trace():
    return RegionalTrace(
        hourly_counts={
            "us": [10, 50, 100, 20],
            "eu": [100, 20, 10, 50],
            "asia": [20, 100, 50, 10],
        }
    )


def test_aggregate_sums_per_hour(small_trace):
    assert small_trace.aggregate() == [130, 170, 160, 80]
    assert small_trace.aggregated_peak() == 170
    assert small_trace.total_requests() == 540


def test_peaks_and_ratios(small_trace):
    assert small_trace.region_peak("us") == 100
    assert small_trace.region_trough("us") == 10
    assert small_trace.peak_to_trough_ratio("us") == 10.0
    assert small_trace.sum_of_region_peaks() == 300


def test_required_replicas_strategies(small_trace):
    counts = small_trace.required_replicas(requests_per_replica_hour=50)
    # Region-local: ceil(100/50) * 3 regions = 6.
    assert counts["region_local"] == 6
    # Aggregated: ceil(170/50) = 4.
    assert counts["aggregated"] == 4
    # Perfect autoscaling replica-hours: ceil(130/50)+ceil(170/50)+ceil(160/50)+ceil(80/50).
    assert counts["on_demand_hours"] == 3 + 4 + 4 + 2
    assert counts["aggregated"] <= counts["region_local"]


def test_required_replicas_rejects_nonpositive_capacity(small_trace):
    with pytest.raises(ValueError):
        small_trace.required_replicas(0)


def test_subset_keeps_selected_regions(small_trace):
    subset = small_trace.subset(["us", "eu"])
    assert set(subset.regions) == {"us", "eu"}
    assert subset.series("us") == [10, 50, 100, 20]


def test_mismatched_series_lengths_rejected():
    with pytest.raises(ValueError):
        RegionalTrace(hourly_counts={"a": [1, 2], "b": [1]})


def test_empty_trace_degenerate_statistics():
    trace = RegionalTrace()
    assert trace.num_hours == 0
    assert trace.aggregate() == []
    assert trace.aggregated_peak() == 0
    assert trace.aggregated_peak_to_trough_ratio() == 1.0
