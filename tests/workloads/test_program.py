"""Unit tests for the Program container."""

from repro.workloads import Program

from ..conftest import make_request


def test_program_counts_and_iteration():
    stages = [[make_request(), make_request()], [make_request()]]
    program = Program(program_id="p0", user_id="u0", region="us", stages=stages)
    assert program.num_stages == 2
    assert program.num_requests == 3
    assert list(program.all_requests()) == stages[0] + stages[1]


def test_program_id_is_propagated_to_requests():
    stages = [[make_request()], [make_request()]]
    program = Program(program_id="prog-7", user_id="u1", region="eu", stages=stages)
    assert all(r.program_id == "prog-7" for r in program.all_requests())


def test_token_totals():
    a = make_request(prompt_len=10, output_len=3)
    b = make_request(prompt_len=20, output_len=7)
    program = Program(program_id="p1", user_id="u2", region="asia", stages=[[a], [b]])
    assert program.total_prompt_tokens() == 30
    assert program.total_output_tokens() == 10


def test_empty_program():
    program = Program(program_id="empty", user_id="u3", region="us")
    assert program.num_requests == 0
    assert program.num_stages == 0
    assert list(program.all_requests()) == []
