"""Unit tests for the Request entity and its derived metrics."""

import pytest

from repro.workloads import Request, RequestStatus

from ..conftest import make_request


def test_request_ids_are_unique():
    ids = {Request(prompt_tokens=(1,), output_len=1).request_id for _ in range(100)}
    assert len(ids) == 100


def test_prompt_len_and_total_tokens():
    request = make_request(prompt_len=30, output_len=5)
    assert request.prompt_len == 30
    request.generated_tokens = 5
    assert request.total_tokens == 35


def test_ttft_includes_response_network_delay():
    request = make_request()
    request.sent_time = 10.0
    request.first_token_time = 10.5
    request.response_network_delay = 0.08
    assert request.ttft == pytest.approx(0.58)


def test_e2e_latency_includes_response_network_delay():
    request = make_request()
    request.sent_time = 1.0
    request.finish_time = 6.0
    request.response_network_delay = 0.1
    assert request.e2e_latency == 5.1


def test_latencies_are_none_until_timestamps_exist():
    request = Request(prompt_tokens=(1, 2), output_len=1)
    assert request.ttft is None
    assert request.e2e_latency is None
    assert request.queueing_delay is None


def test_queueing_delay_measured_from_lb_arrival_to_schedule():
    request = make_request()
    request.lb_arrival_time = 2.0
    request.schedule_time = 3.5
    assert request.queueing_delay == 1.5


def test_cache_hit_ratio():
    request = make_request(prompt_len=100)
    request.cached_prefix_tokens = 25
    assert request.cache_hit_ratio == 0.25
    empty = Request(prompt_tokens=(), output_len=1)
    assert empty.cache_hit_ratio == 0.0


def test_finished_flag_follows_status():
    request = make_request()
    assert not request.finished
    request.status = RequestStatus.FINISHED
    assert request.finished


def test_clone_for_retry_resets_execution_state():
    request = make_request(prompt_len=10, output_len=3, user_id="alice", region="eu")
    request.generated_tokens = 3
    request.replica_name = "eu/replica-0"
    clone = request.clone_for_retry()
    assert clone.request_id != request.request_id
    assert clone.prompt_tokens == request.prompt_tokens
    assert clone.user_id == "alice"
    assert clone.region == "eu"
    assert clone.generated_tokens == 0
    assert clone.replica_name is None
    assert clone.status == RequestStatus.CREATED


def test_requests_hash_by_identity():
    a = make_request()
    b = make_request()
    assert a != b
    assert len({a, b}) == 2
