"""Test package."""
