"""Unit tests for token-id generation and length distributions."""

import random

import pytest

from repro.workloads import (
    ARENA_LIKE,
    TOT_LIKE,
    WILDCHAT_LIKE,
    LengthDistribution,
    LengthSampler,
    TokenFactory,
)


# ----------------------------------------------------------------------
# TokenFactory
# ----------------------------------------------------------------------
def test_fresh_sequences_are_disjoint():
    factory = TokenFactory(seed=0)
    a = factory.fresh(100)
    b = factory.fresh(50)
    assert len(a) == 100 and len(b) == 50
    assert not (set(a) & set(b))


def test_fresh_is_deterministic_given_call_sequence():
    first = TokenFactory(seed=1)
    second = TokenFactory(seed=1)
    assert first.fresh(10) == second.fresh(10)
    assert first.fresh(5) == second.fresh(5)


def test_fresh_negative_length_rejected():
    with pytest.raises(ValueError):
        TokenFactory().fresh(-1)


def test_fresh_shuffled_same_ids_different_order():
    factory = TokenFactory(seed=2)
    tokens = factory.fresh_shuffled(50)
    assert len(tokens) == 50
    assert len(set(tokens)) == 50


def test_issued_counter_tracks_total():
    factory = TokenFactory()
    factory.fresh(10)
    factory.fresh(20)
    assert factory.issued == 30


# ----------------------------------------------------------------------
# Length distributions
# ----------------------------------------------------------------------
def test_samples_respect_bounds():
    dist = LengthDistribution(median=100, sigma=1.5, minimum=10, maximum=500)
    rng = random.Random(0)
    samples = [dist.sample(rng) for _ in range(2000)]
    assert all(10 <= s <= 500 for s in samples)


def test_distribution_median_is_roughly_respected():
    dist = WILDCHAT_LIKE.output
    rng = random.Random(1)
    samples = sorted(dist.sample(rng) for _ in range(4000))
    empirical_median = samples[len(samples) // 2]
    assert dist.median * 0.7 < empirical_median < dist.median * 1.3


def test_output_lengths_are_heavy_tailed():
    """Fig. 4a: the output CDF has a long tail well beyond the median."""
    rng = random.Random(2)
    samples = sorted(WILDCHAT_LIKE.output.sample(rng) for _ in range(4000))
    p50 = samples[int(0.5 * len(samples))]
    p99 = samples[int(0.99 * len(samples))]
    assert p99 > 4 * p50


def test_cdf_points_are_monotone():
    dist = ARENA_LIKE.user_turn
    rng = random.Random(3)
    samples = [dist.sample(rng) for _ in range(100)]
    points = dist.cdf_points(samples)
    lengths = [length for length, _ in points]
    fractions = [fraction for _, fraction in points]
    assert lengths == sorted(lengths)
    assert fractions[-1] == pytest.approx(1.0)
    assert all(0 < f <= 1 for f in fractions)
    assert dist.cdf_points([]) == []


def test_sampler_is_seed_deterministic():
    a = LengthSampler(TOT_LIKE, seed=7)
    b = LengthSampler(TOT_LIKE, seed=7)
    assert [a.output() for _ in range(20)] == [b.output() for _ in range(20)]
    assert a.user_turn() == b.user_turn()
    assert a.system_prompt() == b.system_prompt()


def test_presets_have_distinct_scales():
    # Arena prompts are shorter than WildChat prompts on average.
    assert ARENA_LIKE.user_turn.median < WILDCHAT_LIKE.user_turn.median
    # ToT system prompts (solver instructions) are comparatively long.
    assert TOT_LIKE.system_prompt.median > TOT_LIKE.user_turn.median
