"""Integration tests for the figure-specific experiment harnesses.

These run heavily scaled-down versions of the paper's experiments and check
the *qualitative* shape of the results (who wins, which direction a gap
points).  The full-scale numbers are produced by the benchmark harness in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    HITRATE_SCENARIOS,
    build_scenario,
    evaluate_hit_rates,
    run_hitrate_benchmark,
    run_imbalance_experiment,
    run_macro_benchmark,
    run_pushing_benchmark,
)


# ----------------------------------------------------------------------
# Fig. 6: CH vs optimal hit rate
# ----------------------------------------------------------------------
def test_scenarios_are_constructible_and_sized():
    for name in HITRATE_SCENARIOS:
        scenario = build_scenario(name, seed=1)
        assert scenario.num_requests > 100
        assert scenario.batches


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        build_scenario("unknown-scenario")


def test_optimal_router_beats_consistent_hashing_overall():
    comparison = run_hitrate_benchmark(seed=3)
    for name in HITRATE_SCENARIOS:
        row = comparison.results[name]
        assert 0.0 < row["consistent-hashing"] < 1.0
        # The global-view router never loses by more than noise in any
        # scenario (greedy placement can occasionally trail by a hair).
        assert row["optimal"] >= row["consistent-hashing"] - 0.02
    # And at least one scenario shows the clearly visible gap of Fig. 6.
    gaps = [comparison.gap(name) for name in HITRATE_SCENARIOS]
    assert max(gaps) > 0.03
    assert sum(1 for gap in gaps if gap > 0) >= 2


def test_cross_user_sharing_scenario_shows_the_largest_structure():
    scenario = build_scenario("cross-user-sharing", seed=0)
    rates = evaluate_hit_rates(scenario, num_replicas=4)
    assert rates["optimal"] > 0.5  # heavy template sharing is exploitable


# ----------------------------------------------------------------------
# Fig. 4b: round-robin memory imbalance
# ----------------------------------------------------------------------
def test_round_robin_produces_memory_imbalance():
    result = run_imbalance_experiment(clients=6, replicas=2, duration_s=40.0, seed=2)
    assert len(result.timelines) == 2
    assert all(samples for samples in result.timelines.values())
    assert result.peak_ratio >= 1.0
    assert all(0.0 <= peak <= 1.0 for peak in result.peak_utilization.values())


# ----------------------------------------------------------------------
# Fig. 9: pushing-policy comparison (scaled down)
# ----------------------------------------------------------------------
def test_pushing_benchmark_runs_all_three_policies():
    result = run_pushing_benchmark(replicas=2, clients=6, duration_s=40.0, seed=4)
    assert set(result.runs) == {"BP", "SP-O", "SP-P"}
    for metrics in result.runs.values():
        assert metrics.num_completed > 0
    # Selective pushing by pending requests must not lose to blind pushing on
    # tail TTFT (the paper reports an 18x improvement at full scale).
    assert result.runs["SP-P"].ttft.p90 <= result.runs["BP"].ttft.p90 * 1.2
    assert result.throughput_gain(over="BP", policy="SP-P") > 0.8


# ----------------------------------------------------------------------
# Fig. 8: macro benchmark plumbing (tiny sweep)
# ----------------------------------------------------------------------
def test_macro_benchmark_sweep_structure():
    result = run_macro_benchmark(
        systems=("round-robin", "skywalker"),
        workloads=("chatbot-arena",),
        scale=0.03,
        duration_s=30.0,
    )
    assert result.workloads() == ["chatbot-arena"]
    assert set(result.systems("chatbot-arena")) == {"round-robin", "skywalker"}
    table = result.throughput_table()
    assert table["chatbot-arena"]["skywalker"] > 0
    speedups = result.speedup_over_baselines("chatbot-arena", system="skywalker")
    assert "round-robin" in speedups
    report = result.format_report()
    assert "chatbot-arena" in report and "skywalker" in report
