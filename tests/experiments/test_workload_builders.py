"""Unit tests for the evaluation workload builders (§5.1 configurations)."""

import pytest

from repro.experiments import (
    MACRO_WORKLOAD_BUILDERS,
    build_arena_workload,
    build_mixed_tree_workload,
    build_skewed_workload,
    build_tot_workload,
    build_wildchat_workload,
)


def test_arena_workload_has_equal_clients_per_region():
    spec = build_arena_workload(scale=0.1)
    assert spec.name == "chatbot-arena"
    assert len(set(spec.clients_per_region.values())) == 1
    assert set(spec.programs_by_region) == {"us", "eu", "asia"}
    assert spec.hash_key == "user"
    assert spec.total_requests > 0


def test_wildchat_workload_skews_clients_toward_the_us():
    spec = build_wildchat_workload(scale=0.5)
    assert spec.clients_per_region["us"] > spec.clients_per_region["eu"]
    assert spec.clients_per_region["eu"] == spec.clients_per_region["asia"]
    # Conversations are region-local: every program's requests stay in-region.
    for region, programs in spec.programs_by_region.items():
        assert all(p.region == region for p in programs)


def test_tot_workload_uses_two_branch_trees():
    spec = build_tot_workload(scale=0.1)
    assert spec.hash_key == "session"
    some_program = spec.programs_by_region["us"][0]
    assert some_program.num_requests == 15
    assert [len(stage) for stage in some_program.stages] == [1, 2, 4, 8]


def test_mixed_tree_workload_mixes_tree_sizes():
    spec = build_mixed_tree_workload(scale=0.2)
    us_sizes = {p.num_requests for p in spec.programs_by_region["us"]}
    eu_sizes = {p.num_requests for p in spec.programs_by_region["eu"]}
    assert us_sizes == {85}   # 4-branch trees in the US
    assert eu_sizes == {15}   # 2-branch trees elsewhere
    assert spec.clients_per_region["us"] < spec.clients_per_region["eu"]


def test_skewed_workload_matches_figure_10_ratios():
    spec = build_skewed_workload(scale=0.1)
    assert spec.clients_per_region["us"] == 3 * spec.clients_per_region["eu"]
    assert spec.clients_per_region["eu"] == spec.clients_per_region["asia"]


def test_scale_changes_client_counts_proportionally():
    small = build_arena_workload(scale=0.05)
    large = build_arena_workload(scale=0.2)
    assert large.clients_per_region["us"] > small.clients_per_region["us"]
    assert large.total_requests > small.total_requests


def test_builder_registry_covers_the_four_macro_workloads():
    assert set(MACRO_WORKLOAD_BUILDERS) == {
        "chatbot-arena", "wildchat", "tree-of-thoughts", "mixed-tree",
    }
    for builder in MACRO_WORKLOAD_BUILDERS.values():
        spec = builder(scale=0.05)
        assert spec.total_requests > 0


def test_workloads_are_deterministic_per_seed():
    a = build_arena_workload(scale=0.05, seed=9)
    b = build_arena_workload(scale=0.05, seed=9)
    prompts_a = [r.prompt_tokens for programs in a.programs_by_region.values()
                 for p in programs for r in p.all_requests()]
    prompts_b = [r.prompt_tokens for programs in b.programs_by_region.values()
                 for p in programs for r in p.all_requests()]
    assert prompts_a == prompts_b
