"""Fault schedules through the sweep layer: determinism and plumbing.

The acceptance bar of the fault subsystem is a pair of bit-identity
guarantees:

* ``faults=None`` and the *empty* schedule produce metrics bit-identical
  to the historical fault-free path (no fault machinery is created at
  all), and
* the same non-empty schedule + seed is bit-identical between the serial
  loop and ``workers=N`` worker processes, and across repeats.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    build_arena_workload,
    run_diurnal_sweep,
    run_macro_benchmark,
    run_pushing_benchmark,
    run_sweep,
)
from repro.faults import (
    BalancerFailure,
    FaultSchedule,
    ReplicaCrash,
    register_fault_schedule,
    unregister_fault_schedule,
)
from repro.replica import TINY_TEST_PROFILE

CLUSTER = ClusterConfig(
    replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
)
OUTAGE = FaultSchedule.single(
    10.0, BalancerFailure(region="us", duration_s=8.0), recovery_time_s=8.0
)


def small_sweep(**kwargs):
    workload = build_arena_workload(scale=0.03, seed=1)
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("round-robin")]
    return run_sweep(
        systems, [workload], cluster=CLUSTER, duration_s=25.0, seed=1, **kwargs
    ), workload.name


def cells_of(sweep, workload_name):
    return {
        system: sweep.get(workload_name, system).to_dict()
        for system in sweep.systems(workload_name)
    }


# ----------------------------------------------------------------------
# zero-fault identity
# ----------------------------------------------------------------------
def test_empty_schedule_is_bit_identical_to_no_faults():
    plain, name = small_sweep()
    empty, _ = small_sweep(faults=FaultSchedule())
    assert cells_of(plain, name) == cells_of(empty, name)
    # Zero-fault payloads do not even mention resilience, exactly like
    # runs that predate fault injection (golden traces stay valid).
    for payload in cells_of(plain, name).values():
        assert "resilience" not in payload


# ----------------------------------------------------------------------
# faulted determinism
# ----------------------------------------------------------------------
def test_faulted_sweep_serial_matches_workers_and_repeats():
    serial, name = small_sweep(faults=OUTAGE, workers=1)
    parallel, _ = small_sweep(faults=OUTAGE, workers=2)
    repeat, _ = small_sweep(faults=OUTAGE, workers=1)
    serial_cells = cells_of(serial, name)
    assert serial_cells == cells_of(parallel, name)
    assert serial_cells == cells_of(repeat, name)
    for system, payload in serial_cells.items():
        assert payload["resilience"]["failover_count"] == 1, system
        assert payload["resilience"]["outage_windows"], system


def test_named_schedule_resolves_inside_worker_processes():
    @register_fault_schedule("test-crash-burst")
    def _factory():
        return FaultSchedule.single(5.0, ReplicaCrash(region="us", index=0, duration_s=5.0))

    try:
        by_name, name = small_sweep(faults="test-crash-burst", workers=2)
        by_object, _ = small_sweep(faults=_factory(), workers=1)
        assert cells_of(by_name, name) == cells_of(by_object, name)
    finally:
        unregister_fault_schedule("test-crash-burst")


# ----------------------------------------------------------------------
# figure-level drivers accept faults=
# ----------------------------------------------------------------------
def test_macro_benchmark_threads_faults_through_cells():
    result = run_macro_benchmark(
        systems=("skywalker", "round-robin"),
        workloads=("chatbot-arena",),
        scale=0.03,
        duration_s=25.0,
        cluster=CLUSTER,
        faults=OUTAGE,
    )
    for system in ("skywalker", "round-robin"):
        resilience = result.get("chatbot-arena", system).resilience
        assert resilience is not None, system
        assert resilience.failover_count == 1, system


def test_diurnal_sweep_threads_faults_through_cells():
    result = run_diurnal_sweep(
        replica_counts=(3,), scale=0.03, duration_s=25.0, faults=OUTAGE
    )
    assert result.skywalker[3].resilience is not None
    # region-local has a us balancer too; the schedule applies to both arms.
    assert result.region_local[3].resilience is not None


def test_pushing_benchmark_threads_faults_through_cells():
    schedule = FaultSchedule.single(8.0, ReplicaCrash(region="us", index=0, duration_s=4.0))
    result = run_pushing_benchmark(
        policies=("BP", "SP-P"), replicas=2, clients=6, duration_s=25.0, faults=schedule
    )
    for policy in ("BP", "SP-P"):
        assert result.get(policy).resilience is not None, policy


# ----------------------------------------------------------------------
# paired per-seed differences (rides on the multi-seed sweep layer)
# ----------------------------------------------------------------------
def test_sweep_paired_diff_requires_and_uses_per_seed_runs():
    workload = build_arena_workload(scale=0.03, seed=1)
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("round-robin")]
    single = run_sweep(systems, [workload], cluster=CLUSTER, duration_s=20.0, seed=1)
    # A single-seed sweep pairs one run per side: degenerate n=1, no CI.
    degenerate = single.paired_diff(workload.name, "skywalker", "round-robin")
    assert degenerate.n == 1 and degenerate.ci95 is None
    with pytest.raises(ValueError, match="per-seed runs"):
        single.paired_diff(workload.name, "skywalker", "no-such-system")

    multi = run_sweep(
        systems, [workload], cluster=CLUSTER, duration_s=20.0, seeds=[1, 2, 3]
    )
    stat = multi.paired_diff(workload.name, "skywalker", "round-robin")
    assert stat.n == 3
    # The paired mean must equal the difference of the per-system means.
    sky = multi.aggregate(workload.name, "skywalker").mean("throughput_tokens_per_s")
    rr = multi.aggregate(workload.name, "round-robin").mean("throughput_tokens_per_s")
    assert stat.mean == pytest.approx(sky - rr)
    with pytest.raises(ValueError, match="unknown metric"):
        multi.paired_diff(workload.name, "skywalker", "round-robin", metric="vibes")
