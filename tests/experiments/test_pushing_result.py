"""Unit tests for :class:`PushingResult` ratio helpers.

Regression: a zero baseline (a run that completed nothing) used to yield
``float("inf")``, which silently poisoned downstream report formatting.
Empty runs must instead fail loudly, naming the offending run.
"""

import pytest

from repro.experiments import PushingResult
from repro.metrics import LatencySummary, RunMetrics


def make_metrics(system: str, *, throughput: float, ttft_p90: float) -> RunMetrics:
    ttft_values = [ttft_p90] if ttft_p90 > 0 else []
    return RunMetrics(
        system=system,
        workload="tot-single-region",
        duration_s=10.0,
        num_completed=1 if throughput > 0 else 0,
        num_issued=1,
        throughput_tokens_per_s=throughput,
        output_tokens_per_s=throughput / 2,
        requests_per_s=0.1,
        ttft=LatencySummary.from_values(ttft_values),
        e2e_latency=LatencySummary.from_values(ttft_values),
        queueing_delay=LatencySummary.from_values([]),
        cache_hit_rate=0.0,
        cross_region_fraction=0.0,
        forwarded_fraction=0.0,
        replica_load_imbalance=1.0,
    )


def test_gains_computed_for_non_empty_runs():
    result = PushingResult()
    result.runs["BP"] = make_metrics("BP", throughput=100.0, ttft_p90=2.0)
    result.runs["SP-P"] = make_metrics("SP-P", throughput=150.0, ttft_p90=0.5)
    assert result.throughput_gain("BP", "SP-P") == pytest.approx(1.5)
    assert result.p90_ttft_reduction("BP", "SP-P") == pytest.approx(4.0)


def test_zero_throughput_baseline_raises_naming_the_run():
    result = PushingResult()
    result.runs["BP"] = make_metrics("BP", throughput=0.0, ttft_p90=0.0)
    result.runs["SP-P"] = make_metrics("SP-P", throughput=150.0, ttft_p90=0.5)
    with pytest.raises(ValueError, match="'BP'"):
        result.throughput_gain("BP", "SP-P")


def test_zero_ttft_target_raises_naming_the_run():
    result = PushingResult()
    result.runs["BP"] = make_metrics("BP", throughput=100.0, ttft_p90=2.0)
    result.runs["SP-P"] = make_metrics("SP-P", throughput=0.0, ttft_p90=0.0)
    with pytest.raises(ValueError, match="'SP-P'"):
        result.p90_ttft_reduction("BP", "SP-P")
