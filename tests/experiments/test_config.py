"""Unit tests for experiment configuration validation."""

import pytest

from repro.experiments import (
    ALL_SYSTEMS,
    BASELINE_SYSTEMS,
    SYSTEM_KINDS,
    ClusterConfig,
    SkyWalkerConfig,
    WorkloadSpec,
)
from repro.workloads import Program

from ..conftest import make_request


def test_system_kind_catalogue_is_consistent():
    assert set(BASELINE_SYSTEMS) < set(SYSTEM_KINDS)
    assert set(ALL_SYSTEMS) <= set(SYSTEM_KINDS)
    assert "skywalker" in ALL_SYSTEMS and "skywalker-ch" in ALL_SYSTEMS
    assert "region-local" not in ALL_SYSTEMS  # only used by the Fig. 10 sweep


def test_invalid_hash_key_rejected():
    with pytest.raises(ValueError):
        SkyWalkerConfig(kind="skywalker", hash_key="ip-address")


def test_system_name_defaults_to_kind_but_label_wins():
    assert SkyWalkerConfig(kind="skywalker").name == "skywalker"
    assert SkyWalkerConfig(kind="skywalker", label="SP-P").name == "SP-P"


def test_cluster_config_counts_replicas():
    cluster = ClusterConfig(replicas_per_region={"us": 3, "eu": 2, "asia": 1})
    assert cluster.total_replicas == 6


def test_workload_spec_counts_programs_and_requests():
    program = Program(
        program_id="p", user_id="u", region="us",
        stages=[[make_request()], [make_request(), make_request()]],
    )
    spec = WorkloadSpec(
        name="unit",
        programs_by_region={"us": [program]},
        clients_per_region={"us": 1},
    )
    assert spec.total_programs == 1
    assert spec.total_requests == 3
