"""Tests for the Fig. 10 sweep harness (scaled far down for CI speed)."""

import pytest

from repro.experiments import run_diurnal_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_diurnal_sweep(replica_counts=(3, 6), scale=0.2, duration_s=50.0, seed=5)


def test_sweep_covers_both_systems_and_all_counts(sweep):
    assert sweep.replica_counts() == [3, 6]
    for count in (3, 6):
        assert sweep.skywalker[count].num_completed > 0
        assert sweep.region_local[count].num_completed > 0


def test_throughput_series_structure(sweep):
    series = sweep.throughput_series()
    assert set(series) == {"skywalker", "region-local"}
    assert set(series["skywalker"]) == {3, 6}
    assert all(value > 0 for value in series["skywalker"].values())


def test_more_replicas_give_more_throughput(sweep):
    assert (
        sweep.region_local[6].throughput_tokens_per_s
        > sweep.region_local[3].throughput_tokens_per_s
    )
    assert (
        sweep.skywalker[6].throughput_tokens_per_s
        > sweep.skywalker[3].throughput_tokens_per_s
    )


def test_per_region_tail_latency_is_recorded(sweep):
    for runs in (sweep.skywalker, sweep.region_local):
        for metrics in runs.values():
            assert "us_ttft_p90" in metrics.extra
            assert metrics.extra["us_ttft_p90"] > 0


def test_region_local_never_offloads_but_skywalker_may(sweep):
    for metrics in sweep.region_local.values():
        assert metrics.forwarded_fraction == 0.0
    assert all(m.forwarded_fraction >= 0.0 for m in sweep.skywalker.values())


def test_slo_helpers_are_consistent(sweep):
    # A very loose SLO is met by the smallest fleet of both systems; an
    # impossible SLO is met by neither.
    loose_sky = sweep.replicas_meeting_slo("skywalker", 1e6)
    loose_local = sweep.replicas_meeting_slo("region-local", 1e6)
    assert loose_sky == loose_local == 3
    assert sweep.replicas_meeting_slo("skywalker", 1e-6) is None
    assert sweep.slo_cost_reduction(1e6) == pytest.approx(0.0)


def test_uneven_replica_counts_are_rejected():
    with pytest.raises(ValueError):
        run_diurnal_sweep(replica_counts=(4,), scale=0.05, duration_s=10.0)
