"""Tests for the stdlib sweep-result renderers behind ``SweepResult.plot_*``."""

import csv
import io

import pytest

from repro.experiments import SweepResult
from repro.experiments.plotting import metric_value, render_bars, render_csv, render_table
from repro.metrics import LatencySummary, RunMetrics


def fake_run(system, workload, *, throughput, ttft_p90, seed=None):
    latency = LatencySummary.from_values([ttft_p90])
    return RunMetrics(
        system=system,
        workload=workload,
        duration_s=60.0,
        num_completed=100,
        num_issued=110,
        throughput_tokens_per_s=throughput,
        output_tokens_per_s=throughput / 4,
        requests_per_s=2.0,
        ttft=latency,
        e2e_latency=latency,
        queueing_delay=latency,
        cache_hit_rate=0.5,
        cross_region_fraction=0.1,
        forwarded_fraction=0.05,
        replica_load_imbalance=1.2,
        seed=seed,
    )


@pytest.fixture
def result():
    sweep = SweepResult()
    sweep.add(fake_run("skywalker", "arena", throughput=2000.0, ttft_p90=0.25))
    sweep.add(fake_run("round-robin", "arena", throughput=1000.0, ttft_p90=0.5))
    sweep.add(fake_run("skywalker", "tot", throughput=3000.0, ttft_p90=0.125))
    return sweep


def test_metric_value_resolves_dotted_paths(result):
    run = result.get("arena", "skywalker")
    assert metric_value(run, "throughput_tokens_per_s") == 2000.0
    assert metric_value(run, "ttft.p90") == 0.25
    with pytest.raises(AttributeError):
        metric_value(run, "no_such_metric")


def test_metric_value_rejects_unrecorded_optional(result):
    run = result.get("arena", "skywalker")
    assert run.memory is None
    with pytest.raises(ValueError, match="not recorded"):
        metric_value(run, "memory.hbm_hit_rate")


def test_plot_table_grids_workloads_by_systems(result):
    table = result.plot_table("throughput_tokens_per_s")
    lines = table.splitlines()
    assert "skywalker" in lines[0] and "round-robin" in lines[0]
    arena = next(line for line in lines if line.startswith("arena"))
    assert "2000" in arena and "1000" in arena
    # round-robin never ran on "tot": the cell renders as a dash, not a crash.
    tot = next(line for line in lines if line.startswith("tot"))
    assert "-" in tot


def test_plot_bars_scales_to_block_maximum(result):
    chart = result.plot_bars("throughput_tokens_per_s", workload="arena", width=10)
    lines = chart.splitlines()
    skywalker = next(line for line in lines if "skywalker" in line)
    round_robin = next(line for line in lines if "round-robin" in line)
    assert skywalker.count("#") == 10  # block maximum fills the width
    assert round_robin.count("#") == 5  # half the throughput, half the bar


def test_plot_csv_round_trips_through_csv_reader(result):
    rows = list(csv.reader(io.StringIO(result.plot_csv())))
    header, body = rows[0], rows[1:]
    assert header[:3] == ["workload", "system", "seed"]
    assert "ttft.p90" in header
    assert len(body) == 3  # one row per (workload, system) cell
    arena_sky = next(r for r in body if r[0] == "arena" and r[1] == "skywalker")
    assert float(arena_sky[header.index("throughput_tokens_per_s")]) == 2000.0


def test_plot_csv_emits_one_row_per_seed():
    sweep = SweepResult()
    for seed in (1, 2, 3):
        sweep.add(
            fake_run(
                "skywalker", "arena", throughput=1000.0 * seed, ttft_p90=0.2, seed=seed
            )
        )
    rows = list(csv.reader(io.StringIO(sweep.plot_csv(metrics=["throughput_tokens_per_s"]))))
    assert [row[2] for row in rows[1:]] == ["1", "2", "3"]
    assert [float(row[3]) for row in rows[1:]] == [1000.0, 2000.0, 3000.0]


def test_render_functions_accept_result_directly(result):
    # The plot_* methods are thin wrappers; the module functions are public.
    assert render_table(result) == result.plot_table()
    assert render_bars(result) == result.plot_bars()
    assert render_csv(result) == result.plot_csv()


def test_plot_figure_requires_matplotlib_or_returns_figure(result, tmp_path):
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        with pytest.raises(RuntimeError, match="matplotlib"):
            result.plot_figure("throughput_tokens_per_s")
    else:
        path = tmp_path / "fig.png"
        fig = result.plot_figure("throughput_tokens_per_s", path=str(path))
        assert fig is not None
        assert path.exists()
