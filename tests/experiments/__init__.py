"""Test package."""
