"""Golden-trace equivalence for the hot-path optimizations.

The optimized :class:`~repro.core.prefix_tree.PrefixTree` /
:class:`~repro.replica.kv_cache.RadixCache` / load-estimate caching must be
*behaviour preserving*: for a fixed seed the routing decisions — and hence
every sweep metric — have to be bit-identical to the pre-optimization
implementation.  The fixture committed next to this test was generated with
the original full-scan implementations (PR 2 state) by running exactly the
grid below; the test replays the grid on the current code and compares the
full ``RunMetrics.to_dict()`` payloads.

The grid is deliberately chosen to exercise the rewritten paths hard:

* ``skywalker`` with a tiny ``trie_max_tokens`` so the router-side prefix
  tree evicts constantly (the O(log n) heap path replaces a full-tree scan),
* ``sglang-router`` as the second PrefixTree consumer (blind pushing, its
  own tree instance),
* a shrunken KV budget (~7k tokens per replica) so the replica-side
  :class:`RadixCache` hits capacity and takes the LRU eviction path,
* ``wildchat`` (multi-turn, prefix-heavy) and ``chatbot-arena`` workloads.

One deliberate semantic change rides along with the optimizations: the
``best_target`` tie-break (most-recent insert instead of ``min(key=repr)``,
see the satellite regression test in ``tests/core/test_prefix_tree.py``).
On this grid the two rules decide identically — verified by swapping the
legacy rule into the optimized structure and reproducing the full-scale
Fig. 8/9/10 artifacts bit-for-bit — so the fixture pins the optimizations
themselves, not the tie-break.

Regenerate (only when a deliberate behaviour change is introduced) with::

    PYTHONPATH=src python tests/experiments/test_golden_trace.py --regen
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import REGISTRY, ClusterConfig, run_sweep
from repro.experiments.workloads import MACRO_WORKLOAD_BUILDERS
from repro.replica.model_profile import LLAMA_8B_L4

# The golden grid evicts constantly on both PrefixTree and RadixCache --
# exactly where strict-invariants drift checks earn their keep.
pytestmark = pytest.mark.strict_invariants

#: The paper's L4 profile with the KV pool shrunk to ~7k tokens, so the
#: radix cache evicts under the golden workloads instead of never filling.
SMALL_KV_PROFILE = dataclasses.replace(
    LLAMA_8B_L4, name="llama-8b/small-kv", kv_bytes_per_token=1024 * 1024
)

FIXTURE = Path(__file__).parent / "data" / "golden_sweep_fixture.json"

GRID_SEED = 3
GRID_SCALE = 0.2
GRID_DURATION_S = 60.0
GRID_WORKLOADS = ("wildchat", "chatbot-arena")


def _grid_systems():
    return [
        # Tiny trie capacity => constant eviction pressure on the router tree.
        REGISTRY.spec("skywalker", trie_max_tokens=4000, label="skywalker-tiny-trie"),
        REGISTRY.spec("sglang-router"),
    ]


def _run_grid():
    workloads = [
        MACRO_WORKLOAD_BUILDERS[name](scale=GRID_SCALE, seed=GRID_SEED)
        for name in GRID_WORKLOADS
    ]
    sweep = run_sweep(
        _grid_systems(),
        workloads,
        cluster=ClusterConfig(
            replicas_per_region={"us": 1, "eu": 1, "asia": 1},
            profile=SMALL_KV_PROFILE,
        ),
        duration_s=GRID_DURATION_S,
        seed=GRID_SEED,
    )
    return {
        workload: {system: metrics.to_dict() for system, metrics in row.items()}
        for workload, row in sweep.runs.items()
    }


def test_sweep_metrics_bit_identical_to_committed_golden_trace():
    fixture = json.loads(FIXTURE.read_text())
    fresh = json.loads(json.dumps(_run_grid()))  # normalise tuples/keys like the fixture
    assert fresh.keys() == fixture.keys()
    for workload in fixture:
        assert fresh[workload].keys() == fixture[workload].keys(), workload
        for system, expected in fixture[workload].items():
            actual = fresh[workload][system]
            assert actual == expected, (
                f"metrics for ({workload}, {system}) diverged from the golden trace"
            )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(_run_grid(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {FIXTURE}")
    else:
        print(__doc__)
