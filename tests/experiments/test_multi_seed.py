"""Multi-seed sweeps: bit-identity guarantees and aggregation plumbing.

Three contracts under test:

* ``seeds=[s]`` is **bit-identical** to the legacy single-seed ``seed=s``
  path (the golden traces and committed artifacts depend on it),
* serial and ``workers=2`` multi-seed sweeps are bit-identical per seed,
* the per-seed runs and mean/95%-CI aggregates are populated everywhere
  the API promises them (``run_sweep``, macro, pushing, diurnal).
"""

import pytest

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    build_arena_workload,
    normalise_seeds,
    run_diurnal_sweep,
    run_macro_benchmark,
    run_pushing_benchmark,
    run_sweep,
)
from repro.replica import TINY_TEST_PROFILE


def tiny_cluster():
    return ClusterConfig(
        replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
    )


# ----------------------------------------------------------------------
# seed-list normalisation
# ----------------------------------------------------------------------
def test_normalise_seeds_contract():
    assert normalise_seeds(7, None) == [7]
    assert normalise_seeds(7, [1, 2, 3]) == [1, 2, 3]
    with pytest.raises(ValueError, match="non-empty"):
        normalise_seeds(7, [])
    with pytest.raises(ValueError, match="duplicates"):
        normalise_seeds(7, [1, 1, 2])


# ----------------------------------------------------------------------
# seeds=[s] ≡ legacy seed=s, bit for bit
# ----------------------------------------------------------------------
def test_single_entry_seeds_is_bit_identical_to_legacy_seed():
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("least-load")]
    workload = build_arena_workload(scale=0.03, seed=1)
    kwargs = dict(cluster=tiny_cluster(), duration_s=15.0)
    legacy = run_sweep(systems, [workload], seed=3, **kwargs)
    seeded = run_sweep(systems, [workload], seeds=[3], **kwargs)
    for system in legacy.systems(workload.name):
        reference = legacy.get(workload.name, system)
        assert reference.num_completed > 0
        assert seeded.get(workload.name, system).to_dict() == reference.to_dict()
        # The seeds=[3] run also exposes itself under its seed key...
        assert seeded.get(workload.name, system, seed=3).to_dict() == reference.to_dict()
    # ...and the seed stamp stays out of the identity payload.
    stamped = seeded.get(workload.name, "skywalker")
    assert stamped.seed == 3
    assert "seed" not in stamped.to_dict()


# ----------------------------------------------------------------------
# multi-seed: serial ≡ workers=2, per seed
# ----------------------------------------------------------------------
def test_multi_seed_parallel_is_bit_identical_to_serial():
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("consistent-hash")]
    workload = build_arena_workload(scale=0.03, seed=1)
    kwargs = dict(cluster=tiny_cluster(), duration_s=15.0, seeds=[1, 2])
    serial = run_sweep(systems, [workload], workers=1, **kwargs)
    parallel = run_sweep(systems, [workload], workers=2, **kwargs)
    assert serial.seeds() == parallel.seeds() == [1, 2]
    for system in serial.systems(workload.name):
        for seed in (1, 2):
            a = serial.get(workload.name, system, seed=seed)
            b = parallel.get(workload.name, system, seed=seed)
            assert a.num_completed > 0
            assert a.to_dict() == b.to_dict(), (system, seed)
        # The base view is the first listed seed in both modes.
        assert (
            serial.get(workload.name, system).to_dict()
            == serial.get(workload.name, system, seed=1).to_dict()
        )


def test_multi_seed_aggregate_and_reports_populated():
    workload = build_arena_workload(scale=0.03, seed=1)
    sweep = run_sweep(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("least-load")],
        [workload],
        cluster=tiny_cluster(),
        duration_s=15.0,
        seeds=[1, 2, 3],
    )
    for system in sweep.systems(workload.name):
        per_seed = sweep.runs_for(workload.name, system)
        assert list(per_seed) == [1, 2, 3]
        agg = sweep.aggregate(workload.name, system)
        assert agg.num_seeds == 3 and agg.seeds == (1, 2, 3)
        for metric in ("throughput_tokens_per_s", "ttft_p50", "cache_hit_rate"):
            stat = agg.stat(metric)
            assert stat.ci95 is not None and stat.stdev is not None
        # Per-seed wall-clock is recorded alongside the base-seed view.
        for seed in (1, 2, 3):
            assert sweep.wall_clock(workload.name, system, seed=seed) > 0.0
        assert sweep.wall_clock(workload.name, system) == sweep.wall_clock(
            workload.name, system, seed=1
        )
    report = sweep.format_report()
    assert "aggregate over seeds [1, 2, 3]" in report and "±" in report
    import json

    payload = json.loads(sweep.to_json())
    assert {cell["system"] for cell in payload["cells"]} == {"skywalker", "least-load"}


def test_single_seed_aggregate_is_degenerate_not_missing():
    workload = build_arena_workload(scale=0.03, seed=1)
    sweep = run_sweep(
        [REGISTRY.spec("skywalker")], [workload], cluster=tiny_cluster(), duration_s=10.0
    )
    agg = sweep.aggregate(workload.name, "skywalker")
    assert agg.num_seeds == 1
    assert agg.stat("throughput_tokens_per_s").ci95 is None


# ----------------------------------------------------------------------
# figure drivers
# ----------------------------------------------------------------------
def test_macro_benchmark_multi_seed():
    result = run_macro_benchmark(
        systems=("skywalker", "round-robin"),
        workloads=("chatbot-arena",),
        scale=0.03,
        duration_s=10.0,
        cluster=tiny_cluster(),
        seeds=[0, 1],
        workers=2,
    )
    row = result.runs["chatbot-arena"]
    assert set(row) == {"skywalker", "round-robin"}
    for system in row:
        # The base view is seed 0's run; both seeds are retained.
        assert row[system].to_dict() == result.get("chatbot-arena", system, seed=0).to_dict()
        assert set(result.seed_runs["chatbot-arena"][system]) == {0, 1}
        agg = result.aggregate("chatbot-arena", system)
        assert agg.num_seeds == 2
        assert agg.ci95("throughput_tokens_per_s") is not None
    assert "±" in result.format_report()


def test_pushing_benchmark_multi_seed():
    result = run_pushing_benchmark(
        policies=("BP", "SP-P"),
        replicas=2,
        clients=6,
        duration_s=10.0,
        seeds=[7, 8],
    )
    for policy in ("BP", "SP-P"):
        assert result.get(policy).num_completed > 0
        assert result.get(policy).to_dict() == result.get(policy, seed=7).to_dict()
        agg = result.aggregate(policy)
        assert agg.num_seeds == 2
        assert agg.ci95("ttft_p50") is not None
    # Base-seed ratio helpers keep working on the multi-seed result.
    assert result.throughput_gain("BP", "SP-P") > 0


def test_diurnal_sweep_multi_seed():
    result = run_diurnal_sweep(
        replica_counts=(3,), scale=0.05, duration_s=10.0, seeds=[5, 6]
    )
    for system, base, seed_runs in (
        ("skywalker", result.skywalker, result.skywalker_seed_runs),
        ("region-local", result.region_local, result.region_local_seed_runs),
    ):
        assert set(seed_runs[3]) == {5, 6}
        assert base[3].to_dict() == seed_runs[3][5].to_dict()
        agg = result.aggregate(system, 3)
        assert agg.num_seeds == 2 and agg.seeds == (5, 6)
        assert agg.ci95("throughput_tokens_per_s") is not None
    # A typoed system name must fail loudly, not return the wrong arm.
    with pytest.raises(ValueError, match="unknown system"):
        result.aggregate("sky-walker", 3)


def test_figure_drivers_single_seed_unchanged_by_seed_plumbing():
    """seeds=None keeps the figure drivers bit-identical to seeds=[default]."""
    kwargs = dict(
        systems=("skywalker",),
        workloads=("chatbot-arena",),
        scale=0.03,
        duration_s=10.0,
        cluster=tiny_cluster(),
    )
    legacy = run_macro_benchmark(seed=0, **kwargs)
    seeded = run_macro_benchmark(seeds=[0], **kwargs)
    assert (
        legacy.get("chatbot-arena", "skywalker").to_dict()
        == seeded.get("chatbot-arena", "skywalker").to_dict()
    )
