"""Tests for the process-parallel sweep executor.

The core guarantee under test: for a fixed seed, a sweep run with N worker
processes is **bit-identical** to the serial in-process loop -- parallelism
only buys wall-clock, never changes results.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    SweepExecutor,
    SweepTask,
    build_arena_workload,
    build_tot_workload,
    run_sweep,
    run_sweep_task,
)
from repro.replica import TINY_TEST_PROFILE


def tiny_cluster():
    return ClusterConfig(
        replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
    )


def _double(value):
    """Module-level so ProcessPoolExecutor can pickle it."""
    return value * 2


# ----------------------------------------------------------------------
# executor basics
# ----------------------------------------------------------------------
def test_workers_must_be_at_least_one():
    with pytest.raises(ValueError, match="workers"):
        SweepExecutor(workers=0)


def test_map_preserves_task_order_across_workers():
    values = list(range(10))
    assert SweepExecutor(workers=1).map(_double, values) == [v * 2 for v in values]
    assert SweepExecutor(workers=3).map(_double, values) == [v * 2 for v in values]


def test_duplicate_display_names_rejected():
    workload = build_arena_workload(scale=0.02)
    with pytest.raises(ValueError, match="label"):
        SweepExecutor(workers=2).run(
            [REGISTRY.spec("skywalker"), REGISTRY.spec("skywalker")],
            [workload],
            cluster=tiny_cluster(),
            duration_s=5.0,
        )


def test_sweep_task_is_picklable():
    import pickle

    task = SweepTask(
        system=REGISTRY.spec("skywalker"),
        workload=build_arena_workload(scale=0.02),
        cluster=tiny_cluster(),
        duration_s=5.0,
        seed=3,
    )
    clone = pickle.loads(pickle.dumps(task))
    assert clone.system == task.system
    assert clone.workload.total_requests == task.workload.total_requests
    assert clone.seed == 3


def test_run_sweep_task_leaves_the_workload_pristine():
    task = SweepTask(
        system=REGISTRY.spec("round-robin"),
        workload=build_arena_workload(scale=0.02),
        cluster=tiny_cluster(),
        duration_s=10.0,
        seed=1,
    )
    metrics = run_sweep_task(task)
    assert metrics.num_completed > 0
    for programs in task.workload.programs_by_region.values():
        for program in programs:
            for request in program.all_requests():
                assert request.status == "created"


# ----------------------------------------------------------------------
# determinism: parallel == serial, bit for bit
# ----------------------------------------------------------------------
def test_parallel_sweep_is_bit_identical_to_serial():
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("consistent-hash")]
    workloads = [
        build_arena_workload(scale=0.03, seed=1),
        build_tot_workload(scale=0.06, seed=2),
    ]
    kwargs = dict(cluster=tiny_cluster(), duration_s=20.0, seed=1)
    serial = run_sweep(systems, workloads, workers=1, **kwargs)
    parallel = run_sweep(systems, workloads, workers=2, **kwargs)

    assert serial.workloads() == parallel.workloads()
    for workload in serial.workloads():
        assert serial.systems(workload) == parallel.systems(workload)
        for system in serial.systems(workload):
            reference = serial.get(workload, system)
            assert reference.num_completed > 0
            assert parallel.get(workload, system).to_dict() == reference.to_dict()


def test_parallel_sweep_resolves_plugin_systems_in_workers():
    # skywalker-hybrid registers itself via the public @register_system API;
    # forked workers inherit the registration and build it by name.
    sweep = run_sweep(
        [REGISTRY.spec("skywalker-hybrid")],
        [build_arena_workload(scale=0.03, seed=1), build_tot_workload(scale=0.06, seed=2)],
        cluster=tiny_cluster(),
        duration_s=15.0,
        seed=1,
        workers=2,
    )
    for workload in sweep.workloads():
        assert sweep.get(workload, "skywalker-hybrid").num_completed > 0


# ----------------------------------------------------------------------
# per-cell wall-clock recording
# ----------------------------------------------------------------------
def test_cell_wall_clock_recorded_in_serial_and_parallel_modes():
    workload = build_arena_workload(scale=0.02)
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("least-load")]
    for workers in (1, 2):
        sweep = run_sweep(
            systems, [workload], cluster=tiny_cluster(), duration_s=5.0, workers=workers
        )
        for system in sweep.systems(workload.name):
            seconds = sweep.wall_clock(workload.name, system)
            assert seconds is not None and seconds > 0.0, (workers, system)
            assert sweep.cell_seconds[workload.name][system] == seconds
        # The wall-clock column is telemetry, not part of the result
        # identity that the serial-vs-parallel equivalence compares.
        metrics = sweep.get(workload.name, "skywalker")
        assert "wall_clock_s" not in metrics.to_dict()
        assert "  wall=" in sweep.format_report()


def test_wall_clock_survives_pickling_from_workers():
    import pickle

    workload = build_arena_workload(scale=0.02)
    task = SweepTask(
        system=REGISTRY.spec("skywalker"),
        workload=workload,
        cluster=tiny_cluster(),
        duration_s=5.0,
    )
    metrics = run_sweep_task(task)
    assert metrics.wall_clock_s is not None and metrics.wall_clock_s > 0.0
    revived = pickle.loads(pickle.dumps(metrics))
    assert revived.wall_clock_s == metrics.wall_clock_s
    assert revived.to_dict() == metrics.to_dict()
