"""Integration tests: every system kind runs end to end on a small workload."""

import pytest

from repro.experiments import (
    ALL_SYSTEMS,
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    build_arena_workload,
    build_skewed_workload,
    run_experiment,
)
from repro.replica import TINY_TEST_PROFILE


def tiny_cluster(per_region=1, **kwargs):
    return ClusterConfig(
        replicas_per_region={"us": per_region, "eu": per_region, "asia": per_region},
        **kwargs,
    )


def run_tiny(kind, *, duration=40.0, scale=0.03, workload_builder=build_arena_workload, **system_kwargs):
    workload = workload_builder(scale=scale)
    config = ExperimentConfig(
        system=REGISTRY.spec(kind, hash_key=workload.hash_key, **system_kwargs),
        cluster=tiny_cluster(),
        duration_s=duration,
        seed=1,
    )
    return run_experiment(config, workload)


@pytest.mark.parametrize("kind", ALL_SYSTEMS + ("region-local",))
def test_every_system_kind_completes_requests(kind):
    result = run_tiny(kind)
    metrics = result.metrics
    assert metrics.num_completed > 0, f"{kind} completed nothing"
    assert metrics.throughput_tokens_per_s > 0
    assert metrics.ttft.count == metrics.num_completed
    assert metrics.ttft.p50 > 0
    assert metrics.e2e_latency.p50 >= metrics.ttft.p50
    # All completed requests carry full routing/execution metadata.
    for request in result.completed:
        assert request.replica_name is not None
        assert request.serving_region is not None
        assert request.first_token_time is not None


def test_centralized_baseline_pays_cross_region_first_hop():
    """Clients in Asia/Europe must cross an ocean to reach the single US
    balancer, so their TTFT includes cross-region latency even when idle."""
    result = run_tiny("round-robin")
    remote_clients = [r for r in result.completed if r.region != "us"]
    assert remote_clients
    # Every such request was dispatched by the balancer in the US.
    assert all(r.ingress_region == "us" for r in remote_clients)


def test_skywalker_serves_clients_from_their_own_region_when_possible():
    result = run_tiny("skywalker")
    local = [r for r in result.completed if r.serving_region == r.region]
    assert len(local) / len(result.completed) > 0.7
    assert result.metrics.forwarded_fraction < 0.3


def test_region_local_never_crosses_regions():
    result = run_tiny("region-local", workload_builder=build_skewed_workload)
    assert result.metrics.cross_region_fraction == 0.0
    assert result.metrics.forwarded_fraction == 0.0


def test_skywalker_offloads_under_regional_skew():
    # Tiny replicas (small KV budget) make the skewed US load overflow its
    # region, so cross-region offloading must kick in.
    workload = build_skewed_workload(scale=0.08)
    config = ExperimentConfig(
        system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
        cluster=tiny_cluster(profile=TINY_TEST_PROFILE),
        duration_s=60.0,
        seed=1,
    )
    result = run_experiment(config, workload)
    assert result.metrics.forwarded_fraction > 0.0
    forwarded = [r for r in result.completed if r.forward_hops > 0]
    assert forwarded
    assert all(r.forward_hops == 1 for r in forwarded)


def test_prefix_aware_systems_achieve_higher_cache_hit_rate():
    prefix_aware = run_tiny("skywalker").metrics.cache_hit_rate
    oblivious = run_tiny("round-robin").metrics.cache_hit_rate
    assert prefix_aware > oblivious


def test_gdpr_constraint_is_enforced_end_to_end():
    result = run_tiny("skywalker", constraint="gdpr", workload_builder=build_skewed_workload,
                      duration=60.0, scale=0.05)
    eu_requests = [r for r in result.completed if r.region == "eu"]
    assert eu_requests
    assert all(r.serving_region == "eu" for r in eu_requests)


def test_issued_counts_at_least_completed():
    result = run_tiny("least-load")
    assert result.metrics.num_issued >= result.metrics.num_completed


def test_experiment_is_reproducible_for_a_fixed_seed():
    first = run_tiny("skywalker-ch")
    second = run_tiny("skywalker-ch")
    assert first.metrics.num_completed == second.metrics.num_completed
    assert first.metrics.throughput_tokens_per_s == pytest.approx(
        second.metrics.throughput_tokens_per_s
    )
