"""Tests for the pluggable system registry, typed configs and run_sweep."""

import dataclasses

import pytest

from repro.cluster import Deployment, Frontend, ReplicaSpec
from repro.core import GDPRConstraint, SameContinentConstraint
from repro.experiments import (
    REGISTRY,
    BuildContext,
    ClusterConfig,
    ExperimentConfig,
    SkyWalkerConfig,
    SkyWalkerHybridConfig,
    SystemSpec,
    build_arena_workload,
    build_system,
    register_system,
    registered_system_kinds,
    run_experiment,
    run_sweep,
)
from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE
from repro.sim import Environment


SEED_KINDS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
    "skywalker-ch",
    "skywalker",
    "region-local",
)


@pytest.fixture
def stack(env):
    """A tiny env/network/deployment/frontend quadruple for build_system."""
    topology = default_topology()
    network = Network(env, topology, jitter_fraction=0.0, seed=0)
    specs = [
        ReplicaSpec(region=region, count=1, profile=TINY_TEST_PROFILE)
        for region in ("us", "eu", "asia")
    ]
    deployment = Deployment(env, specs, topology=topology, network=network)
    frontend = Frontend(env, network)
    return env, network, deployment, frontend


def build(system, stack, **kwargs):
    env, network, deployment, frontend = stack
    return build_system(system, env, network, deployment, frontend, **kwargs)


# ----------------------------------------------------------------------
# catalogue
# ----------------------------------------------------------------------
def test_every_seed_kind_is_registered():
    assert set(SEED_KINDS) <= set(registered_system_kinds())


def test_hybrid_plugin_is_registered_without_runner_edits():
    assert "skywalker-hybrid" in registered_system_kinds()
    assert "skywalker-hybrid" in REGISTRY


def test_unknown_kind_raises_from_registry():
    with pytest.raises(ValueError):
        REGISTRY.get("quantum-balancer")


def test_registry_spec_builds_typed_configs_with_overrides():
    spec = REGISTRY.spec("skywalker", pushing="SP-O", sp_o_threshold=7)
    assert isinstance(spec, SkyWalkerConfig)
    assert spec.kind == "skywalker"
    assert spec.pushing == "SP-O"
    assert spec.sp_o_threshold == 7
    hybrid = REGISTRY.spec("skywalker-hybrid")
    assert isinstance(hybrid, SkyWalkerHybridConfig)


# ----------------------------------------------------------------------
# routing constraints through build_system
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "constraint,expected_cls",
    [("gdpr", GDPRConstraint), ("continent", SameContinentConstraint)],
)
def test_constraints_are_built_for_skywalker(stack, constraint, expected_cls):
    balancers = build(
        SkyWalkerConfig(kind="skywalker", constraint=constraint),
        stack,
        client_regions=("us", "eu", "asia"),
    )
    assert len(balancers) == 3
    for balancer in balancers:
        assert isinstance(balancer.constraint, expected_cls)


def test_unknown_constraint_raises(stack):
    with pytest.raises(ValueError, match="unknown constraint"):
        build(SkyWalkerConfig(kind="skywalker", constraint="lunar"), stack)


# ----------------------------------------------------------------------
# pushing policies through build_system
# ----------------------------------------------------------------------
def test_pushing_policies_resolve_by_registered_name(stack):
    from repro.core import BlindPushing, SelectivePushingOutstanding

    balancers = build(SkyWalkerConfig(kind="skywalker", pushing="BP"), stack)
    assert all(isinstance(b.pushing_policy, BlindPushing) for b in balancers)

    env, network, deployment, _ = stack
    balancers = build_system(
        SkyWalkerConfig(kind="skywalker", pushing="SP-O", sp_o_threshold=5),
        env, network, deployment, Frontend(env, network),
    )
    assert all(isinstance(b.pushing_policy, SelectivePushingOutstanding) for b in balancers)
    assert all(b.pushing_policy.max_outstanding == 5 for b in balancers)


def test_third_party_pushing_policy_via_skywalker_config(stack):
    from repro.core import (
        SelectivePushingPending,
        register_pushing_policy,
        unregister_pushing_policy,
    )

    @register_pushing_policy("sp-test")
    class TestPushing(SelectivePushingPending):
        name = "sp-test"

    try:
        balancers = build(SkyWalkerConfig(kind="skywalker", pushing="sp-test"), stack)
        assert all(isinstance(b.pushing_policy, TestPushing) for b in balancers)
    finally:
        unregister_pushing_policy("sp-test")


def test_unknown_pushing_policy_raises_at_build(stack):
    with pytest.raises(ValueError, match="unknown pushing policy"):
        build(SkyWalkerConfig(kind="skywalker", pushing="magic"), stack)


def test_typed_spec_constraint_through_build_system(stack):
    balancers = build(SkyWalkerConfig(kind="skywalker", constraint="continent"), stack)
    assert all(isinstance(b.constraint, SameContinentConstraint) for b in balancers)


def test_unknown_kind_raises_from_build_system(stack):
    broken = dataclasses.replace(SystemSpec(), kind="quantum-balancer")
    with pytest.raises(ValueError, match="unknown system kind"):
        build(broken, stack)


# ----------------------------------------------------------------------
# registering a new system through the public API
# ----------------------------------------------------------------------
def test_register_system_round_trip(stack):
    calls = []

    @register_system("unit-test-system", config=SystemSpec)
    def _build(spec, ctx):
        calls.append((spec, ctx))
        return []

    try:
        assert "unit-test-system" in registered_system_kinds()
        # REGISTRY.spec accepts the new kind immediately.
        assert build(REGISTRY.spec("unit-test-system"), stack) == []
        spec, ctx = calls[0]
        assert spec.kind == "unit-test-system"
        assert isinstance(ctx, BuildContext)
        # Double registration is rejected unless explicitly replaced.
        with pytest.raises(ValueError, match="already registered"):
            register_system("unit-test-system")(lambda spec, ctx: [])
    finally:
        REGISTRY.unregister("unit-test-system")
    assert "unit-test-system" not in registered_system_kinds()


def test_build_context_regions_union_clients_and_replicas(stack):
    env, network, deployment, frontend = stack
    ctx = BuildContext(
        env=env, network=network, deployment=deployment, frontend=frontend,
        client_regions=("mars",),
    )
    assert ctx.regions == ["asia", "eu", "mars", "us"]


# ----------------------------------------------------------------------
# hash-key precedence
# ----------------------------------------------------------------------
def test_typed_spec_hash_key_overrides_workload():
    workload = build_arena_workload(scale=0.02)
    assert workload.hash_key == "user"
    config = ExperimentConfig(
        system=SkyWalkerConfig(kind="skywalker-ch", hash_key="session"),
        cluster=ClusterConfig(replicas_per_region={"us": 1}, profile=TINY_TEST_PROFILE),
        duration_s=5.0,
    )
    result = run_experiment(config, workload)
    balancer = result.balancers[0]
    probe = workload.programs_by_region["us"][0].stages[0][0]
    assert balancer.hash_key_fn(probe) == probe.session_id


# ----------------------------------------------------------------------
# run_sweep
# ----------------------------------------------------------------------
def test_run_sweep_reuses_one_workload_across_variants():
    workload = build_arena_workload(scale=0.03)
    total_before = workload.total_requests
    sweep = run_sweep(
        [REGISTRY.spec("round-robin"), REGISTRY.spec("least-load")],
        [workload],
        cluster=ClusterConfig(
            replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
        ),
        duration_s=20.0,
        seed=1,
    )
    # The original workload was never mutated by either run.
    assert workload.total_requests == total_before
    for program in workload.programs_by_region["us"]:
        for request in program.all_requests():
            assert request.sent_time is None
            assert request.replica_name is None
    assert sweep.systems(workload.name) == ["round-robin", "least-load"]
    for system in ("round-robin", "least-load"):
        assert sweep.get(workload.name, system).num_completed > 0


def test_run_sweep_rejects_colliding_display_names():
    workload = build_arena_workload(scale=0.02)
    variants = [
        SkyWalkerConfig(kind="skywalker", pushing="SP-P"),
        SkyWalkerConfig(kind="skywalker", pushing="BP"),
    ]
    with pytest.raises(ValueError, match="label"):
        run_sweep(variants, [workload])
    # Labelled variants are accepted (no overwrite possible).
    labelled = [
        SkyWalkerConfig(kind="skywalker", pushing="SP-P", label="sp-p"),
        SkyWalkerConfig(kind="skywalker", pushing="BP", label="bp"),
    ]
    sweep = run_sweep(
        labelled,
        [workload],
        cluster=ClusterConfig(replicas_per_region={"us": 1}, profile=TINY_TEST_PROFILE),
        duration_s=10.0,
    )
    assert sweep.systems(workload.name) == ["sp-p", "bp"]


def test_fresh_copy_preserves_structure_with_pristine_requests():
    workload = build_arena_workload(scale=0.02)
    copy = workload.fresh_copy()
    assert copy.total_programs == workload.total_programs
    assert copy.total_requests == workload.total_requests
    assert copy.hash_key == workload.hash_key
    original = next(iter(workload.programs_by_region.values()))[0]
    cloned = next(iter(copy.programs_by_region.values()))[0]
    assert cloned is not original
    assert cloned.program_id == original.program_id
    first_original = original.stages[0][0]
    first_cloned = cloned.stages[0][0]
    assert first_cloned is not first_original
    assert first_cloned.prompt_tokens == first_original.prompt_tokens
    assert first_cloned.output_len == first_original.output_len


# ----------------------------------------------------------------------
# skywalker-hybrid end to end
# ----------------------------------------------------------------------
def test_skywalker_hybrid_completes_requests_end_to_end():
    workload = build_arena_workload(scale=0.03)
    config = ExperimentConfig(
        system=REGISTRY.spec("skywalker-hybrid", hash_key=workload.hash_key),
        cluster=ClusterConfig(
            replicas_per_region={"us": 1, "eu": 1, "asia": 1}, profile=TINY_TEST_PROFILE
        ),
        duration_s=30.0,
        seed=1,
    )
    result = run_experiment(config, workload)
    assert result.metrics.num_completed > 0
    assert result.metrics.throughput_tokens_per_s > 0
    for balancer in result.balancers:
        assert balancer.routing == "hybrid"
        assert type(balancer).__name__ == "SkyWalkerBalancer"
