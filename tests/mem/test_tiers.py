"""Unit tests for the tiered KV store, transfer model and policies."""

import pickle

import pytest

from repro.mem import (
    AdmissionPolicy,
    MemoryConfig,
    OffloadPolicy,
    TieredKVStore,
    TierSpec,
    TierStore,
    TransferModel,
    make_admission_policy,
    make_offload_policy,
    register_admission_policy,
    register_offload_policy,
    registered_admission_policies,
    registered_offload_policies,
    unregister_admission_policy,
    unregister_offload_policy,
)

HOST = TransferModel(latency_s=100e-6, bandwidth_bytes_per_s=1e9, bytes_per_token=100)
DISK = TransferModel(latency_s=2e-3, bandwidth_bytes_per_s=1e8, bytes_per_token=100)


def make_store(host_tokens=64, disk_tokens=256, offload="lru-demote", page_size=1):
    return TieredKVStore(
        [
            TierSpec("host", host_tokens, HOST),
            TierSpec("disk", disk_tokens, DISK),
        ],
        offload_policy=make_offload_policy(offload),
        admission_policy=make_admission_policy("admit-all"),
        page_size=page_size,
    )


def seq(start, n):
    return tuple(range(start, start + n))


# ----------------------------------------------------------------------
# transfer model
# ----------------------------------------------------------------------
def test_transfer_delay_is_latency_plus_bytes_over_bandwidth():
    model = TransferModel(latency_s=1e-3, bandwidth_bytes_per_s=1e6, bytes_per_token=10)
    assert model.bytes_for(100) == 1000
    assert model.delay_s(100) == pytest.approx(1e-3 + 1000 / 1e6)


def test_transfer_model_validation():
    with pytest.raises(ValueError):
        TransferModel(latency_s=-1.0, bandwidth_bytes_per_s=1.0, bytes_per_token=1)
    with pytest.raises(ValueError):
        TransferModel(latency_s=0.0, bandwidth_bytes_per_s=0.0, bytes_per_token=1)


# ----------------------------------------------------------------------
# TierStore: dedup, eviction, matching
# ----------------------------------------------------------------------
def test_put_dedups_covered_segment():
    store = TierStore(TierSpec("host", 64, HOST), page_size=1)
    long_seg, _ = store.put(seq(0, 32), hits=1, now=0.0)
    assert long_seg is not None
    short_seg, evicted = store.put(seq(0, 16), hits=5, now=1.0)
    assert short_seg is None and evicted == []
    assert store.num_segments == 1
    # Recency and heat were merged into the covering segment.
    assert long_seg.last_access == 1.0
    assert long_seg.hits == 5
    store.check_invariants()


def test_put_replaces_extended_segment():
    store = TierStore(TierSpec("host", 64, HOST), page_size=1)
    store.put(seq(0, 16), hits=3, now=0.0, pinned=True)
    longer, _ = store.put(seq(0, 32), hits=1, now=1.0)
    assert store.num_segments == 1
    assert longer.num_tokens == 32
    # Pin and heat survive the replacement.
    assert longer.pinned and longer.hits == 3
    store.check_invariants()


def test_put_evicts_lru_first():
    store = TierStore(TierSpec("host", 32, HOST), page_size=1)
    store.put(seq(0, 16), hits=0, now=0.0)
    store.put(seq(100, 16), hits=0, now=1.0)
    stored, evicted = store.put(seq(200, 16), hits=0, now=2.0)
    assert stored is not None
    assert [v.tokens for v in evicted] == [seq(0, 16)]
    store.check_invariants()


def test_pinned_segments_evicted_last():
    store = TierStore(TierSpec("host", 32, HOST), page_size=1)
    store.put(seq(0, 16), hits=9, now=0.0, pinned=True)
    store.put(seq(100, 16), hits=0, now=1.0)
    _, evicted = store.put(seq(200, 16), hits=0, now=2.0, pinned=True)
    # The unpinned segment is the victim even though the pinned one is older.
    assert [v.tokens for v in evicted] == [seq(100, 16)]
    _, evicted = store.put(seq(300, 16), hits=0, now=3.0)
    # Only pinned segments remain: the oldest pinned one must still yield
    # (a fully pinned tier cannot deadlock).
    assert len(evicted) == 1 and evicted[0].tokens == seq(0, 16)
    store.check_invariants()


def test_oversized_segment_is_refused():
    store = TierStore(TierSpec("host", 32, HOST), page_size=1)
    stored, evicted = store.put(seq(0, 33), hits=0, now=0.0)
    assert stored is None and evicted == []
    store.check_invariants()


def test_match_longest_common_prefix():
    store = TierStore(TierSpec("host", 128, HOST), page_size=1)
    store.put(seq(0, 32), hits=0, now=0.0)
    store.put(seq(0, 12) + seq(100, 20), hits=0, now=0.0)
    matched, segment = store.match(seq(0, 40))
    assert matched == 32
    assert segment.tokens == seq(0, 32)
    # A prompt diverging past the bucket key partially matches.
    matched, _ = store.match(seq(0, 12) + seq(500, 8))
    assert matched == 12
    # Divergence inside the bucket key itself finds nothing: the bucketed
    # index is an approximation tuned for verbatim-resent prefixes.
    matched, segment = store.match((0, 1, 2, 3) + seq(500, 4))
    assert matched == 0 and segment is None


def test_match_short_prompt_across_buckets():
    store = TierStore(TierSpec("host", 64, HOST), page_size=1)
    store.put(seq(0, 32), hits=0, now=0.0)
    matched, segment = store.match(seq(0, 4))  # shorter than the bucket key
    assert matched == 4
    assert segment is not None


# ----------------------------------------------------------------------
# TieredKVStore: demote / lookup / promote and the transfer engine
# ----------------------------------------------------------------------
def test_demote_lands_in_first_lower_tier():
    store = make_store()
    store.demote(seq(0, 16), hits=1, last_access=0.0, now=1.0)
    assert store.stores["host"].used_tokens == 16
    assert store.demoted_tokens == 16
    assert store.demotion_bytes == 16 * 100
    # Demotion is asynchronous: the engine is busy, nothing stalled.
    assert store.engine_free_at == pytest.approx(1.0 + HOST.delay_s(16))
    assert store.transfer_stall_s == 0.0


def test_demotion_cascades_to_disk():
    store = make_store(host_tokens=32)
    store.demote(seq(0, 32), hits=0, last_access=0.0, now=0.0)
    store.demote(seq(100, 32), hits=0, last_access=1.0, now=1.0)
    # The second demotion displaces the first host segment down to disk.
    assert store.stores["host"].used_tokens == 32
    assert store.stores["disk"].used_tokens == 32
    assert store.demoted_tokens == 96  # 32 + 32 into host, 32 into disk


def test_never_offload_drops_everything():
    store = make_store(offload="never-offload")
    store.demote(seq(0, 16), hits=0, last_access=0.0, now=0.0)
    assert store.dropped_tokens == 16
    assert store.stores["host"].used_tokens == 0


def test_lookup_and_promote_charge_stall_and_remove_segment():
    store = make_store()
    store.demote(seq(0, 32), hits=0, last_access=0.0, now=0.0)
    found = store.lookup(seq(0, 40), hbm_matched=8)
    assert found is not None
    tier, matched, _ = found
    assert tier == "host" and matched == 32
    engine_busy_until = store.engine_free_at
    promoted, stall = store.promote(found, hbm_matched=8, now=engine_busy_until)
    # Only the 24 tokens beyond the HBM match cross the boundary.
    assert promoted == 24
    assert stall == pytest.approx(HOST.delay_s(24))
    assert store.stores["host"].used_tokens == 0
    assert store.tier_hit_tokens["host"] == 24
    assert store.promotion_bytes == 24 * 100


def test_promote_waits_for_busy_engine():
    store = make_store()
    store.demote(seq(0, 16), hits=0, last_access=0.0, now=0.0)  # engine busy
    queue_delay = store.engine_free_at
    found = store.lookup(seq(0, 16), hbm_matched=0)
    promoted, stall = store.promote(found, hbm_matched=0, now=0.0)
    assert promoted == 16
    assert stall == pytest.approx(queue_delay + HOST.delay_s(16))


def test_lookup_returns_none_when_hbm_already_covers():
    store = make_store()
    store.demote(seq(0, 16), hits=0, last_access=0.0, now=0.0)
    assert store.lookup(seq(0, 16), hbm_matched=16) is None


def test_export_restore_round_trip():
    store = make_store()
    store.demote(seq(0, 16), hits=2, last_access=0.0, now=0.0, from_tier="hbm")
    snapshot = store.export_tier("host")
    fresh = make_store()
    fresh.restore_tier("host", snapshot, now=5.0)
    assert fresh.stores["host"].used_tokens == 16
    matched, segment = fresh.stores["host"].match(seq(0, 16))
    assert matched == 16 and segment.hits == 2


def test_zero_capacity_tiers_are_skipped():
    store = TieredKVStore(
        [TierSpec("host", 0, HOST), TierSpec("disk", 64, DISK)],
        offload_policy=make_offload_policy("lru-demote"),
        admission_policy=make_admission_policy("admit-all"),
    )
    assert store.order == ("disk",)
    store.demote(seq(0, 16), hits=0, last_access=0.0, now=0.0)
    assert store.stores["disk"].used_tokens == 16


# ----------------------------------------------------------------------
# policies and their registries
# ----------------------------------------------------------------------
def test_builtin_policies_are_registered():
    assert {"never-offload", "lru-demote", "pin-hot-prefixes"} <= set(
        registered_offload_policies()
    )
    assert {"admit-all", "size-cap"} <= set(registered_admission_policies())


def test_never_offload_is_inert():
    assert make_offload_policy("never-offload").inert
    assert not make_offload_policy("lru-demote").inert


def test_pin_hot_prefixes_routes_by_heat():
    policy = make_offload_policy("pin-hot-prefixes", hot_hits=3)
    from repro.mem import SegmentMeta

    hot = SegmentMeta(num_tokens=16, hits=3, last_access=0.0)
    cold = SegmentMeta(num_tokens=16, hits=0, last_access=0.0)
    lower = ("host", "disk")
    assert policy.demote_target(hot, "hbm", lower) == "host"
    assert policy.pin(hot, "host")
    assert policy.demote_target(cold, "hbm", lower) == "disk"
    assert not policy.pin(cold, "disk")


def test_size_cap_admission():
    from repro.mem import SegmentMeta

    policy = make_admission_policy("size-cap", max_tokens=10)
    assert policy.admit(SegmentMeta(10, 0, 0.0), "host")
    assert not policy.admit(SegmentMeta(11, 0, 0.0), "host")


def test_invalid_offload_target_raises():
    class Rogue(OffloadPolicy):
        name = "rogue"

        def demote_target(self, meta, from_tier, lower_tiers):
            return "hbm"  # never a valid destination

    store = TieredKVStore(
        [TierSpec("host", 64, HOST)],
        offload_policy=Rogue(),
        admission_policy=make_admission_policy("admit-all"),
    )
    with pytest.raises(ValueError, match="routed"):
        store.demote(seq(0, 8), hits=0, last_access=0.0, now=0.0)


def test_third_party_policy_registration_round_trip():
    @register_offload_policy("unit-test-offload")
    class TestPolicy(OffloadPolicy):
        name = "unit-test-offload"

        def demote_target(self, meta, from_tier, lower_tiers):
            return None

    try:
        assert "unit-test-offload" in registered_offload_policies()
        assert isinstance(make_offload_policy("unit-test-offload"), TestPolicy)
        with pytest.raises(ValueError, match="already registered"):
            register_offload_policy("unit-test-offload")(TestPolicy)
    finally:
        unregister_offload_policy("unit-test-offload")
    assert "unit-test-offload" not in registered_offload_policies()

    @register_admission_policy("unit-test-admission")
    class TestAdmission(AdmissionPolicy):
        name = "unit-test-admission"

        def admit(self, meta, tier):
            return False

    try:
        assert not make_admission_policy("unit-test-admission").admit(None, "host")
    finally:
        unregister_admission_policy("unit-test-admission")


# ----------------------------------------------------------------------
# MemoryConfig
# ----------------------------------------------------------------------
def test_memory_config_defaults_are_legacy():
    config = MemoryConfig()
    assert not config.tiering_enabled
    assert not config.push_enabled
    assert not config.telemetry_enabled
    assert config.build_store(128) is None
    assert config.hbm_capacity_tokens(1000) == 1000


def test_memory_config_hbm_fraction_and_page_rounding():
    config = MemoryConfig(page_size=16, hbm_fraction=0.5)
    assert config.hbm_capacity_tokens(1000) == 496  # 500 rounded down to pages
    assert config.telemetry_enabled


def test_memory_config_builds_tiered_store():
    config = MemoryConfig(host_capacity_tokens=1024, offload="lru-demote")
    store = config.build_store(bytes_per_token=128)
    assert store is not None
    assert store.order == ("host",)
    assert store.stores["host"].spec.transfer.bytes_per_token == 128


def test_memory_config_is_picklable():
    config = MemoryConfig(
        page_size=16,
        host_capacity_tokens=4096,
        disk_capacity_tokens=65536,
        offload="pin-hot-prefixes",
        offload_args=(("hot_hits", 3),),
    )
    clone = pickle.loads(pickle.dumps(config))
    assert clone == config
    store = clone.build_store(64)
    assert store.offload_policy.hot_hits == 3


def test_memory_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(page_size=0)
    with pytest.raises(ValueError):
        MemoryConfig(hbm_fraction=0.0)
    with pytest.raises(ValueError):
        MemoryConfig(hbm_fraction=1.5)
    with pytest.raises(ValueError):
        MemoryConfig(host_capacity_tokens=-1)
