"""End-to-end guarantees of the tiered memory subsystem.

Three things are on the line here:

* **Bit-identity when off.**  The default config (and the inert
  ``never-offload`` policy) must leave the legacy flat-KV simulation
  untouched -- same eviction victims, same grants, same ``to_dict()``.
* **Determinism when on.**  A tiered sweep run across worker processes is
  bit-identical to the serial loop, including under a forced ``spawn``
  start method where the worker bootstrap must re-import plugin modules.
* **Telemetry gating.**  ``RunMetrics.memory`` appears exactly when the
  config says tiering is observable, and never perturbs legacy payloads.
"""

import multiprocessing
import random

import pytest

pytestmark = pytest.mark.strict_invariants

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    SweepExecutor,
    build_arena_workload,
    run_experiment,
    run_sweep,
)
from repro.experiments.sweep import plugin_modules
from repro.mem import LruDemote, MemoryConfig, register_offload_policy
from repro.replica import TINY_TEST_PROFILE
from repro.replica.memory import KVMemoryManager

TIERED = MemoryConfig(
    page_size=16,
    hbm_fraction=0.5,
    host_capacity_tokens=4096,
    disk_capacity_tokens=16384,
    offload="lru-demote",
)


# Registered at import time: the forced-spawn test below resolves this by
# name inside worker processes, which only works because the sweep bootstrap
# re-imports this module (harvested from the factory's ``__module__``).
@register_offload_policy("mem-test-demote", replace_existing=True)
class _SpawnVisibleDemote(LruDemote):
    name = "mem-test-demote"


def tiny_cluster(memory=None):
    return ClusterConfig(
        replicas_per_region={"us": 1, "eu": 1},
        profile=TINY_TEST_PROFILE,
        memory=memory,
    )


def run_tiny(memory, seed=1, duration=30.0):
    workload = build_arena_workload(scale=0.03, seed=7)
    config = ExperimentConfig(
        system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
        cluster=tiny_cluster(memory),
        duration_s=duration,
        seed=seed,
    )
    return run_experiment(config, workload)


# ----------------------------------------------------------------------
# golden-grid victim identity: never-offload == legacy, admit by admit
# ----------------------------------------------------------------------
def _drive(manager: KVMemoryManager):
    """Replay a fixed admit/release schedule, logging every observable."""
    rng = random.Random(0)
    trace = []
    now = 0.0
    running = []
    for request_id in range(80):
        shared = [rng.randrange(4)] * 8
        prompt = shared + [rng.randrange(32) for _ in range(rng.randrange(8, 400))]
        now += 0.25
        grant = manager.admit(request_id, prompt, now)
        if grant is None:
            trace.append(("reject", request_id))
        else:
            running.append(request_id)
            trace.append(
                (
                    "admit",
                    request_id,
                    grant.cached_tokens,
                    grant.new_prompt_tokens,
                    grant.promoted_tokens,
                    grant.promotion_stall_s,
                )
            )
        if len(running) >= 3:
            victim = running.pop(0)
            manager.release(victim, now)
        trace.append(("state", manager.cache.total_tokens, manager.used_tokens))
    manager.check_invariants()
    return trace


def test_never_offload_preserves_legacy_eviction_victims():
    legacy = KVMemoryManager(TINY_TEST_PROFILE)
    tiered = KVMemoryManager(
        TINY_TEST_PROFILE,
        memory=MemoryConfig(host_capacity_tokens=4096, offload="never-offload"),
    )
    # The inert policy means the demotion hook is never installed...
    assert tiered.cache.on_evict is None
    assert tiered.tiers is not None and tiered.tiers.offload_policy.inert
    # ...so the exact same victims are chosen and every grant is identical.
    assert _drive(tiered) == _drive(legacy)
    assert tiered.tiers.demoted_tokens == 0
    assert sum(tiered.tiers.tier_hit_tokens.values()) == 0


def test_lru_demote_catches_what_legacy_drops():
    legacy = KVMemoryManager(TINY_TEST_PROFILE)
    tiered = KVMemoryManager(TINY_TEST_PROFILE, memory=TIERED)
    _drive(legacy)
    _drive(tiered)
    # Pressure evictions routed into the host tier instead of vanishing.
    assert tiered.tiers.demoted_tokens > 0
    assert tiered.tiers.stores["host"].inserted_tokens > 0


# ----------------------------------------------------------------------
# run-level bit-identity and telemetry gating
# ----------------------------------------------------------------------
def test_default_memory_config_is_bit_identical_to_none():
    baseline = run_tiny(None).metrics.to_dict()
    explicit = run_tiny(MemoryConfig()).metrics.to_dict()
    assert "memory" not in baseline
    assert explicit == baseline


def test_never_offload_run_matches_legacy_outside_telemetry():
    baseline = run_tiny(None).metrics.to_dict()
    tiered = run_tiny(
        MemoryConfig(host_capacity_tokens=4096, offload="never-offload")
    ).metrics.to_dict()
    # The only delta an inert tier may introduce is its own telemetry.
    memory = tiered.pop("memory")
    assert tiered == baseline
    assert memory["demoted_tokens"] == 0
    assert memory["promoted_tokens"] == 0


def test_tiered_run_reports_memory_metrics():
    metrics = run_tiny(TIERED, duration=40.0).metrics
    assert metrics.memory is not None
    payload = metrics.to_dict()["memory"]
    assert payload["demoted_tokens"] > 0
    assert payload["hbm_page_occupancy"] > 0
    assert [tier["name"] for tier in payload["tiers"]] == ["host", "disk"]


# ----------------------------------------------------------------------
# sweep determinism: serial == workers, fork or spawn
# ----------------------------------------------------------------------
def _tiered_sweep(executor: SweepExecutor):
    workload = build_arena_workload(scale=0.03, seed=7)
    return executor.run(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("consistent-hash")],
        [workload],
        cluster=tiny_cluster(TIERED),
        duration_s=25.0,
        seed=1,
    )


def _payloads(result):
    return {
        (workload, system): result.get(workload, system).to_dict()
        for workload in result.workloads()
        for system in result.systems(workload)
    }


def test_tiered_sweep_parallel_is_bit_identical_to_serial():
    serial = _tiered_sweep(SweepExecutor(workers=1))
    parallel = _tiered_sweep(SweepExecutor(workers=2))
    assert _payloads(parallel) == _payloads(serial)
    sample = next(iter(_payloads(serial).values()))
    assert sample["memory"]["demoted_tokens"] > 0


def test_plugin_modules_cover_runtime_registrations():
    modules = plugin_modules()
    assert __name__ in modules  # mem-test-demote registered above
    assert any("repro.mem" in module for module in modules)
    assert any("repro.faults" in module for module in modules)
    assert "__main__" not in modules


def test_forced_spawn_workers_bootstrap_plugin_registrations():
    # Under spawn, workers start with a clean interpreter: the custom
    # "mem-test-demote" policy only resolves because the pool initializer
    # re-imports this test module before any task runs.
    memory = MemoryConfig(
        page_size=16,
        hbm_fraction=0.5,
        host_capacity_tokens=4096,
        offload="mem-test-demote",
    )
    workload = build_arena_workload(scale=0.03, seed=7)
    kwargs = dict(cluster=tiny_cluster(memory), duration_s=20.0, seed=1)
    systems = [REGISTRY.spec("skywalker"), REGISTRY.spec("round-robin")]
    serial = SweepExecutor(workers=1).run(systems, [workload], **kwargs)
    spawned = SweepExecutor(
        workers=2, mp_context=multiprocessing.get_context("spawn")
    ).run(systems, [workload], **kwargs)
    assert _payloads(spawned) == _payloads(serial)


# ----------------------------------------------------------------------
# crash/recover composition with durable tiers
# ----------------------------------------------------------------------
def _crashed_server(preserve_disk: bool):
    from repro.replica import ReplicaServer
    from repro.sim import Environment

    env = Environment()
    server = ReplicaServer(
        env,
        "us/replica-0",
        "us",
        profile=TINY_TEST_PROFILE,
        memory=MemoryConfig(disk_capacity_tokens=16384, offload="lru-demote"),
    )
    tiers = server.batcher.memory.tiers
    tiers.demote(tuple(range(64)), hits=1, last_access=0.0, now=0.0)
    assert tiers.stores["disk"].inserted_tokens == 64
    server.fail()
    server.recover(preserve_disk=preserve_disk)
    return server.batcher.memory.tiers


def test_recover_drops_disk_tier_by_default():
    tiers = _crashed_server(preserve_disk=False)
    assert tiers.export_tier("disk") == []


def test_recover_can_reattach_disk_tier():
    tiers = _crashed_server(preserve_disk=True)
    exported = tiers.export_tier("disk")
    assert len(exported) == 1
    # The durable segment is servable after recovery.
    found = tiers.lookup(tuple(range(64)), 0)
    assert found is not None
    promoted, stall = tiers.promote(found, 0, now=1.0)
    assert promoted == 64
    assert stall > 0
