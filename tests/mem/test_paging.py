"""Edge-case tests for the page-aligned KV allocator."""

import pytest

from repro.mem import PageAllocator, round_to_pages


# ----------------------------------------------------------------------
# capacity rounding (sglang's max_total_num_tokens // page_size * page_size)
# ----------------------------------------------------------------------
def test_capacity_rounds_down_to_whole_pages():
    assert round_to_pages(103, 16) == 96
    assert round_to_pages(96, 16) == 96
    assert round_to_pages(15, 16) == 0
    assert round_to_pages(103, 1) == 103


def test_round_to_pages_rejects_bad_page_size():
    with pytest.raises(ValueError):
        round_to_pages(100, 0)
    with pytest.raises(ValueError):
        round_to_pages(100, -4)


def test_allocator_capacity_is_page_rounded():
    alloc = PageAllocator(103, page_size=16)
    assert alloc.capacity_tokens == 96
    assert alloc.num_pages == 6
    assert alloc.free_pages == 6


# ----------------------------------------------------------------------
# page_size=1 is exactly the legacy token-granular accounting
# ----------------------------------------------------------------------
def test_page_size_one_matches_token_accounting():
    alloc = PageAllocator(100, page_size=1)
    blocks = [alloc.alloc(n) for n in (7, 13, 30)]
    assert alloc.used_tokens == 50
    assert alloc.used_pages == 50
    assert alloc.slack_tokens == 0  # no internal fragmentation ever
    assert alloc.free_tokens == 50
    alloc.free(blocks[1])
    assert alloc.used_tokens == 37
    assert alloc.slack_tokens == 0
    alloc.check_invariants()


def test_page_size_one_never_rejects_what_token_count_allows():
    alloc = PageAllocator(10, page_size=1)
    alloc.alloc(9)
    assert alloc.can_alloc(1)
    assert not alloc.can_alloc(2)


# ----------------------------------------------------------------------
# internal fragmentation with page_size > 1
# ----------------------------------------------------------------------
def test_partial_pages_create_slack():
    alloc = PageAllocator(64, page_size=16)
    block = alloc.alloc(17)  # 2 pages, 15 tokens of slack
    assert block.num_pages == 2
    assert alloc.used_tokens == 17
    assert alloc.used_pages == 2
    assert alloc.slack_tokens == 15
    alloc.check_invariants()


def test_fragmentation_can_reject_token_feasible_alloc():
    # 4 pages of 16: three 17-token blocks hold 51 tokens on 2 pages each
    # -- token-wise 13 more fit, page-wise nothing does.
    alloc = PageAllocator(96, page_size=16)
    for _ in range(3):
        alloc.alloc(17)
    assert alloc.free_tokens + alloc.slack_tokens >= 13
    assert not alloc.can_alloc(13)
    with pytest.raises(MemoryError):
        alloc.alloc(13)


def test_interleaved_alloc_free_reuses_pages_lifo():
    alloc = PageAllocator(64, page_size=16)
    a = alloc.alloc(16)
    b = alloc.alloc(16)
    alloc.free(a)
    c = alloc.alloc(16)
    # The freed block's page comes back first (LIFO free list).
    assert c.pages == a.pages
    assert b.pages != c.pages
    alloc.check_invariants()


def test_free_all_then_refill_to_capacity():
    alloc = PageAllocator(128, page_size=16)
    blocks = [alloc.alloc(16) for _ in range(8)]
    assert alloc.free_pages == 0
    for block in blocks:
        alloc.free(block)
    assert alloc.used_tokens == 0
    assert alloc.free_pages == 8
    refilled = [alloc.alloc(32) for _ in range(4)]
    assert alloc.free_pages == 0
    assert {page for blk in refilled for page in blk.pages} == {
        page for blk in blocks for page in blk.pages
    }
    alloc.check_invariants()


# ----------------------------------------------------------------------
# error paths and byte accounting
# ----------------------------------------------------------------------
def test_double_free_raises():
    alloc = PageAllocator(32, page_size=16)
    block = alloc.alloc(16)
    alloc.free(block)
    with pytest.raises(KeyError):
        alloc.free(block)


def test_zero_or_negative_alloc_rejected():
    alloc = PageAllocator(32, page_size=16)
    with pytest.raises(ValueError):
        alloc.alloc(0)
    with pytest.raises(ValueError):
        alloc.alloc(-1)


def test_bytes_accounting_follows_used_tokens():
    alloc = PageAllocator(64, page_size=16, bytes_per_token=128)
    alloc.alloc(20)
    assert alloc.used_bytes == 20 * 128
    assert alloc.bytes_for(10) == 1280


def test_page_occupancy():
    alloc = PageAllocator(64, page_size=16)
    assert alloc.page_occupancy == 0.0
    alloc.alloc(32)
    assert alloc.page_occupancy == pytest.approx(0.5)
