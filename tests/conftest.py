"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer
from repro.sim import Environment
from repro.workloads.request import Request

_token_counter = itertools.count(1_000_000)


def make_request(
    prompt_len: int = 32,
    output_len: int = 4,
    *,
    user_id: str = "user-0",
    session_id: str = "session-0",
    region: str = "us",
    prefix=(),
    sent_time: float = 0.0,
) -> Request:
    """A request with a fresh (non-shared) prompt of ``prompt_len`` tokens,
    optionally prefixed by an explicit shared ``prefix``."""
    fresh = tuple(next(_token_counter) for _ in range(max(0, prompt_len - len(prefix))))
    request = Request(
        prompt_tokens=tuple(prefix) + fresh,
        output_len=output_len,
        user_id=user_id,
        session_id=session_id,
        region=region,
    )
    request.sent_time = sent_time
    request.lb_arrival_time = sent_time
    return request


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def topology():
    return default_topology()


@pytest.fixture
def network(env, topology) -> Network:
    return Network(env, topology, jitter_fraction=0.0, seed=0)


@pytest.fixture
def tiny_replica(env) -> ReplicaServer:
    return ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)


@pytest.fixture
def make_tiny_replica(env):
    counter = itertools.count()

    def factory(region: str = "us", **kwargs) -> ReplicaServer:
        index = next(counter)
        return ReplicaServer(env, f"{region}/replica-{index}", region, TINY_TEST_PROFILE, **kwargs)

    return factory
