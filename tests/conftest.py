"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import os

import pytest

from repro.network import Network, default_topology
from repro.replica import TINY_TEST_PROFILE, ReplicaServer
from repro.sim import Environment
from repro.workloads.request import Request

_token_counter = itertools.count(1_000_000)


def make_request(
    prompt_len: int = 32,
    output_len: int = 4,
    *,
    user_id: str = "user-0",
    session_id: str = "session-0",
    region: str = "us",
    prefix=(),
    sent_time: float = 0.0,
) -> Request:
    """A request with a fresh (non-shared) prompt of ``prompt_len`` tokens,
    optionally prefixed by an explicit shared ``prefix``."""
    fresh = tuple(next(_token_counter) for _ in range(max(0, prompt_len - len(prefix))))
    request = Request(
        prompt_tokens=tuple(prefix) + fresh,
        output_len=output_len,
        user_id=user_id,
        session_id=session_id,
        region=region,
    )
    request.sent_time = sent_time
    request.lb_arrival_time = sent_time
    return request


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def topology():
    return default_topology()


@pytest.fixture
def network(env, topology) -> Network:
    return Network(env, topology, jitter_fraction=0.0, seed=0)


@pytest.fixture
def tiny_replica(env) -> ReplicaServer:
    return ReplicaServer(env, "us/replica-0", "us", TINY_TEST_PROFILE)


# ----------------------------------------------------------------------
# strict-invariants mode
# ----------------------------------------------------------------------
# REPRO_STRICT_INVARIANTS=1 runs every structure's check_invariants() after
# each mutation that can corrupt accounting (RadixCache evictions, trie
# capacity enforcement, page alloc/free).  Unset, the checks run only for
# tests marked @pytest.mark.strict_invariants (the small golden-grid
# tests); "0" force-disables everywhere.  CI tier-1 sets the flag to "1".


def _strict_invariants_enabled(request) -> bool:
    flag = os.environ.get("REPRO_STRICT_INVARIANTS", "")
    if flag == "0":
        return False
    if flag:
        return True
    return request.node.get_closest_marker("strict_invariants") is not None


@pytest.fixture(autouse=True)
def strict_invariants(request, monkeypatch):
    """Invariant drift checks after every eviction / page transition."""
    if not _strict_invariants_enabled(request):
        yield False
        return

    from repro.core.prefix_tree import PrefixTree
    from repro.mem.paging import PageAllocator
    from repro.replica.kv_cache import RadixCache

    radix_evict = RadixCache.evict
    trie_enforce = PrefixTree._enforce_capacity
    page_alloc = PageAllocator.alloc
    page_free = PageAllocator.free

    def checked_evict(self, num_tokens, now=0.0):
        evicted = radix_evict(self, num_tokens, now)
        if evicted > 0:
            self.check_invariants()
        return evicted

    def checked_enforce(self):
        before = self._total_tokens
        trie_enforce(self)
        if self._total_tokens != before:
            self.check_invariants()

    def checked_alloc(self, tokens):
        block = page_alloc(self, tokens)
        self.check_invariants()
        return block

    def checked_free(self, block):
        page_free(self, block)
        self.check_invariants()

    monkeypatch.setattr(RadixCache, "evict", checked_evict)
    monkeypatch.setattr(PrefixTree, "_enforce_capacity", checked_enforce)
    monkeypatch.setattr(PageAllocator, "alloc", checked_alloc)
    monkeypatch.setattr(PageAllocator, "free", checked_free)
    yield True


@pytest.fixture
def make_tiny_replica(env):
    counter = itertools.count()

    def factory(region: str = "us", **kwargs) -> ReplicaServer:
        index = next(counter)
        return ReplicaServer(env, f"{region}/replica-{index}", region, TINY_TEST_PROFILE, **kwargs)

    return factory
