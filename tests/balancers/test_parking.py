"""The no-healthy-replica path: requests park FIFO and drain on recovery.

Before the unified ``BalancerBase`` serving loop, a balancer that found no
healthy replica re-``put`` the request into its own inbox (reordering it
behind newer arrivals) and busy-polled every 0.1 s.  Now requests are parked
in arrival order and drained as soon as a replica reports recovery.
"""

from repro.balancers import GatewayBalancer, RoundRobinBalancer
from repro.network import Network, default_topology

from ..conftest import make_request


def _network(env):
    return Network(env, default_topology(), jitter_fraction=0.0, seed=0)


def _feed(env, net, balancer, requests, spacing=0.05):
    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            net.deliver(request, "us", balancer.region, balancer.inbox)
            yield env.timeout(spacing)

    env.process(feeder(env))


def test_requests_park_while_all_replicas_down_and_drain_fifo(env, make_tiny_replica):
    net = _network(env)
    balancer = RoundRobinBalancer(env, "rr", "us", net)
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    balancer.start()

    replica.fail()
    requests = [make_request(prompt_len=8, output_len=2, region="us") for _ in range(5)]
    _feed(env, net, balancer, requests)

    env.run(until=5.0)
    # Everything arrived while the only replica was down: the head request is
    # parked and the rest wait in the inbox, arrival order intact.
    assert balancer.dispatched_requests == 0
    assert list(balancer._parked) == requests[:1]
    assert balancer.queue_size == 5

    replica.recover()
    env.run(until=30.0)
    assert balancer.dispatched_requests == 5
    assert not balancer._parked
    assert all(r.finished for r in requests)
    # FIFO drain: dispatch order matches arrival order.
    dispatch_times = [r.lb_dispatch_time for r in requests]
    assert dispatch_times == sorted(dispatch_times)
    arrival_order = sorted(requests, key=lambda r: r.lb_arrival_time)
    assert [r.lb_dispatch_time for r in arrival_order] == dispatch_times


def test_parked_requests_drain_before_newer_inbox_arrivals(env, make_tiny_replica):
    net = _network(env)
    balancer = RoundRobinBalancer(env, "rr", "us", net)
    replica = make_tiny_replica("us")
    balancer.add_replica(replica)
    balancer.start()

    replica.fail()
    early = [make_request(prompt_len=8, output_len=2, region="us") for _ in range(3)]
    _feed(env, net, balancer, early)
    env.run(until=2.0)
    assert balancer.queue_size == 3

    # Recover, and race newer requests against the parked backlog.
    replica.recover()
    late = [make_request(prompt_len=8, output_len=2, region="us") for _ in range(2)]
    _feed(env, net, balancer, late)
    env.run(until=40.0)

    assert all(r.finished for r in early + late)
    earliest_late = min(r.lb_dispatch_time for r in late)
    # Every parked (earlier) request was dispatched before any late one.
    assert all(r.lb_dispatch_time <= earliest_late for r in early)


def test_gateway_parks_and_recovers_too(env, make_tiny_replica):
    net = _network(env)
    gateway = GatewayBalancer(env, "gw-us", "us", net)
    replicas = [make_tiny_replica("us"), make_tiny_replica("eu")]
    for replica in replicas:
        gateway.add_replica(replica)
    gateway.start()

    for replica in replicas:
        replica.fail()
    requests = [make_request(prompt_len=8, output_len=2, region="us") for _ in range(4)]
    _feed(env, net, gateway, requests)
    env.run(until=3.0)
    assert gateway.dispatched_requests == 0
    assert gateway.queue_size == 4

    replicas[1].recover()  # only the remote cluster comes back
    env.run(until=40.0)
    assert gateway.dispatched_requests == 4
    assert all(r.finished for r in requests)
    assert all(r.serving_region == "eu" for r in requests)
