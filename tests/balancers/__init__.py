"""Test package."""
