"""Unit tests for the baseline balancers' selection policies."""

import pytest

from repro.balancers import (
    ConsistentHashBalancer,
    GatewayBalancer,
    LeastLoadBalancer,
    RoundRobinBalancer,
    SGLangRouterBalancer,
)
from repro.network import Network, default_topology

from ..conftest import make_request


@pytest.fixture
def net(env):
    return Network(env, default_topology(), jitter_fraction=0.0)


def _with_replicas(balancer, make_tiny_replica, count=3, region="us"):
    replicas = [make_tiny_replica(region) for _ in range(count)]
    for replica in replicas:
        balancer.add_replica(replica)
    return replicas


# ----------------------------------------------------------------------
# Round Robin
# ----------------------------------------------------------------------
def test_round_robin_cycles_through_replicas(env, net, make_tiny_replica):
    balancer = RoundRobinBalancer(env, "rr", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica)
    chosen = [balancer.select_replica(make_request(), replicas) for _ in range(6)]
    assert chosen == replicas * 2


# ----------------------------------------------------------------------
# Least Load
# ----------------------------------------------------------------------
def test_least_load_picks_minimum_outstanding(env, net, make_tiny_replica):
    balancer = LeastLoadBalancer(env, "ll", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica)
    balancer.outstanding[replicas[0].name] = 5
    balancer.outstanding[replicas[1].name] = 1
    balancer.outstanding[replicas[2].name] = 3
    assert balancer.select_replica(make_request(), replicas) is replicas[1]


def test_least_load_counts_are_maintained_by_dispatch_and_completion(env, net, make_tiny_replica):
    balancer = LeastLoadBalancer(env, "ll", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica, count=2)
    request = make_request(region="us")
    balancer._dispatch(request, replicas[0])
    assert balancer.outstanding[replicas[0].name] == 1
    balancer._on_replica_complete(request)
    assert balancer.outstanding[replicas[0].name] == 0


# ----------------------------------------------------------------------
# Consistent Hashing
# ----------------------------------------------------------------------
def test_consistent_hash_is_sticky_per_key(env, net, make_tiny_replica):
    balancer = ConsistentHashBalancer(
        env, "ch", "us", net, hash_key_fn=lambda r: r.user_id
    )
    replicas = _with_replicas(balancer, make_tiny_replica, count=4)
    picks = {
        balancer.select_replica(make_request(user_id="alice"), replicas).name
        for _ in range(10)
    }
    assert len(picks) == 1


def test_consistent_hash_spreads_different_keys(env, net, make_tiny_replica):
    balancer = ConsistentHashBalancer(
        env, "ch", "us", net, hash_key_fn=lambda r: r.user_id
    )
    replicas = _with_replicas(balancer, make_tiny_replica, count=4)
    picks = {
        balancer.select_replica(make_request(user_id=f"user-{i}"), replicas).name
        for i in range(60)
    }
    assert len(picks) >= 3


# ----------------------------------------------------------------------
# SGLang Router
# ----------------------------------------------------------------------
def test_sglang_router_prefers_cache_affinity(env, net, make_tiny_replica):
    balancer = SGLangRouterBalancer(env, "sgl", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica, count=3)
    shared = tuple(range(50_000, 50_200))
    first = balancer.select_replica(make_request(prompt_len=220, prefix=shared), replicas)
    for _ in range(4):
        again = balancer.select_replica(make_request(prompt_len=220, prefix=shared), replicas)
        assert again is first


def test_sglang_router_falls_back_to_shortest_queue_when_imbalanced(env, net, make_tiny_replica):
    balancer = SGLangRouterBalancer(
        env, "sgl", "us", net, balance_abs_threshold=4, balance_rel_threshold=1.5
    )
    replicas = _with_replicas(balancer, make_tiny_replica, count=2)
    shared = tuple(range(60_000, 60_200))
    favourite = balancer.select_replica(make_request(prompt_len=220, prefix=shared), replicas)
    # Overload the favourite replica far beyond the imbalance thresholds.
    balancer.outstanding[favourite.name] = 50
    other = [r for r in replicas if r is not favourite][0]
    rerouted = balancer.select_replica(make_request(prompt_len=220, prefix=shared), replicas)
    assert rerouted is other


def test_sglang_router_uses_shortest_queue_without_affinity(env, net, make_tiny_replica):
    balancer = SGLangRouterBalancer(env, "sgl", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica, count=3)
    balancer.outstanding[replicas[0].name] = 9
    balancer.outstanding[replicas[1].name] = 2
    balancer.outstanding[replicas[2].name] = 5
    chosen = balancer.select_replica(make_request(prompt_len=40), replicas)
    assert chosen is replicas[1]


# ----------------------------------------------------------------------
# Gateway
# ----------------------------------------------------------------------
def test_gateway_prefers_local_cluster(env, net, make_tiny_replica):
    gateway = GatewayBalancer(env, "gw-us", "us", net, spill_threshold=4)
    for region in ("us", "eu"):
        for _ in range(2):
            gateway.add_replica(make_tiny_replica(region))
    assert gateway._pick_cluster() == "us"


def test_gateway_spills_to_least_loaded_remote_cluster(env, net, make_tiny_replica):
    gateway = GatewayBalancer(env, "gw-us", "us", net, spill_threshold=2)
    locals_ = [make_tiny_replica("us") for _ in range(2)]
    remotes = [make_tiny_replica("eu") for _ in range(2)]
    for replica in locals_ + remotes:
        gateway.add_replica(replica)
    for replica in locals_:
        gateway.outstanding[replica.name] = 10
    assert gateway._pick_cluster() == "eu"


def test_gateway_round_robins_within_a_cluster(env, net, make_tiny_replica):
    gateway = GatewayBalancer(env, "gw-us", "us", net)
    replicas = [make_tiny_replica("us") for _ in range(3)]
    for replica in replicas:
        gateway.add_replica(replica)
    picks = [gateway._pick_replica("us") for _ in range(6)]
    assert picks == replicas * 2


# ----------------------------------------------------------------------
# end-to-end sanity for the centralized base class
# ----------------------------------------------------------------------
def test_centralized_balancer_serves_requests_end_to_end(env, net, make_tiny_replica):
    balancer = RoundRobinBalancer(env, "rr", "us", net)
    replicas = _with_replicas(balancer, make_tiny_replica, count=2)
    balancer.start()
    requests = [make_request(prompt_len=20, output_len=2, region="eu") for _ in range(4)]

    def feeder(env):
        for request in requests:
            request.sent_time = env.now
            net.deliver(request, "eu", "us", balancer.inbox)
            yield env.timeout(0.2)

    env.process(feeder(env))
    env.run(until=30)
    assert all(r.finished for r in requests)
    # A centralized balancer in the US serving an EU client pays the
    # cross-region response latency.
    assert all(r.response_network_delay > 0.01 for r in requests)
    assert balancer.dispatched_requests == 4
