"""Aggregation math: mean / stdev / 95% CI against hand-computed fixtures.

The Student-t confidence intervals are the statistical backbone of every
multi-seed claim the benchmarks make, so the arithmetic is pinned against
values computed by hand (and cross-checked against standard t-tables),
not against the implementation itself.
"""

import json
import math

import pytest

from repro.metrics import (
    AGGREGATED_METRICS,
    AggregateMetrics,
    LatencySummary,
    RunMetrics,
    Statistic,
    SweepReport,
    student_t_critical,
)


# ----------------------------------------------------------------------
# Student-t critical values
# ----------------------------------------------------------------------
def test_t_table_matches_standard_values():
    assert student_t_critical(1) == pytest.approx(12.706)
    assert student_t_critical(2) == pytest.approx(4.303)
    assert student_t_critical(4) == pytest.approx(2.776)
    assert student_t_critical(30) == pytest.approx(2.042)
    assert student_t_critical(120) == pytest.approx(1.980)


def test_t_table_interpolation_is_conservative():
    # Between tabulated rows the next *lower* df applies: its critical
    # value is larger, so intervals widen rather than shrink.
    assert student_t_critical(35) == student_t_critical(30)
    assert student_t_critical(100) == student_t_critical(60)
    # Beyond the table the last row applies -- wider than the normal 1.960.
    assert student_t_critical(10_000) == pytest.approx(1.980)


def test_t_table_rejects_zero_df():
    with pytest.raises(ValueError, match="degrees of freedom"):
        student_t_critical(0)


# ----------------------------------------------------------------------
# Statistic: hand-computed fixtures
# ----------------------------------------------------------------------
def test_statistic_three_samples_hand_computed():
    # samples [1, 2, 3]: mean 2, sample stdev 1, t_{0.975,2} = 4.303
    # => ci95 = 4.303 * 1 / sqrt(3) = 2.48434...
    stat = Statistic.from_samples([1.0, 2.0, 3.0])
    assert stat.n == 3
    assert stat.mean == pytest.approx(2.0)
    assert stat.stdev == pytest.approx(1.0)
    assert stat.ci95 == pytest.approx(4.303 / math.sqrt(3.0))
    assert stat.ci_low == pytest.approx(2.0 - 4.303 / math.sqrt(3.0))
    assert stat.ci_high == pytest.approx(2.0 + 4.303 / math.sqrt(3.0))


def test_statistic_five_samples_hand_computed():
    # samples [10, 12, 14, 16, 18]: mean 14, stdev sqrt(10) = 3.16228,
    # t_{0.975,4} = 2.776 => ci95 = 2.776 * sqrt(10) / sqrt(5) = 3.92595...
    stat = Statistic.from_samples([10.0, 12.0, 14.0, 16.0, 18.0])
    assert stat.mean == pytest.approx(14.0)
    assert stat.stdev == pytest.approx(math.sqrt(10.0))
    assert stat.ci95 == pytest.approx(2.776 * math.sqrt(10.0) / math.sqrt(5.0))


def test_statistic_identical_samples_have_zero_width():
    stat = Statistic.from_samples([7.5, 7.5, 7.5])
    assert stat.stdev == pytest.approx(0.0)
    assert stat.ci95 == pytest.approx(0.0)
    assert stat.ci_low == stat.ci_high == pytest.approx(7.5)


def test_statistic_single_sample_is_degenerate():
    stat = Statistic.from_samples([42.0])
    assert stat.n == 1
    assert stat.mean == 42.0
    assert stat.stdev is None and stat.ci95 is None
    assert stat.ci_low is None and stat.ci_high is None


def test_statistic_rejects_empty_samples():
    with pytest.raises(ValueError, match="empty"):
        Statistic.from_samples([])


def test_statistic_to_dict_round_trips_through_json():
    payload = json.loads(json.dumps(Statistic.from_samples([1.0, 3.0]).to_dict()))
    assert payload["n"] == 2
    assert payload["mean"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# AggregateMetrics over synthetic RunMetrics
# ----------------------------------------------------------------------
def make_run(throughput: float, ttft_p50: float, seed=None, workload="wl", system="sys"):
    ttft = LatencySummary(
        count=10, mean=ttft_p50, p10=ttft_p50, p25=ttft_p50, p50=ttft_p50,
        p75=ttft_p50, p90=2 * ttft_p50, p99=2 * ttft_p50,
        minimum=ttft_p50, maximum=2 * ttft_p50,
    )
    return RunMetrics(
        system=system,
        workload=workload,
        duration_s=10.0,
        num_completed=100,
        num_issued=120,
        throughput_tokens_per_s=throughput,
        output_tokens_per_s=throughput / 2,
        requests_per_s=10.0,
        ttft=ttft,
        e2e_latency=LatencySummary.empty(),
        queueing_delay=LatencySummary.empty(),
        cache_hit_rate=0.5,
        cross_region_fraction=0.1,
        forwarded_fraction=0.05,
        replica_load_imbalance=1.2,
        seed=seed,
    )


def test_aggregate_metrics_hand_computed():
    runs = [
        make_run(100.0, 0.2, seed=0),
        make_run(110.0, 0.3, seed=1),
        make_run(120.0, 0.4, seed=2),
    ]
    agg = AggregateMetrics.from_runs(runs)
    assert agg.system == "sys" and agg.workload == "wl"
    assert agg.seeds == (0, 1, 2)
    assert agg.num_seeds == 3
    tput = agg.stat("throughput_tokens_per_s")
    assert tput.mean == pytest.approx(110.0)
    assert tput.stdev == pytest.approx(10.0)
    assert tput.ci95 == pytest.approx(4.303 * 10.0 / math.sqrt(3.0))
    assert agg.mean("ttft_p50") == pytest.approx(0.3)
    assert agg.mean("ttft_p90") == pytest.approx(0.6)
    # Constant-across-seeds metrics collapse to zero-width intervals.
    assert agg.stat("cache_hit_rate").ci95 == pytest.approx(0.0)
    # Every registered metric is present.
    assert set(agg.stats) == set(AGGREGATED_METRICS)


def test_aggregate_rejects_mixed_cells_and_empty_input():
    with pytest.raises(ValueError, match="multiple"):
        AggregateMetrics.from_runs([make_run(1.0, 0.1, workload="a"), make_run(1.0, 0.1, workload="b")])
    with pytest.raises(ValueError, match="empty"):
        AggregateMetrics.from_runs([])
    with pytest.raises(ValueError, match="matching lengths"):
        AggregateMetrics.from_runs([make_run(1.0, 0.1)], seeds=[0, 1])


def test_aggregate_seeds_default_to_recorded_or_empty():
    stamped = AggregateMetrics.from_runs([make_run(1.0, 0.1, seed=4), make_run(2.0, 0.2, seed=9)])
    assert stamped.seeds == (4, 9)
    unstamped = AggregateMetrics.from_runs([make_run(1.0, 0.1), make_run(2.0, 0.2)])
    assert unstamped.seeds == ()
    assert unstamped.num_seeds == 2  # sample count is independent of stamping


def test_aggregate_to_dict_and_format_row():
    agg = AggregateMetrics.from_runs([make_run(100.0, 0.2, seed=0), make_run(120.0, 0.4, seed=1)])
    payload = json.loads(json.dumps(agg.to_dict()))
    assert payload["num_seeds"] == 2
    assert payload["metrics"]["throughput_tokens_per_s"]["mean"] == pytest.approx(110.0)
    row = agg.format_row()
    assert "sys" in row and "±" in row and "seeds=2" in row


# ----------------------------------------------------------------------
# SweepReport
# ----------------------------------------------------------------------
def test_sweep_report_table_and_json():
    report = SweepReport()
    report.add(AggregateMetrics.from_runs([make_run(100.0, 0.2, seed=0), make_run(120.0, 0.4, seed=1)]))
    report.add(AggregateMetrics.from_runs([make_run(50.0, 0.5, system="other")]))
    table = report.format_table()
    assert "sys" in table and "other" in table and "±" in table
    payload = json.loads(report.to_json())
    assert payload["schema"] == "repro-sweep-report/1"
    assert len(payload["cells"]) == 2
    # The single-run cell is degenerate: no interval, not a zero-width one.
    degenerate = payload["cells"][1]["metrics"]["throughput_tokens_per_s"]
    assert degenerate["n"] == 1 and degenerate["ci95"] is None


# ----------------------------------------------------------------------
# paired per-seed differences: hand-computed fixtures
# ----------------------------------------------------------------------
def test_paired_diff_hand_computed():
    # a = [11, 13, 15], b = [9, 10, 11] -> diffs [2, 3, 4]: mean 3,
    # stdev 1, t_{0.975,2} = 4.303 => ci95 = 4.303 / sqrt(3) = 2.48434...
    stat = Statistic.paired_diff([11.0, 13.0, 15.0], [9.0, 10.0, 11.0])
    assert stat.n == 3
    assert stat.mean == pytest.approx(3.0)
    assert stat.stdev == pytest.approx(1.0)
    assert stat.ci95 == pytest.approx(4.303 / math.sqrt(3.0))
    # The whole interval is positive: "a beats b" holds at the 95% level.
    assert stat.ci_low > 0


def test_paired_diff_removes_between_seed_variance():
    # Systems track each other across wildly different seeds: the paired
    # interval is tight (constant diff => zero width) while the unpaired
    # per-system spread is huge.  This asymmetry is the whole point.
    a = [100.0, 500.0, 900.0]
    b = [90.0, 490.0, 890.0]
    paired = Statistic.paired_diff(a, b)
    assert paired.mean == pytest.approx(10.0)
    assert paired.ci95 == pytest.approx(0.0)
    assert Statistic.from_samples(a).ci95 > 100.0


def test_paired_diff_validates_inputs():
    with pytest.raises(ValueError, match="equal lengths"):
        Statistic.paired_diff([1.0, 2.0], [1.0])
    with pytest.raises(ValueError, match="empty"):
        Statistic.paired_diff([], [])


def test_paired_difference_aligns_runs_by_seed():
    from repro.metrics import paired_difference

    runs_a = {1: make_run(110.0, 0.1, seed=1), 2: make_run(220.0, 0.1, seed=2)}
    runs_b = {2: make_run(200.0, 0.1, seed=2), 1: make_run(100.0, 0.1, seed=1)}
    # Insertion order differs; pairing must align by seed key: diffs
    # [10, 20] -> mean 15, stdev sqrt(50), t_{0.975,1} = 12.706.
    stat = paired_difference(runs_a, runs_b, "throughput_tokens_per_s")
    assert stat.mean == pytest.approx(15.0)
    assert stat.stdev == pytest.approx(math.sqrt(50.0))
    assert stat.ci95 == pytest.approx(12.706 * math.sqrt(50.0) / math.sqrt(2.0))


def test_paired_difference_validates_seeds_and_metric():
    from repro.metrics import paired_difference

    runs_a = {1: make_run(110.0, 0.1, seed=1)}
    runs_b = {2: make_run(100.0, 0.1, seed=2)}
    with pytest.raises(ValueError, match="same seeds"):
        paired_difference(runs_a, runs_b)
    with pytest.raises(ValueError, match="unknown metric"):
        paired_difference(runs_a, {1: runs_b[2]}, "vibes")
    with pytest.raises(ValueError, match="empty"):
        paired_difference({}, {})


# ----------------------------------------------------------------------
# resilience aggregation across seeds
# ----------------------------------------------------------------------
def make_resilient_run(ttr, seed, *, degraded_p90=None, workload="wl", system="sys"):
    from repro.metrics import ResilienceMetrics

    run = make_run(100.0, 0.1, seed=seed, workload=workload, system=system)
    run.resilience = ResilienceMetrics(
        num_fault_events=1,
        failover_count=0,
        mean_time_to_recovery_s=ttr,
        max_time_to_recovery_s=ttr,
        ttft_p90_degraded_s=degraded_p90,
    )
    return run


def test_resilience_stats_appear_when_defined_for_all_runs():
    from repro.metrics import RESILIENCE_AGGREGATED_METRICS

    runs = [make_resilient_run(ttr, seed) for seed, ttr in [(1, 4.0), (2, 6.0)]]
    aggregate = AggregateMetrics.from_runs(runs)
    stat = aggregate.stats["resilience_mean_ttr_s"]
    assert stat.mean == pytest.approx(5.0)
    # Degraded p90 was None on every run: the stat is omitted, not 0.
    assert "resilience_ttft_p90_degraded_s" not in aggregate.stats
    assert set(RESILIENCE_AGGREGATED_METRICS) & set(aggregate.stats) == {
        "resilience_mean_ttr_s",
        "resilience_max_ttr_s",
        "resilience_failed_requests",
    }


def test_resilience_stats_absent_for_fault_free_cells():
    runs = [make_run(100.0, 0.1, seed=s) for s in (1, 2)]
    aggregate = AggregateMetrics.from_runs(runs)
    assert not any(name.startswith("resilience_") for name in aggregate.stats)


def test_paired_difference_on_resilience_metrics():
    from repro.metrics import paired_difference

    runs_a = {s: make_resilient_run(ttr, s) for s, ttr in [(1, 10.0), (2, 12.0)]}
    runs_b = {s: make_resilient_run(ttr, s) for s, ttr in [(1, 4.0), (2, 6.0)]}
    stat = paired_difference(runs_a, runs_b, "resilience_mean_ttr_s")
    assert stat.mean == pytest.approx(6.0)
    # A seed without a defined value fails loudly, naming the seeds.
    runs_b[2].resilience = None
    with pytest.raises(ValueError, match=r"undefined for seeds \[2\]"):
        paired_difference(runs_a, runs_b, "resilience_mean_ttr_s")


def test_report_table_gains_ttr_column_only_for_faulted_sweeps():
    report = SweepReport()
    report.add(AggregateMetrics.from_runs([make_run(100.0, 0.1, seed=s) for s in (1, 2)]))
    assert "ttr" not in report.format_table()
    faulted = SweepReport()
    faulted.add(AggregateMetrics.from_runs(
        [make_resilient_run(ttr, seed) for seed, ttr in [(1, 4.0), (2, 6.0)]]
    ))
    table = faulted.format_table()
    assert "ttr (s)" in table
    assert "5.00" in table
