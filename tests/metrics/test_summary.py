"""Unit tests for latency summaries and percentile computation."""

import pytest

from repro.metrics import LatencySummary, percentile


def test_percentile_of_single_value():
    assert percentile([5.0], 50) == 5.0
    assert percentile([5.0], 99) == 5.0


def test_percentile_interpolates_linearly():
    values = [0.0, 10.0]
    assert percentile(values, 0) == 0.0
    assert percentile(values, 50) == 5.0
    assert percentile(values, 100) == 10.0
    assert percentile([1, 2, 3, 4, 5], 25) == 2.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_summary_from_values():
    values = list(range(1, 101))  # 1..100
    summary = LatencySummary.from_values(values)
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p10 == pytest.approx(10.9)
    assert summary.p90 == pytest.approx(90.1)
    assert summary.minimum == 1
    assert summary.maximum == 100
    assert summary.p25 <= summary.p50 <= summary.p75 <= summary.p90 <= summary.p99


def test_summary_skips_none_values():
    summary = LatencySummary.from_values([1.0, None, 3.0])
    assert summary.count == 2
    assert summary.mean == 2.0


def test_empty_summary():
    summary = LatencySummary.from_values([])
    assert summary.count == 0
    assert summary.mean == 0.0
    assert str(summary) == "n=0"


def test_summary_to_dict_roundtrip():
    summary = LatencySummary.from_values([1.0, 2.0, 3.0])
    data = summary.to_dict()
    assert data["count"] == 3
    assert data["p50"] == 2.0
    assert set(data) == {"count", "mean", "p10", "p25", "p50", "p75", "p90", "p99", "min", "max"}


def test_summary_str_contains_key_stats():
    text = str(LatencySummary.from_values([1.0, 2.0, 3.0, 4.0]))
    assert "p50" in text and "p90" in text and "n=4" in text
