"""Test package."""
