"""Unit tests for end-of-run metric aggregation."""

import pytest

from repro.cluster import Deployment, ReplicaSpec
from repro.metrics import collect_run_metrics
from repro.replica import TINY_TEST_PROFILE

from ..conftest import make_request


@pytest.fixture
def deployment(env):
    return Deployment(
        env,
        [ReplicaSpec(region="us", count=1, profile=TINY_TEST_PROFILE),
         ReplicaSpec(region="eu", count=1, profile=TINY_TEST_PROFILE)],
    )


def _finished_request(region="us", serving_region="us", replica="us/replica-0",
                      prompt_len=100, output_len=10, sent=0.0, first=1.0, done=2.0,
                      hops=0):
    request = make_request(prompt_len=prompt_len, output_len=output_len, region=region)
    request.sent_time = sent
    request.lb_arrival_time = sent + 0.01
    request.schedule_time = sent + 0.5
    request.first_token_time = first
    request.finish_time = done
    request.generated_tokens = output_len
    request.serving_region = serving_region
    request.replica_name = replica
    request.forward_hops = hops
    request.status = "finished"
    return request


def test_throughput_counts_prompt_and_generated_tokens(deployment):
    completed = [
        _finished_request(prompt_len=100, output_len=20),
        _finished_request(prompt_len=50, output_len=30),
    ]
    metrics = collect_run_metrics(
        system="test", workload="unit", duration_s=10.0,
        completed=completed, issued=2, deployment=deployment,
    )
    assert metrics.throughput_tokens_per_s == pytest.approx((100 + 20 + 50 + 30) / 10.0)
    assert metrics.output_tokens_per_s == pytest.approx(5.0)
    assert metrics.requests_per_s == pytest.approx(0.2)
    assert metrics.num_completed == 2
    assert metrics.num_issued == 2


def test_latency_summaries_reflect_timestamps(deployment):
    completed = [
        _finished_request(sent=0.0, first=0.4, done=2.0),
        _finished_request(sent=0.0, first=0.8, done=4.0),
    ]
    metrics = collect_run_metrics(
        system="test", workload="unit", duration_s=10.0,
        completed=completed, issued=2, deployment=deployment,
    )
    assert metrics.ttft.mean == pytest.approx(0.6)
    assert metrics.e2e_latency.mean == pytest.approx(3.0)
    assert metrics.queueing_delay.count == 2


def test_cross_region_and_forwarded_fractions(deployment):
    completed = [
        _finished_request(region="us", serving_region="us"),
        _finished_request(region="eu", serving_region="us", hops=1),
        _finished_request(region="asia", serving_region="asia"),
        _finished_request(region="asia", serving_region="us", hops=1),
    ]
    metrics = collect_run_metrics(
        system="test", workload="unit", duration_s=1.0,
        completed=completed, issued=4, deployment=deployment,
    )
    assert metrics.cross_region_fraction == pytest.approx(0.5)
    assert metrics.forwarded_fraction == pytest.approx(0.5)


def test_replica_load_imbalance_ratio(deployment):
    completed = (
        [_finished_request(replica="us/replica-0") for _ in range(9)]
        + [_finished_request(replica="eu/replica-0") for _ in range(3)]
    )
    metrics = collect_run_metrics(
        system="test", workload="unit", duration_s=1.0,
        completed=completed, issued=12, deployment=deployment,
    )
    assert metrics.replica_load_imbalance == pytest.approx(3.0)
    assert metrics.per_replica_completed == {"us/replica-0": 9, "eu/replica-0": 3}


def test_empty_run_produces_zeroes(deployment):
    metrics = collect_run_metrics(
        system="test", workload="unit", duration_s=5.0,
        completed=[], issued=0, deployment=deployment,
    )
    assert metrics.num_completed == 0
    assert metrics.throughput_tokens_per_s == 0.0
    assert metrics.cross_region_fraction == 0.0
    assert metrics.replica_load_imbalance == 1.0
    assert metrics.ttft.count == 0


def test_invalid_duration_rejected(deployment):
    with pytest.raises(ValueError):
        collect_run_metrics(
            system="test", workload="unit", duration_s=0.0,
            completed=[], issued=0, deployment=deployment,
        )


def test_to_dict_and_format_row(deployment):
    metrics = collect_run_metrics(
        system="skywalker", workload="unit", duration_s=1.0,
        completed=[_finished_request()], issued=1, deployment=deployment,
    )
    data = metrics.to_dict()
    assert data["system"] == "skywalker"
    assert "ttft" in data and "p90" in data["ttft"]
    row = metrics.format_row()
    assert "skywalker" in row and "tok/s" in row
