"""Unit tests for the prefix-similarity analysis (Fig. 5)."""

import pytest

from repro.analysis import analyze_similarity, prefix_similarity, user_similarity_heatmap
from repro.workloads import ConversationConfig, ConversationWorkload

from ..conftest import make_request


# ----------------------------------------------------------------------
# the similarity metric itself (footnote 1 of the paper)
# ----------------------------------------------------------------------
def test_identical_sequences_have_similarity_one():
    assert prefix_similarity((1, 2, 3), (1, 2, 3)) == 1.0


def test_prefix_of_longer_sequence_has_similarity_one():
    assert prefix_similarity((1, 2), (1, 2, 3, 4)) == 1.0
    assert prefix_similarity((1, 2, 3, 4), (1, 2)) == 1.0


def test_disjoint_sequences_have_similarity_zero():
    assert prefix_similarity((1, 2, 3), (4, 5, 6)) == 0.0


def test_partial_overlap_normalised_by_shorter_length():
    assert prefix_similarity((1, 2, 3, 4), (1, 2, 9, 9, 9, 9)) == pytest.approx(0.5)


def test_empty_sequences_similarity_zero():
    assert prefix_similarity((), (1, 2)) == 0.0


# ----------------------------------------------------------------------
# trace-level analysis
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def conversation_requests():
    config = ConversationConfig(
        regions=("us", "eu"),
        users_per_region=6,
        conversations_per_user=2,
        turns_range=(2, 4),
        shared_templates=3,
        template_adoption=0.4,
        seed=13,
    )
    return [
        request
        for program in ConversationWorkload(config).generate_programs()
        for request in program.all_requests()
    ]


def test_within_user_similarity_dominates(conversation_requests):
    report = analyze_similarity(conversation_requests, seed=2)
    assert report.within_user > report.across_user >= 0.0
    assert report.within_region >= report.across_region
    assert report.user_affinity_ratio > 1.5
    data = report.to_dict()
    assert set(data) == {
        "within_user", "across_user", "within_region", "across_region", "user_affinity_ratio",
    }


def test_similarity_of_unrelated_users_is_zero():
    requests = [make_request(prompt_len=50, user_id=f"user-{i}") for i in range(10)]
    report = analyze_similarity(requests, seed=0)
    assert report.across_user == 0.0
    assert report.within_user == 0.0  # one request per user -> no pairs


def test_heatmap_shape_and_diagonal_dominance(conversation_requests):
    users, matrix = user_similarity_heatmap(conversation_requests, num_users=8, seed=4)
    assert len(users) == 8
    assert len(matrix) == 8 and all(len(row) == 8 for row in matrix)
    diagonal = [matrix[i][i] for i in range(len(users))]
    off_diagonal = [
        matrix[i][j] for i in range(len(users)) for j in range(len(users)) if i != j
    ]
    assert sum(diagonal) / len(diagonal) > sum(off_diagonal) / len(off_diagonal)
    assert all(0.0 <= value <= 1.0 for row in matrix for value in row)


def test_heatmap_subsamples_users(conversation_requests):
    users, matrix = user_similarity_heatmap(conversation_requests, num_users=5, seed=4)
    assert len(users) == 5
    assert len(matrix) == 5
