"""Unit tests for the provisioning cost model (Fig. 3b)."""

import pytest

from repro.analysis import CostModel
from repro.cluster import G6_XLARGE, P5_48XLARGE
from repro.workloads import RegionalTrace


@pytest.fixture
def skewed_trace():
    """Three regions with complementary peaks (the aggregation-friendly case)."""
    return RegionalTrace(
        hourly_counts={
            "us": [100, 100, 900, 900, 100, 100],
            "eu": [900, 100, 100, 100, 900, 100],
            "asia": [100, 900, 100, 100, 100, 900],
        }
    )


def test_replicas_for_rounds_up():
    model = CostModel(requests_per_replica_hour=100)
    assert model.replicas_for(1) == 1
    assert model.replicas_for(100) == 1
    assert model.replicas_for(101) == 2


def test_aggregated_provisioning_needs_fewer_replicas(skewed_trace):
    model = CostModel(requests_per_replica_hour=100)
    cost = model.evaluate(skewed_trace)
    assert cost.region_local_replicas == 27  # 9 per region
    assert cost.aggregated_replicas == 11    # global peak 1100
    assert cost.aggregated_replicas < cost.region_local_replicas


def test_cost_ordering_matches_figure_3b(skewed_trace):
    """Fig. 3b ordering: aggregated reserved < region-local reserved <
    on-demand autoscaling (which the paper reports at ~2.2x aggregated)."""
    model = CostModel(requests_per_replica_hour=100, instance=G6_XLARGE)
    cost = model.evaluate(skewed_trace)
    assert cost.aggregated_reserved < cost.region_local_reserved
    assert cost.on_demand_autoscaling > cost.aggregated_reserved
    assert cost.aggregation_savings_fraction > 0.3
    assert cost.on_demand_multiplier > 1.0


def test_uniform_trace_offers_no_aggregation_benefit():
    trace = RegionalTrace(hourly_counts={"us": [500] * 4, "eu": [500] * 4})
    model = CostModel(requests_per_replica_hour=100)
    cost = model.evaluate(trace)
    assert cost.aggregated_replicas == cost.region_local_replicas
    assert cost.aggregation_savings_fraction == pytest.approx(0.0)


def test_costs_scale_with_instance_price(skewed_trace):
    cheap = CostModel(requests_per_replica_hour=100, instance=G6_XLARGE).evaluate(skewed_trace)
    expensive = CostModel(requests_per_replica_hour=100, instance=P5_48XLARGE).evaluate(skewed_trace)
    assert expensive.aggregated_reserved > cheap.aggregated_reserved


def test_commitment_level_changes_reserved_cost(skewed_trace):
    three_year = CostModel(requests_per_replica_hour=100, commitment="reserved_3yr")
    on_premise = CostModel(requests_per_replica_hour=100, commitment="on_premise")
    assert on_premise.evaluate(skewed_trace).aggregated_reserved < three_year.evaluate(
        skewed_trace
    ).aggregated_reserved


def test_fleet_cost_and_equal_throughput_reduction():
    model = CostModel(requests_per_replica_hour=100, instance=G6_XLARGE)
    assert model.fleet_cost_per_hour(12) == pytest.approx(12 * G6_XLARGE.reserved_3yr_hourly)
    # The paper's headline: 9 SkyWalker replicas match 12 region-local ones.
    assert model.cost_reduction_at_equal_throughput(9, 12) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        model.cost_reduction_at_equal_throughput(9, 0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        CostModel(requests_per_replica_hour=0)


def test_to_dict_exposes_all_fields(skewed_trace):
    cost = CostModel(requests_per_replica_hour=100).evaluate(skewed_trace)
    data = cost.to_dict()
    assert {"on_demand_autoscaling", "region_local_reserved", "aggregated_reserved"} <= set(data)
