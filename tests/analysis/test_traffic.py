"""Unit tests for the traffic-aggregation analysis (Fig. 3a)."""

import pytest

from repro.analysis import analyze_aggregation
from repro.workloads import COUNTRY_PROFILES, RegionalTrace, generate_daily_trace


def test_analysis_of_synthetic_wildchat_trace():
    trace = generate_daily_trace(COUNTRY_PROFILES, seed=3)
    analysis = analyze_aggregation(trace)
    # Per-region swings are large (the paper reports 2.88x-32.64x) while the
    # aggregate is much flatter (1.29x in the paper).
    assert analysis.max_regional_variance > 3.0
    assert analysis.aggregated_peak_to_trough < analysis.min_regional_variance
    assert 0.0 < analysis.peak_reduction_fraction < 1.0
    assert analysis.aggregated_peak <= analysis.sum_of_region_peaks


def test_antiphase_regions_maximise_peak_reduction():
    trace = RegionalTrace(
        hourly_counts={
            "day": [1000, 0, 1000, 0],
            "night": [0, 1000, 0, 1000],
        }
    )
    analysis = analyze_aggregation(trace)
    assert analysis.aggregated_peak == 1000
    assert analysis.sum_of_region_peaks == 2000
    assert analysis.peak_reduction_fraction == pytest.approx(0.5)


def test_perfectly_correlated_regions_offer_no_reduction():
    trace = RegionalTrace(
        hourly_counts={
            "a": [100, 500, 100],
            "b": [100, 500, 100],
        }
    )
    analysis = analyze_aggregation(trace)
    assert analysis.peak_reduction_fraction == pytest.approx(0.0)


def test_to_dict_contains_per_region_entries():
    trace = generate_daily_trace(COUNTRY_PROFILES, seed=1)
    data = analyze_aggregation(trace).to_dict()
    assert set(data["per_region_peaks"]) == set(COUNTRY_PROFILES)
    assert data["aggregated_peak"] > 0
