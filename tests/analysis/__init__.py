"""Test package."""
