#!/usr/bin/env python3
"""Quickstart: serve a multi-region chat workload with SkyWalker.

Builds a three-region deployment (two L4 replicas per region), routes a
ChatBot-Arena-like multi-turn conversation workload through SkyWalker's
geo-distributed load balancers, and prints the headline serving metrics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import (
    ClusterConfig,
    ExperimentConfig,
    SkyWalkerConfig,
    build_arena_workload,
    run_experiment,
)


def main() -> None:
    # 1. Describe the workload: clients in the US, Europe and Asia running
    #    multi-turn conversations (scale 0.2 => 16 concurrent clients/region).
    workload = build_arena_workload(scale=0.2, seed=0)

    # 2. Describe the system: SkyWalker with prefix-tree routing and
    #    pending-request selective pushing ("SP-P", a registered pushing
    #    policy name), on 2 replicas per region.
    config = ExperimentConfig(
        system=SkyWalkerConfig(kind="skywalker", pushing="SP-P"),
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=120.0,
        seed=0,
    )

    # 3. Run the simulation and inspect the metrics.
    result = run_experiment(config, workload)
    metrics = result.metrics

    print("SkyWalker quickstart")
    print("====================")
    print(f"replicas                : {result.deployment.num_replicas} across {sorted(result.deployment.regions)}")
    print(f"requests completed      : {metrics.num_completed} / {metrics.num_issued} issued")
    print(f"service throughput      : {metrics.throughput_tokens_per_s:,.0f} tokens/s")
    print(f"TTFT    p50 / p90       : {metrics.ttft.p50:.3f}s / {metrics.ttft.p90:.3f}s")
    print(f"E2E     p50 / p90       : {metrics.e2e_latency.p50:.2f}s / {metrics.e2e_latency.p90:.2f}s")
    print(f"prefix cache hit rate   : {metrics.cache_hit_rate:.1%}")
    print(f"served outside region   : {metrics.cross_region_fraction:.1%}")
    print(f"hourly fleet cost       : ${result.deployment.hourly_cost():.2f} (3-year reserved)")
    print()
    print("Per-balancer routing summary:")
    for balancer in result.balancers:
        print(
            f"  {balancer.name:<22} received={balancer.received_requests:<5} "
            f"local={balancer.local_dispatches:<5} forwarded={balancer.remote_forwards}"
        )


if __name__ == "__main__":
    main()
