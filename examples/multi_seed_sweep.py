#!/usr/bin/env python3
"""Multi-seed quickstart: turn a sweep into mean/95%-CI statements.

A single simulation run is a point estimate -- rerun it with another seed
and every number moves.  This example runs the same two-system sweep under
several seeds (fanned across worker processes like any other sweep), then
prints the per-seed rows and the aggregate table: mean, and the 95%
confidence interval computed with the Student-t distribution (the right
small-sample choice for a handful of seeds).

Run with::

    python examples/multi_seed_sweep.py
"""

from __future__ import annotations

from repro.experiments import REGISTRY, ClusterConfig, build_arena_workload, run_sweep


def main() -> None:
    # 1. One workload, built once and replayed (fresh request state) across
    #    every (system, seed) cell.
    workload = build_arena_workload(scale=0.1, seed=0)

    # 2. The sweep: two systems x three seeds.  seeds=[...] is the only
    #    change from a single-seed sweep; seeds=[0] would be bit-identical
    #    to the historical seed=0 run.
    sweep = run_sweep(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("least-load")],
        [workload],
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=60.0,
        seeds=[0, 1, 2],
        workers=2,
    )

    # 3. Per-seed detail: every run is available individually...
    print("Per-seed runs")
    print("=============")
    for system in sweep.systems(workload.name):
        for seed, metrics in sweep.runs_for(workload.name, system).items():
            print(f"  seed={seed}  " + metrics.format_row())

    # 4. ...and the statistical layer on top: mean ± 95% CI per metric.
    print()
    print(f"Aggregate over seeds {sweep.seeds()} (mean±95% CI)")
    print("==================================================")
    print(sweep.report().format_table())

    skywalker = sweep.aggregate(workload.name, "skywalker")
    tput = skywalker.stat("throughput_tokens_per_s")
    print()
    print(
        f"skywalker throughput: {tput.mean:,.0f} tokens/s "
        f"(95% CI [{tput.ci_low:,.0f}, {tput.ci_high:,.0f}], "
        f"stdev {tput.stdev:,.0f}, n={tput.n})"
    )
    # The full aggregate also serialises to JSON for committed artifacts:
    # sweep.to_json() -> {"schema": "repro-sweep-report/1", "cells": [...]}.


if __name__ == "__main__":
    main()
