#!/usr/bin/env python3
"""Load-balancer failure recovery (§4.2 of the paper).

The centralized controller health-probes every regional load balancer.  When
one dies, its replicas are temporarily re-assigned to the geographically
closest healthy balancer, DNS stops resolving clients to the dead balancer,
and once it recovers the replicas are transferred back.

This example kills the EU balancer mid-run and shows that EU clients keep
being served (through the US balancer) during the outage.

Run with::

    python examples/failover_demo.py
"""

from __future__ import annotations

from repro.cluster import ClosedLoopClient, Deployment, Frontend, ReplicaSpec, RequestTracker
from repro.core import ServiceController, SkyWalkerBalancer
from repro.network import Network, default_topology
from repro.sim import Environment
from repro.workloads import ConversationConfig, ConversationWorkload


def main() -> None:
    env = Environment()
    topology = default_topology()
    network = Network(env, topology, jitter_fraction=0.0, seed=0)
    deployment = Deployment(
        env,
        [ReplicaSpec(region=region, count=2) for region in ("us", "eu", "asia")],
        topology=topology,
        network=network,
    )
    tracker = RequestTracker(env)
    for replica in deployment.replicas:
        replica.add_completion_listener(tracker.complete)

    frontend = Frontend(env, network)
    balancers = {}
    for region in ("us", "eu", "asia"):
        balancer = SkyWalkerBalancer(env, f"skywalker@{region}", region, network)
        for replica in deployment.replicas_in(region):
            balancer.add_replica(replica)
        balancers[region] = balancer
    for balancer in balancers.values():
        for peer in balancers.values():
            if peer is not balancer:
                balancer.add_peer(peer)
        balancer.start()
        frontend.register_balancer(balancer)

    controller = ServiceController(env, network, frontend,
                                   health_probe_interval_s=0.5, recovery_time_s=20.0)
    for balancer in balancers.values():
        controller.register_balancer(balancer)
    controller.start()

    # Clients in every region run conversations for the whole experiment.
    workload = ConversationWorkload(ConversationConfig(
        regions=("us", "eu", "asia"), users_per_region=6,
        conversations_per_user=4, turns_range=(2, 4), seed=1,
    ))
    for index, (region, programs) in enumerate(workload.programs_by_region().items()):
        ClosedLoopClient(env, f"client-{region}-{index}", region, frontend, tracker, programs)

    def chaos(env):
        yield env.timeout(30.0)
        print(f"[t={env.now:6.1f}s] killing the EU load balancer")
        balancers["eu"].fail()
        yield env.timeout(40.0)
        print(f"[t={env.now:6.1f}s] outage window over "
              f"(controller recovery time is 20s)")

    env.process(chaos(env))
    env.run(until=120.0)

    print()
    print(f"failovers handled        : {len(controller.failovers)}")
    for record in controller.failovers:
        print(f"  {record.failed_balancer} -> {record.takeover_balancer} "
              f"at t={record.failed_at:.1f}s, recovered at t={record.recovered_at:.1f}s")
    eu_requests = [r for r in tracker.completed if r.region == "eu"]
    during_outage = [r for r in eu_requests if 30.0 <= r.sent_time <= 70.0]
    served_by_us_lb = [r for r in during_outage if r.ingress_region == "us"]
    print(f"EU requests completed     : {len(eu_requests)}")
    print(f"  ... sent during outage  : {len(during_outage)}")
    print(f"  ... entering via the US : {len(served_by_us_lb)}")
    print(f"EU balancer healthy again : {balancers['eu'].healthy}")
    print(f"EU replicas back home     : "
          f"{[r.name for r in balancers['eu'].local_replicas()]}")


if __name__ == "__main__":
    main()
