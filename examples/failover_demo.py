#!/usr/bin/env python3
"""Load-balancer failure recovery (§4.2 of the paper), the declarative way.

The centralized controller health-probes every regional load balancer.  When
one dies, its replicas are temporarily re-assigned to the geographically
closest healthy balancer, DNS stops resolving clients to the dead balancer,
and once it recovers the replicas are transferred back.

This example kills the EU balancer mid-run through the fault-injection
subsystem (``repro.faults``): the outage is one declarative
:class:`FaultSchedule`, the §4.2 controller is started automatically, and
the before/during/after story comes back as ``metrics.resilience`` -- the
same schedule object would drop into ``run_sweep(..., faults=...)`` or the
Fig. 11 benchmark unchanged.

Run with::

    python examples/failover_demo.py
"""

from __future__ import annotations

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    build_arena_workload,
    run_experiment,
)
from repro.faults import BalancerFailure, FaultSchedule


def main() -> None:
    workload = build_arena_workload(scale=0.1, seed=1)

    # One declarative scenario: the EU balancer dies 30 s in; the
    # controller (probing every 0.5 s) detects it, re-homes its replicas,
    # re-points DNS, and brings it back 20 s later.
    schedule = FaultSchedule.single(
        30.0,
        BalancerFailure(region="eu"),
        controller_probe_interval_s=0.5,
        recovery_time_s=20.0,
    )

    config = ExperimentConfig(
        system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=120.0,
        seed=0,
        network_jitter=0.0,
        faults=schedule,
    )
    result = run_experiment(config, workload)

    controller = result.controller
    print(f"failovers handled        : {len(controller.failovers)}")
    for record in controller.failovers:
        print(
            f"  {record.failed_balancer} -> {record.takeover_balancer} "
            f"at t={record.failed_at:.1f}s, recovered at t={record.recovered_at:.1f}s"
        )

    resilience = result.metrics.resilience
    start, end = resilience.outage_windows[0]
    eu_requests = [r for r in result.completed if r.region == "eu"]
    during_outage = [r for r in eu_requests if start <= r.sent_time <= end]
    served_by_us_lb = [r for r in during_outage if r.ingress_region == "us"]
    eu = next(b for b in result.balancers if b.region == "eu")

    print(f"outage window             : t={start:.1f}s .. t={end:.1f}s")
    print(f"time to recovery          : {resilience.mean_time_to_recovery_s:.1f}s")
    print(f"goodput during outage     : "
          f"{resilience.goodput_during_outage_tokens_per_s:.0f} tok/s")
    print(f"p90 TTFT before/during    : {resilience.ttft_p90_before_s:.3f}s / "
          f"{resilience.ttft_p90_during_s:.3f}s")
    print(f"EU requests completed     : {len(eu_requests)}")
    print(f"  ... sent during outage  : {len(during_outage)}")
    print(f"  ... entering via the US : {len(served_by_us_lb)}")
    print(f"EU balancer healthy again : {eu.healthy}")
    print(f"EU replicas back home     : {[r.name for r in eu.local_replicas()]}")


if __name__ == "__main__":
    main()
