#!/usr/bin/env python3
"""Compare SkyWalker against baseline load balancers on a WildChat-like
multi-region chat workload (the Fig. 8 experiment, scaled down).

Runs the same workload through a centralized Round-Robin balancer, the
SGLang-style cache-aware router, a GKE-like multi-cluster gateway and both
SkyWalker variants -- one sweep, one worker process per variant -- then
prints the comparison table.

Run with::

    python examples/multi_region_chat_serving.py [--scale 0.2] [--duration 120] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    build_wildchat_workload,
    run_sweep,
)

SYSTEMS = ("round-robin", "least-load", "sglang-router", "gke-gateway", "skywalker-ch", "skywalker")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="client-count scale factor (1.0 = paper scale)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per system")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the sweep (1 = serial; "
                             "results are identical either way)")
    args = parser.parse_args()

    cluster = ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2})
    workload = build_wildchat_workload(scale=args.scale, seed=1)
    sweep = run_sweep(
        [REGISTRY.spec(kind, hash_key=workload.hash_key) for kind in SYSTEMS],
        [workload],
        cluster=cluster,
        duration_s=args.duration,
        seed=1,
        workers=args.workers,
    )

    print(f"{'system':<16}{'tput tok/s':>12}{'ttft p50':>10}{'ttft p90':>10}"
          f"{'e2e p50':>10}{'hit rate':>10}{'offloaded':>11}")
    rows = {}
    for kind in SYSTEMS:
        metrics = sweep.get(workload.name, kind)
        rows[kind] = metrics
        print(f"{kind:<16}{metrics.throughput_tokens_per_s:>12.1f}{metrics.ttft.p50:>10.3f}"
              f"{metrics.ttft.p90:>10.3f}{metrics.e2e_latency.p50:>10.2f}"
              f"{metrics.cache_hit_rate * 100:>9.1f}%{metrics.cross_region_fraction * 100:>10.1f}%")

    skywalker = rows["skywalker"]
    print("\nSkyWalker vs baselines (throughput / median TTFT):")
    for kind, metrics in rows.items():
        if kind == "skywalker":
            continue
        tput_gain = skywalker.throughput_tokens_per_s / max(metrics.throughput_tokens_per_s, 1e-9)
        ttft_gain = metrics.ttft.p50 / max(skywalker.ttft.p50, 1e-9)
        print(f"  vs {kind:<16} throughput {tput_gain:5.2f}x   TTFT {ttft_gain:5.2f}x lower")


if __name__ == "__main__":
    main()
