#!/usr/bin/env python3
"""Route a Tree-of-Thoughts reasoning workload and inspect prefix locality.

Tree-of-Thoughts programs expand a reasoning tree whose nodes share long
prefixes with their ancestors and siblings (15 requests per 2-branch tree, 85
per 4-branch tree).  This example runs the same mixed-tree workload through
both SkyWalker variants and a non-prefix-aware Least Load balancer, and
shows how prefix-aware routing translates into cache hits and lower TTFT.

Run with::

    python examples/tree_of_thoughts_routing.py
"""

from __future__ import annotations

from repro.experiments import (
    REGISTRY,
    ClusterConfig,
    ExperimentConfig,
    build_mixed_tree_workload,
    run_experiment,
)

SYSTEMS = ("least-load", "consistent-hash", "skywalker-ch", "skywalker")


def main() -> None:
    cluster = ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2})

    print("Mixed Tree-of-Thoughts workload (4-branch trees in the US, 2-branch elsewhere)\n")
    print(f"{'system':<16}{'tput tok/s':>12}{'ttft p50':>10}{'ttft p90':>10}{'hit rate':>10}{'imbalance':>11}")
    results = {}
    for kind in SYSTEMS:
        workload = build_mixed_tree_workload(scale=0.3, seed=2)
        config = ExperimentConfig(
            system=REGISTRY.spec(kind, hash_key=workload.hash_key),
            cluster=cluster,
            duration_s=120.0,
            seed=2,
        )
        result = run_experiment(config, workload)
        metrics = result.metrics
        results[kind] = result
        print(f"{kind:<16}{metrics.throughput_tokens_per_s:>12.1f}{metrics.ttft.p50:>10.3f}"
              f"{metrics.ttft.p90:>10.3f}{metrics.cache_hit_rate * 100:>9.1f}%"
              f"{metrics.replica_load_imbalance:>10.2f}x")

    skywalker = results["skywalker"]
    print("\nPer-replica requests served under SkyWalker (prefix trie):")
    for name, count in sorted(skywalker.metrics.per_replica_completed.items()):
        print(f"  {name:<18} {count}")
    print("\nPer-replica prefix cache hit rate under SkyWalker:")
    for replica in skywalker.deployment.replicas:
        print(f"  {replica.name:<18} {replica.cache_hit_rate:.1%}")


if __name__ == "__main__":
    main()
