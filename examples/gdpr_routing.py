#!/usr/bin/env python3
"""GDPR-constrained cross-region routing (§4.1, §7 of the paper).

SkyWalker supports custom routing policies.  The canonical one is GDPR data
residency: requests originating in GDPR regions (the EU) must never be
offloaded outside GDPR scope, while non-GDPR traffic may still be offloaded
*into* EU regions whenever those have spare capacity.

This example overloads the EU region and shows that, with the GDPR
constraint enabled, EU traffic queues locally instead of spilling to the US
or Asia -- while the same scenario without the constraint does offload it.

Run with::

    python examples/gdpr_routing.py
"""

from __future__ import annotations

from repro.experiments import (
    ClusterConfig,
    ExperimentConfig,
    SkyWalkerConfig,
    WorkloadSpec,
    run_experiment,
)
from repro.replica import TINY_TEST_PROFILE
from repro.workloads import ConversationConfig, ConversationWorkload


def build_eu_heavy_workload(seed: int = 3) -> WorkloadSpec:
    """Most clients are in the EU; the US and Asia are nearly idle."""
    clients = {"eu": 12, "us": 2, "asia": 2}
    programs = {}
    for region, count in clients.items():
        config = ConversationConfig(
            regions=(region,),
            users_per_region=count,
            conversations_per_user=3,
            turns_range=(2, 4),
            seed=seed,
        )
        programs[region] = ConversationWorkload(config).generate_programs()
    return WorkloadSpec(
        name="eu-heavy",
        programs_by_region=programs,
        clients_per_region=clients,
        hash_key="user",
    )


def run(constraint):
    workload = build_eu_heavy_workload()
    # ``constraint`` is a registered routing-constraint name (None, "gdpr",
    # "continent", or anything added via repro.core.register_constraint).
    config = ExperimentConfig(
        system=SkyWalkerConfig(kind="skywalker", hash_key="user", constraint=constraint),
        # Small replicas so the EU region genuinely overflows.
        cluster=ClusterConfig(
            replicas_per_region={"us": 1, "eu": 1, "asia": 1},
            profile=TINY_TEST_PROFILE,
        ),
        duration_s=60.0,
        seed=3,
    )
    return run_experiment(config, workload)


def summarize(label, result):
    eu_requests = [r for r in result.completed if r.region == "eu"]
    offloaded = [r for r in eu_requests if r.serving_region != "eu"]
    print(f"{label}")
    print(f"  EU requests completed      : {len(eu_requests)}")
    print(f"  EU requests served abroad  : {len(offloaded)}"
          f" ({len(offloaded) / max(1, len(eu_requests)):.0%})")
    regions = sorted({r.serving_region for r in offloaded})
    if regions:
        print(f"  regions that served EU data: {regions}")
    ttfts = sorted(r.ttft for r in eu_requests if r.ttft is not None)
    if ttfts:
        print(f"  EU median TTFT             : {ttfts[len(ttfts) // 2]:.2f}s")
    print()


def main() -> None:
    print("EU-heavy workload, cross-region offloading allowed vs GDPR-constrained\n")
    summarize("Without constraint (offloading allowed anywhere):", run(constraint=None))
    summarize("With GDPR constraint (EU data stays in GDPR scope):", run(constraint="gdpr"))
    print("Note: with the constraint the EU trades latency for compliance; "
          "non-EU traffic could still be offloaded INTO the EU.")


if __name__ == "__main__":
    main()
