#!/usr/bin/env python3
"""Estimate the cost savings of provisioning for global (aggregated) demand.

Reproduces the paper's motivation (§2.2, Fig. 2 and Fig. 3): regional LLM
demand follows diurnal cycles that peak at different times, so a shared pool
sized for the aggregated global peak needs far fewer reserved instances than
independently provisioned regional pools -- and even ideal on-demand
autoscaling costs more than the aggregated reserved pool.

Run with::

    python examples/diurnal_cost_savings.py
"""

from __future__ import annotations

from repro.analysis import CostModel, analyze_aggregation
from repro.cluster import G6_XLARGE
from repro.workloads import COUNTRY_PROFILES, generate_daily_trace


def main() -> None:
    trace = generate_daily_trace(COUNTRY_PROFILES, seed=0)

    print("Hourly demand per region (requests/hour)")
    header = "hour " + "".join(f"{region[:12]:>14}" for region in trace.regions)
    print(header)
    for hour in range(0, trace.num_hours, 3):
        row = f"{hour:4d} " + "".join(
            f"{trace.hourly_counts[region][hour]:>14,}" for region in trace.regions
        )
        print(row)

    analysis = analyze_aggregation(trace)
    print("\nDemand variance (peak / trough):")
    for region, ratio in analysis.per_region_peak_to_trough.items():
        print(f"  {region:<16} {ratio:6.2f}x")
    print(f"  {'aggregated':<16} {analysis.aggregated_peak_to_trough:6.2f}x")
    print(f"\nAggregated peak is {analysis.peak_reduction_fraction:.1%} below the sum of regional peaks.")

    model = CostModel(requests_per_replica_hour=500, instance=G6_XLARGE)
    cost = model.evaluate(trace)
    print("\nEstimated daily cost (single-L4 replicas):")
    print(f"  on-demand autoscaling : ${cost.on_demand_autoscaling:10,.2f}")
    print(f"  region-local reserved : ${cost.region_local_reserved:10,.2f}  ({cost.region_local_replicas} replicas)")
    print(f"  aggregated reserved   : ${cost.aggregated_reserved:10,.2f}  ({cost.aggregated_replicas} replicas)")
    print(f"\n  provisioning for the aggregated global peak saves "
          f"{cost.aggregation_savings_fraction:.1%} over region-local reservations")
    print(f"  perfect on-demand autoscaling still costs {cost.on_demand_multiplier:.2f}x the aggregated pool")


if __name__ == "__main__":
    main()
