"""Prefix similarity analysis (§3.2, Fig. 5a / 5b).

The paper defines the prefix similarity of two requests *a*, *b* as::

    len(common_prefix(a, b)) / min(len(a), len(b))

and studies how it differs within a user, across users, within a region and
across regions.  The same statistics are computed here over synthetic
workload traces, which is both a validation of the workload generators (they
must reproduce the paper's sharing structure) and the input that motivates
SkyWalker-CH vs full SkyWalker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..workloads.request import Request

__all__ = [
    "prefix_similarity",
    "SimilarityReport",
    "analyze_similarity",
    "user_similarity_heatmap",
]


def prefix_similarity(a: Sequence[int], b: Sequence[int]) -> float:
    """Normalised common-prefix length of two token sequences (footnote 1)."""
    if not a or not b:
        return 0.0
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i / limit


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _sample_pairs(
    items: Sequence, rng: random.Random, max_pairs: int
) -> List[Tuple]:
    """All pairs if few, otherwise a uniform sample of ``max_pairs`` pairs."""
    n = len(items)
    total = n * (n - 1) // 2
    if total <= max_pairs:
        return list(combinations(items, 2))
    pairs = set()
    while len(pairs) < max_pairs:
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        pairs.add((min(i, j), max(i, j)))
    return [(items[i], items[j]) for i, j in pairs]


@dataclass(frozen=True)
class SimilarityReport:
    """Average prefix similarity along the four groupings of Fig. 5a."""

    within_user: float
    across_user: float
    within_region: float
    across_region: float

    @property
    def user_affinity_ratio(self) -> float:
        """How much stronger within-user sharing is than cross-user sharing
        (the paper reports 2.47x for Arena and 7.60x for WildChat)."""
        if self.across_user == 0:
            return float("inf")
        return self.within_user / self.across_user

    def to_dict(self) -> Dict[str, float]:
        return {
            "within_user": self.within_user,
            "across_user": self.across_user,
            "within_region": self.within_region,
            "across_region": self.across_region,
            "user_affinity_ratio": self.user_affinity_ratio,
        }


def analyze_similarity(
    requests: Sequence[Request],
    *,
    max_pairs_per_group: int = 4000,
    seed: int = 0,
) -> SimilarityReport:
    """Compute Fig. 5a's four similarity averages over a request trace."""
    rng = random.Random(seed)

    by_user: Dict[str, List[Request]] = {}
    by_region: Dict[str, List[Request]] = {}
    for request in requests:
        by_user.setdefault(request.user_id, []).append(request)
        by_region.setdefault(request.region, []).append(request)

    within_user: List[float] = []
    for user_requests in by_user.values():
        for a, b in _sample_pairs(user_requests, rng, max_pairs_per_group // max(1, len(by_user))):
            within_user.append(prefix_similarity(a.prompt_tokens, b.prompt_tokens))

    across_user: List[float] = []
    all_requests = list(requests)
    for a, b in _sample_pairs(all_requests, rng, max_pairs_per_group):
        if a.user_id != b.user_id:
            across_user.append(prefix_similarity(a.prompt_tokens, b.prompt_tokens))

    within_region: List[float] = []
    for region_requests in by_region.values():
        for a, b in _sample_pairs(
            region_requests, rng, max_pairs_per_group // max(1, len(by_region))
        ):
            within_region.append(prefix_similarity(a.prompt_tokens, b.prompt_tokens))

    across_region: List[float] = []
    for a, b in _sample_pairs(all_requests, rng, max_pairs_per_group):
        if a.region != b.region:
            across_region.append(prefix_similarity(a.prompt_tokens, b.prompt_tokens))

    return SimilarityReport(
        within_user=_mean(within_user),
        across_user=_mean(across_user),
        within_region=_mean(within_region),
        across_region=_mean(across_region),
    )


def user_similarity_heatmap(
    requests: Sequence[Request],
    *,
    num_users: int = 100,
    max_pairs_per_cell: int = 16,
    seed: int = 0,
) -> Tuple[List[str], List[List[float]]]:
    """Pairwise user-to-user average similarity matrix (Fig. 5b).

    Returns the sampled user ids and a square matrix where entry [i][j] is
    the average similarity between user i's and user j's requests.
    """
    rng = random.Random(seed)
    by_user: Dict[str, List[Request]] = {}
    for request in requests:
        by_user.setdefault(request.user_id, []).append(request)
    users = sorted(by_user)
    if len(users) > num_users:
        users = rng.sample(users, num_users)
        users.sort()

    matrix: List[List[float]] = []
    for user_a in users:
        row: List[float] = []
        for user_b in users:
            sims: List[float] = []
            for _ in range(max_pairs_per_cell):
                a = rng.choice(by_user[user_a])
                b = rng.choice(by_user[user_b])
                if a is b:
                    continue
                sims.append(prefix_similarity(a.prompt_tokens, b.prompt_tokens))
            row.append(_mean(sims))
        matrix.append(row)
    return users, matrix
