"""Traffic aggregation analysis (Fig. 2 and Fig. 3a).

Quantifies the paper's motivating observation: per-region demand swings by
large factors over a day, but the aggregated global demand is much flatter,
so a shared pool provisioned for the aggregated peak needs far less capacity
than independently provisioned regional pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..workloads.traces import RegionalTrace

__all__ = ["AggregationAnalysis", "analyze_aggregation"]


@dataclass(frozen=True)
class AggregationAnalysis:
    """Summary statistics of regional vs aggregated demand."""

    per_region_peak_to_trough: Dict[str, float]
    aggregated_peak_to_trough: float
    per_region_peaks: Dict[str, int]
    aggregated_peak: int
    sum_of_region_peaks: int

    @property
    def max_regional_variance(self) -> float:
        return max(self.per_region_peak_to_trough.values())

    @property
    def min_regional_variance(self) -> float:
        return min(self.per_region_peak_to_trough.values())

    @property
    def peak_reduction_fraction(self) -> float:
        """How much smaller the aggregated peak is than the sum of regional
        peaks -- the capacity a shared pool saves."""
        if self.sum_of_region_peaks == 0:
            return 0.0
        return 1.0 - self.aggregated_peak / self.sum_of_region_peaks

    def to_dict(self) -> Dict[str, object]:
        return {
            "per_region_peak_to_trough": dict(self.per_region_peak_to_trough),
            "aggregated_peak_to_trough": self.aggregated_peak_to_trough,
            "per_region_peaks": dict(self.per_region_peaks),
            "aggregated_peak": self.aggregated_peak,
            "sum_of_region_peaks": self.sum_of_region_peaks,
            "peak_reduction_fraction": self.peak_reduction_fraction,
        }


def analyze_aggregation(trace: RegionalTrace) -> AggregationAnalysis:
    """Compute the Fig. 3a statistics for a regional demand trace."""
    per_region_variance = {
        region: trace.peak_to_trough_ratio(region) for region in trace.regions
    }
    per_region_peaks = {region: trace.region_peak(region) for region in trace.regions}
    return AggregationAnalysis(
        per_region_peak_to_trough=per_region_variance,
        aggregated_peak_to_trough=trace.aggregated_peak_to_trough_ratio(),
        per_region_peaks=per_region_peaks,
        aggregated_peak=trace.aggregated_peak(),
        sum_of_region_peaks=trace.sum_of_region_peaks(),
    )
