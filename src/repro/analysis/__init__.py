"""Offline analyses: cost modelling, traffic aggregation, prefix similarity."""

from .cost import CostModel, ProvisioningCost
from .prefix_similarity import (
    SimilarityReport,
    analyze_similarity,
    prefix_similarity,
    user_similarity_heatmap,
)
from .traffic import AggregationAnalysis, analyze_aggregation

__all__ = [
    "CostModel",
    "ProvisioningCost",
    "AggregationAnalysis",
    "analyze_aggregation",
    "prefix_similarity",
    "SimilarityReport",
    "analyze_similarity",
    "user_similarity_heatmap",
]
