"""Provisioning cost models (§2.2, Fig. 3b; §5.2, Fig. 10).

Three provisioning strategies are compared on a daily regional demand trace:

* **On-demand autoscaling** -- the idealised strategy that, every hour, rents
  exactly the replicas needed at on-demand prices (no provisioning delay, no
  shortage risk); the paper uses this as a lower bound for what autoscaling
  could achieve and still finds it ~2.2x more expensive than aggregated
  reserved capacity.
* **Region-local reserved** -- every region independently reserves enough
  replicas for its own peak.
* **Aggregated reserved** -- one global pool reserved for the aggregated
  peak (what SkyWalker's cross-region traffic handling enables).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.pricing import G6_XLARGE, InstancePricing
from ..workloads.traces import RegionalTrace

__all__ = ["ProvisioningCost", "CostModel"]


@dataclass(frozen=True)
class ProvisioningCost:
    """Daily cost (USD) of each provisioning strategy for one trace."""

    on_demand_autoscaling: float
    region_local_reserved: float
    aggregated_reserved: float
    #: Replica counts backing the reserved strategies.
    region_local_replicas: int
    aggregated_replicas: int

    @property
    def aggregation_savings_fraction(self) -> float:
        """Relative cost reduction of aggregated vs region-local reserved
        (the "40.5% reduction" annotation in Fig. 3b)."""
        if self.region_local_reserved == 0:
            return 0.0
        return 1.0 - self.aggregated_reserved / self.region_local_reserved

    @property
    def on_demand_multiplier(self) -> float:
        """How much more on-demand autoscaling costs than the aggregated pool
        (the "2.2x of Aggregated" annotation in Fig. 3b)."""
        if self.aggregated_reserved == 0:
            return float("inf")
        return self.on_demand_autoscaling / self.aggregated_reserved

    def to_dict(self) -> Dict[str, float]:
        return {
            "on_demand_autoscaling": self.on_demand_autoscaling,
            "region_local_reserved": self.region_local_reserved,
            "aggregated_reserved": self.aggregated_reserved,
            "region_local_replicas": self.region_local_replicas,
            "aggregated_replicas": self.aggregated_replicas,
            "aggregation_savings_fraction": self.aggregation_savings_fraction,
            "on_demand_multiplier": self.on_demand_multiplier,
        }


class CostModel:
    """Translates a demand trace into provisioning costs.

    Parameters
    ----------
    requests_per_replica_hour:
        Sustainable request rate of one replica (capacity planning unit).
    instance:
        Instance pricing used for all replicas.
    commitment:
        Commitment level used for the reserved strategies
        (``"reserved_3yr"`` by default, matching §2.1).
    """

    def __init__(
        self,
        requests_per_replica_hour: float,
        *,
        instance: InstancePricing = G6_XLARGE,
        commitment: str = "reserved_3yr",
    ) -> None:
        if requests_per_replica_hour <= 0:
            raise ValueError("requests_per_replica_hour must be positive")
        self.requests_per_replica_hour = requests_per_replica_hour
        self.instance = instance
        self.commitment = commitment

    # ------------------------------------------------------------------
    def replicas_for(self, hourly_demand: float) -> int:
        """Replicas needed to sustain ``hourly_demand`` requests per hour."""
        return int(math.ceil(hourly_demand / self.requests_per_replica_hour))

    def evaluate(self, trace: RegionalTrace) -> ProvisioningCost:
        """Daily cost of each provisioning strategy for ``trace``."""
        hours = trace.num_hours
        reserved_hourly = self.instance.hourly(self.commitment)
        on_demand_hourly = self.instance.hourly("on_demand")

        counts = trace.required_replicas(self.requests_per_replica_hour)
        region_local = counts["region_local"]
        aggregated = counts["aggregated"]
        on_demand_replica_hours = counts["on_demand_hours"]

        return ProvisioningCost(
            on_demand_autoscaling=on_demand_replica_hours * on_demand_hourly,
            region_local_reserved=region_local * reserved_hourly * hours,
            aggregated_reserved=aggregated * reserved_hourly * hours,
            region_local_replicas=region_local,
            aggregated_replicas=aggregated,
        )

    # ------------------------------------------------------------------
    def fleet_cost_per_hour(self, num_replicas: int, commitment: Optional[str] = None) -> float:
        """Hourly cost of a fixed fleet (used by the Fig. 10 comparison)."""
        return num_replicas * self.instance.hourly(commitment or self.commitment)

    def cost_reduction_at_equal_throughput(
        self, skywalker_replicas: int, region_local_replicas: int
    ) -> float:
        """Cost saved by matching region-local throughput with fewer replicas
        (the paper's headline "25% cost reduction" in Fig. 10)."""
        if region_local_replicas <= 0:
            raise ValueError("region_local_replicas must be positive")
        return 1.0 - skywalker_replicas / region_local_replicas
