"""Latency-based DNS resolution (the Route53 analogue in §4.1).

SkyWalker publishes one domain name; each client resolves it to the nearest
*healthy* load balancer based on its source region.  The resolver is also
what the failure-recovery path manipulates: when a regional load balancer
dies, its clients are re-resolved to the next-closest one until recovery.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .topology import NetworkTopology

__all__ = ["GeoDNS"]


class GeoDNS:
    """Maps client regions to the nearest healthy endpoint."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology
        #: endpoint name -> region it is deployed in
        self._endpoints: Dict[str, str] = {}
        #: endpoint name -> health flag
        self._healthy: Dict[str, bool] = {}
        self.resolutions = 0
        self.stale_resolutions = 0

    # ------------------------------------------------------------------
    def register(self, endpoint: str, region: str) -> None:
        """Add an endpoint (load balancer) serving from ``region``."""
        self.topology.info(region)  # validates the region exists
        self._endpoints[endpoint] = region
        self._healthy[endpoint] = True

    def deregister(self, endpoint: str) -> None:
        self._endpoints.pop(endpoint, None)
        self._healthy.pop(endpoint, None)

    def set_health(self, endpoint: str, healthy: bool) -> None:
        if endpoint not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        self._healthy[endpoint] = healthy

    def endpoints(self) -> List[str]:
        return list(self._endpoints)

    def healthy_endpoints(self) -> List[str]:
        return [name for name, ok in self._healthy.items() if ok]

    def endpoint_region(self, endpoint: str) -> str:
        return self._endpoints[endpoint]

    # ------------------------------------------------------------------
    def _nearest(self, client_region: str, endpoints: Iterable[str]) -> Optional[str]:
        """The candidate endpoint with the lowest one-way client latency."""
        best: Optional[str] = None
        best_latency = float("inf")
        for endpoint in endpoints:
            latency = self.topology.one_way(client_region, self._endpoints[endpoint])
            if latency < best_latency:
                best, best_latency = endpoint, latency
        return best

    def resolve(self, client_region: str) -> Optional[str]:
        """Return the healthy endpoint with the lowest latency from the client."""
        self.resolutions += 1
        return self._nearest(
            client_region,
            (endpoint for endpoint in self._endpoints if self._healthy[endpoint]),
        )

    def resolve_stale(self, client_region: str) -> Optional[str]:
        """Nearest endpoint *ignoring* health -- the record a resolver cache
        keeps serving during a total outage.  Requests sent to it queue
        against the dead balancer until recovery instead of erroring out,
        which is exactly how a centralized single-balancer deployment
        behaves when its one balancer dies."""
        self.stale_resolutions += 1
        return self._nearest(client_region, self._endpoints)
