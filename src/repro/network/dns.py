"""Latency-based DNS resolution (the Route53 analogue in §4.1).

SkyWalker publishes one domain name; each client resolves it to the nearest
*healthy* load balancer based on its source region.  The resolver is also
what the failure-recovery path manipulates: when a regional load balancer
dies, its clients are re-resolved to the next-closest one until recovery.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .topology import NetworkTopology

__all__ = ["GeoDNS"]


class GeoDNS:
    """Maps client regions to the nearest healthy endpoint."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology
        #: endpoint name -> region it is deployed in
        self._endpoints: Dict[str, str] = {}
        #: endpoint name -> health flag
        self._healthy: Dict[str, bool] = {}
        self.resolutions = 0

    # ------------------------------------------------------------------
    def register(self, endpoint: str, region: str) -> None:
        """Add an endpoint (load balancer) serving from ``region``."""
        self.topology.info(region)  # validates the region exists
        self._endpoints[endpoint] = region
        self._healthy[endpoint] = True

    def deregister(self, endpoint: str) -> None:
        self._endpoints.pop(endpoint, None)
        self._healthy.pop(endpoint, None)

    def set_health(self, endpoint: str, healthy: bool) -> None:
        if endpoint not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        self._healthy[endpoint] = healthy

    def endpoints(self) -> List[str]:
        return list(self._endpoints)

    def healthy_endpoints(self) -> List[str]:
        return [name for name, ok in self._healthy.items() if ok]

    def endpoint_region(self, endpoint: str) -> str:
        return self._endpoints[endpoint]

    # ------------------------------------------------------------------
    def resolve(self, client_region: str) -> Optional[str]:
        """Return the healthy endpoint with the lowest latency from the client."""
        self.resolutions += 1
        best: Optional[str] = None
        best_latency = float("inf")
        for endpoint, region in self._endpoints.items():
            if not self._healthy[endpoint]:
                continue
            latency = self.topology.one_way(client_region, region)
            if latency < best_latency:
                best, best_latency = endpoint, latency
        return best
