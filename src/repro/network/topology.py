"""Cross-region network topology: regions and one-way latency matrix.

The paper deploys clients, load balancers and replicas across three
geographical regions (United States, Europe, Asia) on AWS, and its analysis
(Fig. 2/3) uses finer-grained country/availability-zone traces.  The default
topology here uses publicly documented AWS inter-region round-trip times:
US<->EU ~ 75-90 ms, US<->Asia ~ 120-180 ms, EU<->Asia ~ 200 ms, intra-region
~ 1-2 ms.  Latencies are expressed one-way in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["RegionInfo", "NetworkTopology", "default_topology", "wide_topology"]


@dataclass(frozen=True)
class RegionInfo:
    """Static metadata about a geographical region."""

    name: str
    #: Offset from UTC in hours, used by the diurnal workload generators.
    utc_offset_hours: float
    #: Whether the region falls under GDPR data-residency constraints (§7).
    gdpr: bool = False
    #: Continent label, used by Bedrock-style "same continent only" policies.
    continent: str = "unknown"


class NetworkTopology:
    """One-way latency matrix between named regions.

    Latency lookups are symmetric unless an asymmetric entry was installed
    explicitly.  Unknown same-region pairs fall back to ``intra_region_latency``.
    """

    def __init__(
        self,
        regions: Iterable[RegionInfo],
        latency_s: Mapping[Tuple[str, str], float],
        *,
        intra_region_latency_s: float = 0.001,
    ) -> None:
        if intra_region_latency_s < 0:
            raise ValueError(
                f"intra_region_latency_s must be non-negative, got {intra_region_latency_s!r}"
            )
        self.regions: Dict[str, RegionInfo] = {}
        for region in regions:
            self.add_region(region)
        self.intra_region_latency_s = intra_region_latency_s
        self._latency: Dict[Tuple[str, str], float] = {}
        for (src, dst), value in latency_s.items():
            self.add_link(src, dst, value)

    # ------------------------------------------------------------------
    def add_region(self, region: RegionInfo) -> None:
        if region.name in self.regions:
            raise ValueError(
                f"region {region.name!r} is already registered; "
                "regions are registered exactly once"
            )
        self.regions[region.name] = region

    def add_link(self, src: str, dst: str, one_way_s: float, *, symmetric: bool = True) -> None:
        if src == dst:
            raise ValueError(
                f"self-loop link {src!r} -> {dst!r} is not allowed; intra-region "
                "latency comes from intra_region_latency_s"
            )
        if one_way_s < 0:
            raise ValueError(
                f"latency must be non-negative, got {one_way_s!r} for {src!r} -> {dst!r}"
            )
        self._check_region(src)
        self._check_region(dst)
        self._latency[(src, dst)] = one_way_s
        if symmetric:
            self._latency.setdefault((dst, src), one_way_s)

    def links(self) -> Dict[Tuple[str, str], float]:
        """Copy of the directed latency matrix (``(src, dst) -> seconds``)."""
        return dict(self._latency)

    def _check_region(self, name: str) -> None:
        if name not in self.regions:
            raise KeyError(f"unknown region {name!r}; known: {sorted(self.regions)}")

    # ------------------------------------------------------------------
    def region_names(self) -> List[str]:
        return list(self.regions)

    def info(self, name: str) -> RegionInfo:
        self._check_region(name)
        return self.regions[name]

    def one_way(self, src: str, dst: str) -> float:
        """One-way latency in seconds from ``src`` to ``dst``."""
        self._check_region(src)
        self._check_region(dst)
        if src == dst:
            return self.intra_region_latency_s
        try:
            return self._latency[(src, dst)]
        except KeyError:
            raise KeyError(f"no latency entry for {src!r} -> {dst!r}") from None

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time in seconds."""
        return self.one_way(src, dst) + self.one_way(dst, src)

    def nearest(self, src: str, candidates: Iterable[str]) -> Optional[str]:
        """The candidate region with the lowest one-way latency from ``src``."""
        best: Optional[str] = None
        best_latency = float("inf")
        for candidate in candidates:
            latency = self.one_way(src, candidate)
            if latency < best_latency:
                best, best_latency = candidate, latency
        return best

    def same_continent(self, a: str, b: str) -> bool:
        return self.info(a).continent == self.info(b).continent

    def gdpr_compatible(self, src: str, dst: str) -> bool:
        """True if data originating in ``src`` may be processed in ``dst``.

        GDPR data may not leave GDPR scope; non-GDPR data may go anywhere
        (§7: non-EU traffic can be offloaded to EU regions, not vice versa).
        """
        if not self.info(src).gdpr:
            return True
        return self.info(dst).gdpr


def default_topology() -> NetworkTopology:
    """The paper's three-region evaluation setup (US, Europe, Asia)."""
    regions = [
        RegionInfo("us", utc_offset_hours=-6, gdpr=False, continent="north-america"),
        RegionInfo("eu", utc_offset_hours=+1, gdpr=True, continent="europe"),
        RegionInfo("asia", utc_offset_hours=+8, gdpr=False, continent="asia"),
    ]
    latency = {
        ("us", "eu"): 0.075,
        ("us", "asia"): 0.090,
        ("eu", "asia"): 0.100,
    }
    return NetworkTopology(regions, latency)


def wide_topology() -> NetworkTopology:
    """A finer-grained topology used by the diurnal/cost analyses (Fig. 2/3),
    with one region per country/AZ the WildChat analysis references."""
    regions = [
        RegionInfo("us-east-1", -5, gdpr=False, continent="north-america"),
        RegionInfo("us-east-2", -5, gdpr=False, continent="north-america"),
        RegionInfo("us-west", -8, gdpr=False, continent="north-america"),
        RegionInfo("eu-west", 0, gdpr=True, continent="europe"),
        RegionInfo("eu-central", +1, gdpr=True, continent="europe"),
        RegionInfo("ap-southeast", +8, gdpr=False, continent="asia"),
        RegionInfo("ap-northeast", +9, gdpr=False, continent="asia"),
    ]
    base = {
        ("us-east-1", "us-east-2"): 0.006,
        ("us-east-1", "us-west"): 0.032,
        ("us-east-2", "us-west"): 0.028,
        ("us-east-1", "eu-west"): 0.038,
        ("us-east-1", "eu-central"): 0.045,
        ("us-east-2", "eu-west"): 0.042,
        ("us-east-2", "eu-central"): 0.048,
        ("us-west", "eu-west"): 0.065,
        ("us-west", "eu-central"): 0.072,
        ("eu-west", "eu-central"): 0.008,
        ("us-east-1", "ap-southeast"): 0.105,
        ("us-east-2", "ap-southeast"): 0.108,
        ("us-west", "ap-southeast"): 0.085,
        ("eu-west", "ap-southeast"): 0.088,
        ("eu-central", "ap-southeast"): 0.092,
        ("us-east-1", "ap-northeast"): 0.080,
        ("us-east-2", "ap-northeast"): 0.082,
        ("us-west", "ap-northeast"): 0.055,
        ("eu-west", "ap-northeast"): 0.110,
        ("eu-central", "ap-northeast"): 0.115,
        ("ap-southeast", "ap-northeast"): 0.035,
    }
    return NetworkTopology(regions, base)
