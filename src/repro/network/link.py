"""Message delivery and probing over the simulated wide-area network.

The :class:`Network` is a thin layer between simulation actors: it samples a
latency from the topology (with optional jitter), waits for it, and then
delivers the payload into the destination's inbox store or invokes a
callback.  Probes (heartbeat RTTs) are modelled the same way, which is what
makes "probe all replicas from every load balancer" measurably more
expensive than SkyWalker's two-layer design.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim import Environment, Store
from .topology import NetworkTopology

__all__ = ["Network"]


class Network:
    """Latency-faithful message transport between regions."""

    def __init__(
        self,
        env: Environment,
        topology: NetworkTopology,
        *,
        jitter_fraction: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.topology = topology
        self.jitter_fraction = jitter_fraction
        self.seed = seed
        self._rng = random.Random(seed)
        # Traffic accounting (useful for the architecture ablation).
        self.messages_sent = 0
        self.cross_region_messages = 0
        self.probe_count = 0
        # Link-fault state (driven by repro.faults): blocked directed links
        # drop messages, extra latency models congestion spikes, and gray
        # degrades add loss probability / extra jitter.  All start empty so
        # fault-free runs take byte-identical code paths; the fault RNG is
        # created lazily on the first degrade so fault-free runs draw nothing.
        self._blocked_links: Dict[Tuple[str, str], int] = {}
        self._extra_latency: Dict[Tuple[str, str], float] = {}
        self._link_loss: Dict[Tuple[str, str], float] = {}
        self._link_extra_jitter: Dict[Tuple[str, str], float] = {}
        self._fault_rng: Optional[random.Random] = None
        self.dropped_messages = 0

    # ------------------------------------------------------------------
    # link faults (partitions and latency spikes)
    # ------------------------------------------------------------------
    def set_link_blocked(
        self, src: str, dst: str, blocked: bool = True, *, symmetric: bool = True
    ) -> None:
        """(Un)block a link: messages sent over a blocked link are dropped
        and counted in :attr:`dropped_messages` (a network partition).

        Blocks are reference-counted per direction, so overlapping faults
        compose: a link stays down until *every* fault that blocked it has
        healed (an unblock without a matching block is a no-op).
        """
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            if blocked:
                self._blocked_links[pair] = self._blocked_links.get(pair, 0) + 1
            else:
                count = self._blocked_links.get(pair, 0)
                if count <= 1:
                    self._blocked_links.pop(pair, None)
                else:
                    self._blocked_links[pair] = count - 1

    def link_blocked(self, src: str, dst: str) -> bool:
        """Is the directed ``src -> dst`` link currently partitioned away?"""
        return (src, dst) in self._blocked_links

    def set_edge_down(
        self, u: str, v: str, down: bool = True, *, symmetric: bool = True
    ) -> None:
        """Take one physical link down (or bring it back).

        On the pairwise legacy network an "edge" and a region pair are the
        same thing, so this is exactly :meth:`set_link_blocked`; the routed
        network (:class:`repro.net.RoutedNetwork`) overrides it to down a
        graph edge and re-converge routes around the cut instead.
        """
        self.set_link_blocked(u, v, down, symmetric=symmetric)

    def set_link_extra_latency(
        self, src: str, dst: str, extra_s: float, *, symmetric: bool = True
    ) -> None:
        """Add ``extra_s`` seconds of one-way latency to a link (``0``
        clears the spike).  Jitter applies to the inflated latency, the
        way real congestion inflates variance along with the mean."""
        if extra_s < 0:
            raise ValueError("extra latency must be non-negative")
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            if extra_s == 0:
                self._extra_latency.pop(pair, None)
            else:
                self._extra_latency[pair] = extra_s

    def add_link_extra_latency(
        self, src: str, dst: str, extra_s: float, *, symmetric: bool = True
    ) -> None:
        """Add a latency-spike *contribution* to a link.

        Contributions from overlapping faults sum; each fault later removes
        exactly what it added (:meth:`remove_link_extra_latency`), so spikes
        compose instead of clobbering each other."""
        if extra_s < 0:
            raise ValueError("extra latency must be non-negative")
        if extra_s == 0:
            return
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            self._extra_latency[pair] = self._extra_latency.get(pair, 0.0) + extra_s

    def remove_link_extra_latency(
        self, src: str, dst: str, extra_s: float, *, symmetric: bool = True
    ) -> None:
        """Remove a contribution previously added with
        :meth:`add_link_extra_latency` (clamped at zero)."""
        if extra_s <= 0:
            return
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            remaining = self._extra_latency.get(pair, 0.0) - extra_s
            if remaining <= 1e-12:
                self._extra_latency.pop(pair, None)
            else:
                self._extra_latency[pair] = remaining

    def link_extra_latency(self, src: str, dst: str) -> float:
        """The current latency-spike surcharge on ``src -> dst``."""
        return self._extra_latency.get((src, dst), 0.0)

    # ------------------------------------------------------------------
    # gray link degrades (loss probability + extra jitter)
    # ------------------------------------------------------------------
    def _ensure_fault_rng(self) -> random.Random:
        if self._fault_rng is None:
            # Derived from the network seed but independent of the jitter
            # stream: installing a degrade must not shift the draws that
            # fault-free traffic would have made.
            self._fault_rng = random.Random(
                zlib.crc32(f"link-faults:{self.seed}".encode("utf-8"))
            )
        return self._fault_rng

    def add_link_degrade(
        self,
        src: str,
        dst: str,
        *,
        loss_probability: float = 0.0,
        extra_jitter_fraction: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Degrade a link: per-message loss probability and extra jitter.

        Contributions from overlapping degrades are additive (loss is
        clamped to 1.0 when drawn).  Probes feel the jitter but are never
        lost -- a gray link looks slow, not dead."""
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if extra_jitter_fraction < 0:
            raise ValueError("extra jitter fraction must be non-negative")
        self._ensure_fault_rng()
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            if loss_probability:
                self._link_loss[pair] = (
                    self._link_loss.get(pair, 0.0) + loss_probability
                )
            if extra_jitter_fraction:
                self._link_extra_jitter[pair] = (
                    self._link_extra_jitter.get(pair, 0.0) + extra_jitter_fraction
                )

    def remove_link_degrade(
        self,
        src: str,
        dst: str,
        *,
        loss_probability: float = 0.0,
        extra_jitter_fraction: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Remove a degrade contribution previously added with
        :meth:`add_link_degrade` (clamped at zero)."""
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            for table, amount in (
                (self._link_loss, loss_probability),
                (self._link_extra_jitter, extra_jitter_fraction),
            ):
                if amount <= 0:
                    continue
                remaining = table.get(pair, 0.0) - amount
                if remaining <= 1e-12:
                    table.pop(pair, None)
                else:
                    table[pair] = remaining

    def link_loss_probability(self, src: str, dst: str) -> float:
        """Current per-message loss probability on ``src -> dst``."""
        return min(1.0, self._link_loss.get((src, dst), 0.0))

    def _message_lost(self, src: str, dst: str) -> bool:
        if not self._link_loss:
            return False
        loss = min(1.0, self._link_loss.get((src, dst), 0.0))
        if loss <= 0.0:
            return False
        return self._ensure_fault_rng().random() < loss

    # ------------------------------------------------------------------
    def _sample_base(self, src: str, dst: str) -> float:
        """Pre-jitter one-way latency: topology base, spike surcharges and
        the (fault-RNG) degrade jitter.  The routed network overrides this
        hook to sum per-edge contributions along a multi-hop path; on the
        legacy pairwise matrix it is byte-for-byte the historical code."""
        base = self.topology.one_way(src, dst)
        if self._extra_latency:
            base += self._extra_latency.get((src, dst), 0.0)
        if self._link_extra_jitter:
            # Degrade jitter only ever inflates (congestion variance), and
            # draws from the fault RNG so the nominal jitter stream is
            # untouched by the degrade being installed.
            extra = self._link_extra_jitter.get((src, dst), 0.0)
            if extra > 0:
                base += self._ensure_fault_rng().uniform(0.0, base * extra)
        return base

    def sample_one_way(self, src: str, dst: str) -> float:
        """One-way latency sample (base latency plus bounded jitter)."""
        base = self._sample_base(src, dst)
        if self.jitter_fraction <= 0:
            return base
        jitter = base * self.jitter_fraction
        return max(0.0, base + self._rng.uniform(-jitter, jitter))

    def sample_rtt(self, src: str, dst: str) -> float:
        return self.sample_one_way(src, dst) + self.sample_one_way(dst, src)

    # ------------------------------------------------------------------
    # wire-size hooks (contention model; inert on the pairwise network)
    # ------------------------------------------------------------------
    @property
    def contention_enabled(self) -> bool:
        """Whether messages contend for finite link bandwidth.

        Always ``False`` here: the legacy pairwise network has no shared
        links.  :class:`repro.net.RoutedNetwork` reports ``True`` when any
        graph edge carries finite bandwidth, which is what switches the
        dispatch path into computing wire sizes."""
        return False

    def request_wire_bytes(self, request: Any) -> float:
        """Wire size of a request message (0 on the uncontended network)."""
        return 0.0

    def push_wire_bytes(self, tokens: int) -> float:
        """Wire size of ``tokens`` worth of pushed KV prefix (0 here)."""
        return 0.0

    def response_wire_bytes(self, request: Any) -> float:
        """Wire size of a finished request's response stream (0 here)."""
        return 0.0

    # ------------------------------------------------------------------
    def deliver(
        self,
        item: Any,
        src: str,
        dst: str,
        inbox: Store,
        *,
        extra_delay: float = 0.0,
        size_bytes: float = 0.0,
    ) -> None:
        """Asynchronously place ``item`` into ``inbox`` after the network delay.

        ``extra_delay`` is serialised on top of the sampled link delay --
        used for payload-dependent costs such as shipping pushed KV prefixes
        (the latency sample itself stays payload-independent so RNG draws
        are unchanged).  ``size_bytes`` is the message's wire size; the
        pairwise network ignores it (links here have no bandwidth), the
        routed network serialises it through each finite-bandwidth edge on
        the path.  Messages over a partitioned link are dropped (the
        packet-loss view of a partition): the item never arrives, even if
        the link heals."""
        self.messages_sent += 1
        if src != dst:
            self.cross_region_messages += 1
        if (src, dst) in self._blocked_links:
            self.dropped_messages += 1
            return
        if self._message_lost(src, dst):
            self.dropped_messages += 1
            return
        delay = self.sample_one_way(src, dst) + extra_delay
        self.env.process(self._deliver_later(delay, item, inbox))

    def _deliver_later(self, delay: float, item: Any, inbox: Store):
        yield self.env.timeout(delay)
        yield inbox.put(item)

    def call_after_delay(self, src: str, dst: str, callback: Callable[[], None]) -> None:
        """Run ``callback`` after a one-way delay (used for notifications)."""
        self.messages_sent += 1
        if src != dst:
            self.cross_region_messages += 1
        if (src, dst) in self._blocked_links:
            self.dropped_messages += 1
            return
        if self._message_lost(src, dst):
            self.dropped_messages += 1
            return
        delay = self.sample_one_way(src, dst)
        self.env.process(self._call_later(delay, callback))

    def _call_later(self, delay: float, callback: Callable[[], None]):
        yield self.env.timeout(delay)
        callback()

    # ------------------------------------------------------------------
    def probe(self, src: str, dst: str, read: Callable[[], Any]):
        """A probe generator: yields for one RTT, then returns ``read()``.

        Usage inside a process::

            value = yield from network.probe(my_region, replica.region,
                                             lambda: replica.num_pending)
        """
        self.probe_count += 1
        self.messages_sent += 1
        if src != dst:
            self.cross_region_messages += 1
        yield self.env.timeout(self.sample_rtt(src, dst))
        return read()

    def probe_delay(self, src: str, dst: str):
        """Timeout event covering a full probe round trip."""
        self.probe_count += 1
        return self.env.timeout(self.sample_rtt(src, dst))
