"""Simulated wide-area network: topology, latency-faithful transport, DNS."""

from .dns import GeoDNS
from .link import Network
from .topology import NetworkTopology, RegionInfo, default_topology, wide_topology

__all__ = [
    "NetworkTopology",
    "RegionInfo",
    "default_topology",
    "wide_topology",
    "Network",
    "GeoDNS",
]
