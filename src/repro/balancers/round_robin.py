"""Round Robin (RR): the stateless baseline of §5.1."""

from __future__ import annotations

from typing import List

from ..replica import ReplicaServer
from ..workloads.request import Request
from .base import CentralizedBalancer

__all__ = ["RoundRobinBalancer"]


class RoundRobinBalancer(CentralizedBalancer):
    """Distributes requests to replicas in a fixed cyclic order."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        replica = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return replica
