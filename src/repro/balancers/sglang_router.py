"""SGLang-Router-style cache-aware load balancer (SGL baseline, §5.1).

The SGLang router keeps an approximate prefix tree per replica and routes a
request to the replica with the best prefix match, unless that replica looks
overloaded relative to the others, in which case it falls back to the
shortest queue.  It is a *centralized*, blind-pushing design: the routing
decision is made immediately and the request is sent straight to the chosen
replica, with no admission control at the balancer.
"""

from __future__ import annotations

from typing import List

from ..core.prefix_tree import PrefixTree
from ..replica import ReplicaServer
from ..workloads.request import Request
from .base import CentralizedBalancer

__all__ = ["SGLangRouterBalancer"]


class SGLangRouterBalancer(CentralizedBalancer):
    """Cache-aware routing with load-based fallback, as in SGLang v0.4.

    Parameters
    ----------
    cache_threshold:
        Minimum prefix hit ratio for cache-affinity routing to be used.
    balance_abs_threshold / balance_rel_threshold:
        A replica is considered imbalanced when its outstanding count
        exceeds ``balance_abs_threshold`` *and* exceeds
        ``balance_rel_threshold`` times the least-loaded replica; in that
        case the router ignores affinity and picks the shortest queue.
    """

    def __init__(
        self,
        *args,
        cache_threshold: float = 0.5,
        balance_abs_threshold: int = 32,
        balance_rel_threshold: float = 1.5,
        trie_max_tokens: int = 2_000_000,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.cache_threshold = cache_threshold
        self.balance_abs_threshold = balance_abs_threshold
        self.balance_rel_threshold = balance_rel_threshold
        self.tree: PrefixTree[str] = PrefixTree(max_tokens=trie_max_tokens)

    # ------------------------------------------------------------------
    def _shortest_queue(self, candidates: List[ReplicaServer]) -> ReplicaServer:
        return min(
            candidates,
            key=lambda replica: (self.outstanding.get(replica.name, 0), replica.name),
        )

    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        by_name = {replica.name: replica for replica in candidates}
        loads = [self.outstanding.get(name, 0) for name in by_name]
        min_load = min(loads) if loads else 0

        match = self.tree.best_target(request.prompt_tokens, by_name.keys())
        chosen: ReplicaServer
        if match.target is not None and match.hit_ratio >= self.cache_threshold:
            matched_load = self.outstanding.get(match.target, 0)
            imbalanced = (
                matched_load > self.balance_abs_threshold
                and matched_load > self.balance_rel_threshold * max(min_load, 1)
            )
            chosen = self._shortest_queue(candidates) if imbalanced else by_name[match.target]
        else:
            chosen = self._shortest_queue(candidates)
        self.tree.insert(request.prompt_tokens, chosen.name)
        return chosen
