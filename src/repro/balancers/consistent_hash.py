"""Consistent Hashing (CH): ring-hash on a user-provided key (§5.1).

This is the centralized, single-layer counterpart of SkyWalker-CH: one ring
over every replica in every region, blind pushing, no availability
filtering.
"""

from __future__ import annotations

from typing import Callable, List

from ..core.hash_ring import ConsistentHashRing
from ..replica import ReplicaServer
from ..workloads.request import Request
from .base import CentralizedBalancer

__all__ = ["ConsistentHashBalancer"]


def _default_key(request: Request) -> str:
    return request.session_id


class ConsistentHashBalancer(CentralizedBalancer):
    """Ring-hash based routing keyed on user/session identity."""

    def __init__(self, *args, hash_key_fn: Callable[[Request], str] = _default_key,
                 virtual_nodes: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.hash_key_fn = hash_key_fn
        self.ring: ConsistentHashRing[str] = ConsistentHashRing(virtual_nodes=virtual_nodes)

    def add_replica(self, replica: ReplicaServer) -> None:
        super().add_replica(replica)
        self.ring.add_target(replica.name)

    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        by_name = {replica.name: replica for replica in candidates}
        chosen = self.ring.lookup(self.hash_key_fn(request), by_name.keys())
        if chosen is None:
            # Only possible if every candidate was removed from the ring.
            return candidates[0]
        return by_name[chosen]
