"""Common machinery for the baseline load balancers (§5.1).

The four "single load balancer" baselines the paper compares against -- Round
Robin, Least Load, Consistent Hashing and the SGLang Router -- are all
*centralized*: one balancer instance (deployed in the US region in the
paper's experiments) manages every replica in every region and pushes each
request to a replica immediately on arrival (blind pushing).  The
:class:`CentralizedBalancer` base class implements that shared behaviour;
subclasses only override the replica-selection function.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment, Interrupt, Store
from ..workloads.request import Request, RequestStatus

__all__ = ["CentralizedBalancer"]


class CentralizedBalancer:
    """A single global load balancer using blind pushing.

    Subclasses implement :meth:`select_replica`.  The balancer tracks the
    number of outstanding requests it has sent to each replica (incremented
    at dispatch, decremented when the replica reports completion), which is
    the information the Least Load and SGLang Router policies rely on.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        network: Network,
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.network = network
        self.inbox: Store = Store(env)
        self.healthy = True
        self._replicas: Dict[str, ReplicaServer] = {}
        self.outstanding: Dict[str, int] = {}
        self._process = None

        # Statistics.
        self.received_requests = 0
        self.dispatched_requests = 0

    # ------------------------------------------------------------------
    def add_replica(self, replica: ReplicaServer) -> None:
        self._replicas[replica.name] = replica
        self.outstanding[replica.name] = 0
        replica.add_completion_listener(self._on_replica_complete)

    def replicas(self) -> List[ReplicaServer]:
        return list(self._replicas.values())

    def healthy_replicas(self) -> List[ReplicaServer]:
        return [replica for replica in self._replicas.values() if replica.healthy]

    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._serve())

    # ------------------------------------------------------------------
    @property
    def queue_size(self) -> int:
        return len(self.inbox.items)

    def _on_replica_complete(self, request: Request) -> None:
        name = request.replica_name
        if name in self.outstanding and self.outstanding[name] > 0:
            self.outstanding[name] -= 1

    # ------------------------------------------------------------------
    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        """Pick the replica this request should run on (policy hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _serve(self):
        env = self.env
        try:
            while True:
                request = yield self.inbox.get()
                self.received_requests += 1
                if request.lb_arrival_time is None:
                    request.lb_arrival_time = env.now
                request.status = RequestStatus.QUEUED_AT_LB
                if request.ingress_region is None:
                    request.ingress_region = self.region
                candidates = self.healthy_replicas()
                if not candidates:
                    # No replica alive anywhere: drop back into the inbox and
                    # retry shortly (extremely rare, only in failure tests).
                    yield env.timeout(0.1)
                    yield self.inbox.put(request)
                    continue
                replica = self.select_replica(request, candidates)
                self._dispatch(request, replica)
        except Interrupt:
            return

    def _dispatch(self, request: Request, replica: ReplicaServer) -> None:
        now = self.env.now
        request.lb_dispatch_time = now
        request.serving_region = replica.region
        request.replica_name = replica.name
        request.status = RequestStatus.PENDING_AT_REPLICA
        request.response_network_delay = self.network.topology.one_way(
            replica.region, request.region
        )
        self.outstanding[replica.name] = self.outstanding.get(replica.name, 0) + 1
        self.network.deliver(request, self.region, replica.region, replica.inbox)
        self.dispatched_requests += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name} replicas={len(self._replicas)}>"
