"""Common machinery for the baseline load balancers (§5.1).

The four "single load balancer" baselines the paper compares against -- Round
Robin, Least Load, Consistent Hashing and the SGLang Router -- are all
*centralized*: one balancer instance (deployed in the US region in the
paper's experiments) manages every replica in every region and pushes each
request to a replica immediately on arrival (blind pushing).  The
:class:`CentralizedBalancer` base class implements that shared behaviour on
top of :class:`~repro.core.interface.BalancerBase`; subclasses only override
the replica-selection function.
"""

from __future__ import annotations

from typing import List

from ..core.interface import BalancerBase
from ..replica import ReplicaServer
from ..workloads.request import Request

__all__ = ["CentralizedBalancer"]


class CentralizedBalancer(BalancerBase):
    """A single global load balancer using blind pushing.

    Subclasses implement :meth:`select_replica`.  The balancer tracks the
    number of outstanding requests it has sent to each replica (incremented
    at dispatch, decremented when the replica reports completion), which is
    the information the Least Load and SGLang Router policies rely on.

    When no replica is healthy (only possible in failure tests) requests are
    parked in arrival order and drained FIFO as soon as a replica recovers;
    see :meth:`BalancerBase._serve`.
    """

    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        """Pick the replica this request should run on (policy hook)."""
        raise NotImplementedError
