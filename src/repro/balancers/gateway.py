"""GKE-Gateway-style multi-cluster gateway baseline (§5.1).

GKE Gateway connects several regional clusters behind a unified endpoint:
clients hit the gateway in their own region, and the gateway sends each
request to one of the clusters -- preferring the local one and spilling over
to remote clusters based on coarse capacity/utilisation signals.  It is a
competent general-purpose L7 balancer, but (a) it has no notion of KV-cache
locality and (b) it pushes blindly, with no admission control tied to the
LLM engine's continuous batch.  Those are precisely the two properties the
paper credits for SkyWalker's advantage over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.interface import BalancerBase
from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment
from ..workloads.request import Request

__all__ = ["GatewayBalancer"]


class GatewayBalancer(BalancerBase):
    """One per-region gateway of a multi-cluster (multi-region) deployment.

    Parameters
    ----------
    spill_threshold:
        Average outstanding requests per local replica above which the
        gateway starts sending traffic to the least-loaded remote cluster.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        network: Network,
        *,
        spill_threshold: float = 16.0,
    ) -> None:
        super().__init__(env, name, region, network)
        self.spill_threshold = spill_threshold
        #: cluster (region name) -> replicas in that cluster
        self._clusters: Dict[str, List[ReplicaServer]] = {}
        self._cursors: Dict[str, int] = {}
        self.spilled_requests = 0

    # ------------------------------------------------------------------
    def _register_replica(self, replica: ReplicaServer) -> None:
        self._clusters.setdefault(replica.region, []).append(replica)
        self._cursors.setdefault(replica.region, 0)

    # ------------------------------------------------------------------
    def _cluster_load(self, region: str) -> float:
        replicas = [r for r in self._clusters.get(region, []) if r.healthy]
        if not replicas:
            return float("inf")
        return sum(self.outstanding.get(r.name, 0) for r in replicas) / len(replicas)

    def _pick_cluster(self) -> Optional[str]:
        """Prefer the local cluster; spill to the lightest remote one when
        the local cluster looks saturated."""
        local_load = self._cluster_load(self.region)
        if local_load <= self.spill_threshold:
            if self._clusters.get(self.region):
                return self.region
        candidates = {
            region: self._cluster_load(region)
            for region in self._clusters
            if any(r.healthy for r in self._clusters[region])
        }
        if not candidates:
            return None
        return min(candidates, key=lambda region: (candidates[region], region))

    def _pick_replica(self, region: str) -> Optional[ReplicaServer]:
        replicas = [r for r in self._clusters.get(region, []) if r.healthy]
        if not replicas:
            return None
        cursor = self._cursors.get(region, 0)
        replica = replicas[cursor % len(replicas)]
        self._cursors[region] = cursor + 1
        return replica

    # ------------------------------------------------------------------
    def select_replica(
        self, request: Request, candidates: List[ReplicaServer]
    ) -> Optional[ReplicaServer]:
        cluster = self._pick_cluster()
        if cluster is None:
            return None
        return self._pick_replica(cluster)

    def _note_dispatch(self, request: Request, replica: ReplicaServer) -> None:
        if replica.region != self.region:
            self.spilled_requests += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        clusters = {region: len(reps) for region, reps in self._clusters.items()}
        return f"<GatewayBalancer {self.name} clusters={clusters}>"
