"""GKE-Gateway-style multi-cluster gateway baseline (§5.1).

GKE Gateway connects several regional clusters behind a unified endpoint:
clients hit the gateway in their own region, and the gateway sends each
request to one of the clusters -- preferring the local one and spilling over
to remote clusters based on coarse capacity/utilisation signals.  It is a
competent general-purpose L7 balancer, but (a) it has no notion of KV-cache
locality and (b) it pushes blindly, with no admission control tied to the
LLM engine's continuous batch.  Those are precisely the two properties the
paper credits for SkyWalker's advantage over it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment, Interrupt, Store
from ..workloads.request import Request, RequestStatus

__all__ = ["GatewayBalancer"]


class GatewayBalancer:
    """One per-region gateway of a multi-cluster (multi-region) deployment.

    Parameters
    ----------
    spill_threshold:
        Average outstanding requests per local replica above which the
        gateway starts sending traffic to the least-loaded remote cluster.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        network: Network,
        *,
        spill_threshold: float = 16.0,
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.network = network
        self.spill_threshold = spill_threshold
        self.inbox: Store = Store(env)
        self.healthy = True
        #: cluster (region name) -> replicas in that cluster
        self._clusters: Dict[str, List[ReplicaServer]] = {}
        self.outstanding: Dict[str, int] = {}
        self._cursors: Dict[str, int] = {}
        self._process = None

        self.received_requests = 0
        self.dispatched_requests = 0
        self.spilled_requests = 0

    # ------------------------------------------------------------------
    def add_replica(self, replica: ReplicaServer) -> None:
        self._clusters.setdefault(replica.region, []).append(replica)
        self.outstanding[replica.name] = 0
        self._cursors.setdefault(replica.region, 0)
        replica.add_completion_listener(self._on_replica_complete)

    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._serve())

    @property
    def queue_size(self) -> int:
        return len(self.inbox.items)

    def _on_replica_complete(self, request: Request) -> None:
        name = request.replica_name
        if name in self.outstanding and self.outstanding[name] > 0:
            self.outstanding[name] -= 1

    # ------------------------------------------------------------------
    def _cluster_load(self, region: str) -> float:
        replicas = [r for r in self._clusters.get(region, []) if r.healthy]
        if not replicas:
            return float("inf")
        return sum(self.outstanding.get(r.name, 0) for r in replicas) / len(replicas)

    def _pick_cluster(self) -> Optional[str]:
        """Prefer the local cluster; spill to the lightest remote one when
        the local cluster looks saturated."""
        local_load = self._cluster_load(self.region)
        if local_load <= self.spill_threshold:
            if self._clusters.get(self.region):
                return self.region
        candidates = {
            region: self._cluster_load(region)
            for region in self._clusters
            if any(r.healthy for r in self._clusters[region])
        }
        if not candidates:
            return None
        return min(candidates, key=lambda region: (candidates[region], region))

    def _pick_replica(self, region: str) -> Optional[ReplicaServer]:
        replicas = [r for r in self._clusters.get(region, []) if r.healthy]
        if not replicas:
            return None
        cursor = self._cursors.get(region, 0)
        replica = replicas[cursor % len(replicas)]
        self._cursors[region] = cursor + 1
        return replica

    # ------------------------------------------------------------------
    def _serve(self):
        env = self.env
        try:
            while True:
                request = yield self.inbox.get()
                self.received_requests += 1
                if request.lb_arrival_time is None:
                    request.lb_arrival_time = env.now
                request.status = RequestStatus.QUEUED_AT_LB
                if request.ingress_region is None:
                    request.ingress_region = self.region
                cluster = self._pick_cluster()
                if cluster is None:
                    yield env.timeout(0.1)
                    yield self.inbox.put(request)
                    continue
                replica = self._pick_replica(cluster)
                if replica is None:
                    yield env.timeout(0.1)
                    yield self.inbox.put(request)
                    continue
                if cluster != self.region:
                    self.spilled_requests += 1
                self._dispatch(request, replica)
        except Interrupt:
            return

    def _dispatch(self, request: Request, replica: ReplicaServer) -> None:
        request.lb_dispatch_time = self.env.now
        request.serving_region = replica.region
        request.replica_name = replica.name
        request.status = RequestStatus.PENDING_AT_REPLICA
        request.response_network_delay = self.network.topology.one_way(
            replica.region, request.region
        )
        self.outstanding[replica.name] = self.outstanding.get(replica.name, 0) + 1
        self.network.deliver(request, self.region, replica.region, replica.inbox)
        self.dispatched_requests += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        clusters = {region: len(reps) for region, reps in self._clusters.items()}
        return f"<GatewayBalancer {self.name} clusters={clusters}>"
