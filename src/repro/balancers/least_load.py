"""Least Load (LL): route to the replica with the fewest outstanding requests."""

from __future__ import annotations

from typing import List

from ..replica import ReplicaServer
from ..workloads.request import Request
from .base import CentralizedBalancer

__all__ = ["LeastLoadBalancer"]


class LeastLoadBalancer(CentralizedBalancer):
    """Tracks outstanding requests per replica and picks the minimum.

    Note that "outstanding" counts *requests*, not tokens, which is exactly
    why the paper finds this policy insufficient for LLM workloads: two
    replicas with the same outstanding count can differ wildly in memory
    pressure and remaining work.
    """

    def select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        return min(
            candidates,
            key=lambda replica: (self.outstanding.get(replica.name, 0), replica.name),
        )
