"""Baseline load balancers the paper compares SkyWalker against (§5.1).

Every balancer here implements the :class:`repro.core.interface.Balancer`
protocol on top of :class:`repro.core.interface.BalancerBase`, which is
re-exported for convenience.
"""

from ..core.interface import Balancer, BalancerBase
from .base import CentralizedBalancer
from .consistent_hash import ConsistentHashBalancer
from .gateway import GatewayBalancer
from .least_load import LeastLoadBalancer
from .round_robin import RoundRobinBalancer
from .sglang_router import SGLangRouterBalancer

__all__ = [
    "Balancer",
    "BalancerBase",
    "CentralizedBalancer",
    "RoundRobinBalancer",
    "LeastLoadBalancer",
    "ConsistentHashBalancer",
    "SGLangRouterBalancer",
    "GatewayBalancer",
]
