"""Baseline load balancers the paper compares SkyWalker against (§5.1)."""

from .base import CentralizedBalancer
from .consistent_hash import ConsistentHashBalancer
from .gateway import GatewayBalancer
from .least_load import LeastLoadBalancer
from .round_robin import RoundRobinBalancer
from .sglang_router import SGLangRouterBalancer

__all__ = [
    "CentralizedBalancer",
    "RoundRobinBalancer",
    "LeastLoadBalancer",
    "ConsistentHashBalancer",
    "SGLangRouterBalancer",
    "GatewayBalancer",
]
