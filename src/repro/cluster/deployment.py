"""Multi-region deployment description and construction helpers.

A :class:`Deployment` turns a declarative list of :class:`ReplicaSpec`
entries into live :class:`ReplicaServer` instances attached to a simulation
environment, and keeps the region->replica index every load balancer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..mem import MemoryConfig
from ..network import Network, NetworkTopology, default_topology
from ..replica import LLAMA_8B_L4, ModelProfile, ReplicaServer
from ..sim import Environment
from .pricing import G6_XLARGE, InstancePricing

__all__ = ["ReplicaSpec", "Deployment"]


@dataclass(frozen=True)
class ReplicaSpec:
    """How many replicas of which profile to deploy in one region."""

    region: str
    count: int
    profile: ModelProfile = LLAMA_8B_L4
    instance: InstancePricing = G6_XLARGE


class Deployment:
    """All replicas of a multi-region serving deployment.

    Parameters
    ----------
    env, topology, network:
        Simulation environment and network substrate.  A network is created
        from the topology if not supplied.
    specs:
        One :class:`ReplicaSpec` per (region, profile) group.
    enable_prefix_cache / memory / record_utilization:
        Forwarded to every replica.
    """

    def __init__(
        self,
        env: Environment,
        specs: Sequence[ReplicaSpec],
        *,
        topology: Optional[NetworkTopology] = None,
        network: Optional[Network] = None,
        enable_prefix_cache: bool = True,
        memory: Optional[MemoryConfig] = None,
        record_utilization: bool = False,
    ) -> None:
        self.env = env
        self.topology = topology or default_topology()
        self.network = network or Network(env, self.topology)
        self.specs = list(specs)
        self.replicas: List[ReplicaServer] = []
        self._by_region: Dict[str, List[ReplicaServer]] = {}
        self._instance_of: Dict[str, InstancePricing] = {}
        for spec in self.specs:
            self.topology.info(spec.region)  # validate
            for index in range(spec.count):
                name = f"{spec.region}/replica-{len(self._by_region.get(spec.region, []))}"
                replica = ReplicaServer(
                    env,
                    name,
                    spec.region,
                    spec.profile,
                    enable_prefix_cache=enable_prefix_cache,
                    memory=memory,
                    record_utilization=record_utilization,
                )
                self.replicas.append(replica)
                self._by_region.setdefault(spec.region, []).append(replica)
                self._instance_of[name] = spec.instance

    # ------------------------------------------------------------------
    @property
    def regions(self) -> List[str]:
        """Regions that host at least one replica."""
        return list(self._by_region)

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def replicas_in(self, region: str) -> List[ReplicaServer]:
        """Replicas deployed in ``region`` (empty list if none)."""
        return list(self._by_region.get(region, ()))

    def replica_by_name(self, name: str) -> ReplicaServer:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica named {name!r}")

    def instance_for(self, replica_name: str) -> InstancePricing:
        return self._instance_of[replica_name]

    # ------------------------------------------------------------------
    def hourly_cost(self, commitment: str = "reserved_3yr") -> float:
        """Total fleet cost per hour under a commitment level."""
        return sum(
            self._instance_of[replica.name].hourly(commitment) for replica in self.replicas
        )

    def aggregate_cache_hit_rate(self) -> float:
        """Token-weighted prefix cache hit rate over the whole fleet."""
        total_prompt = sum(r.batcher.total_prompt_tokens for r in self.replicas)
        total_cached = sum(r.batcher.total_cached_tokens for r in self.replicas)
        if total_prompt == 0:
            return 0.0
        return total_cached / total_prompt

    def total_processed_tokens(self) -> int:
        """Prefilled plus generated tokens across the fleet (throughput numerator)."""
        return sum(
            r.batcher.total_prompt_tokens - r.batcher.total_cached_tokens
            + r.batcher.total_generated_tokens
            for r in self.replicas
        )

    def outstanding_by_replica(self) -> Dict[str, int]:
        return {r.name: r.num_outstanding for r in self.replicas}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        per_region = {region: len(reps) for region, reps in self._by_region.items()}
        return f"<Deployment {per_region}>"
