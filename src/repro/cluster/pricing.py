"""GPU instance pricing used by the cost analyses (§2.1, §2.2, Fig. 3b, Fig. 10).

The paper quotes AWS list prices: a ``p5.48xlarge`` (8xH100) three-year
reserved instance at $37.56/hour versus $98.32/hour on demand, and notes
that on-premise deployments can shave up to 46.3% off reserved-cloud cost
over their lifetime.  The evaluation replicas run on single-L4 instances
(``g6.xlarge``-class); we include those too so the Fig. 10 cost numbers can
be expressed in dollars as well as replica counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "InstancePricing",
    "P5_48XLARGE",
    "G6_XLARGE",
    "PRICING_CATALOG",
    "ON_PREMISE_DISCOUNT",
]

#: Lifetime-TCO discount of on-premise clusters relative to reserved cloud
#: instances (AIME 2025 analysis cited by the paper).
ON_PREMISE_DISCOUNT = 0.463


@dataclass(frozen=True)
class InstancePricing:
    """Hourly pricing for one GPU instance type."""

    name: str
    gpus_per_instance: int
    gpu_type: str
    on_demand_hourly: float
    reserved_1yr_hourly: float
    reserved_3yr_hourly: float

    @property
    def on_premise_hourly(self) -> float:
        """Amortised on-premise hourly cost (reserved minus the TCO discount)."""
        return self.reserved_3yr_hourly * (1.0 - ON_PREMISE_DISCOUNT)

    def hourly(self, commitment: str) -> float:
        """Hourly price for a commitment level.

        ``commitment`` is one of ``"on_demand"``, ``"reserved_1yr"``,
        ``"reserved_3yr"`` or ``"on_premise"``.
        """
        table = {
            "on_demand": self.on_demand_hourly,
            "reserved_1yr": self.reserved_1yr_hourly,
            "reserved_3yr": self.reserved_3yr_hourly,
            "on_premise": self.on_premise_hourly,
        }
        try:
            return table[commitment]
        except KeyError:
            raise ValueError(
                f"unknown commitment {commitment!r}; expected one of {sorted(table)}"
            ) from None


#: 8xH100 instance quoted in §2.1.
P5_48XLARGE = InstancePricing(
    name="p5.48xlarge",
    gpus_per_instance=8,
    gpu_type="H100",
    on_demand_hourly=98.32,
    reserved_1yr_hourly=57.96,
    reserved_3yr_hourly=37.56,
)

#: Single-L4 instance class used for the evaluation replicas.
G6_XLARGE = InstancePricing(
    name="g6.xlarge",
    gpus_per_instance=1,
    gpu_type="L4",
    on_demand_hourly=0.8048,
    reserved_1yr_hourly=0.5071,
    reserved_3yr_hourly=0.3476,
)

PRICING_CATALOG: Dict[str, InstancePricing] = {
    P5_48XLARGE.name: P5_48XLARGE,
    G6_XLARGE.name: G6_XLARGE,
}
