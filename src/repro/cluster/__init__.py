"""Multi-region cluster: deployments, pricing, clients and the frontend."""

from .client import ClosedLoopClient, Frontend, OpenLoopClient, RequestTracker, TraceReplayClient
from .deployment import Deployment, ReplicaSpec
from .pricing import (
    G6_XLARGE,
    ON_PREMISE_DISCOUNT,
    P5_48XLARGE,
    PRICING_CATALOG,
    InstancePricing,
)

__all__ = [
    "Deployment",
    "ReplicaSpec",
    "InstancePricing",
    "PRICING_CATALOG",
    "P5_48XLARGE",
    "G6_XLARGE",
    "ON_PREMISE_DISCOUNT",
    "RequestTracker",
    "Frontend",
    "ClosedLoopClient",
    "OpenLoopClient",
    "TraceReplayClient",
]
