"""Clients, the request tracker, and the DNS-backed frontend.

The evaluation drives the system with *closed-loop* clients: each client
executes one program at a time (§5.1), sending the next stage only after the
previous stage's responses arrived.  Clients talk to whatever load balancer
their region's DNS resolution points at; for centralized baselines that is a
single balancer in the US, for SkyWalker and the gateway baseline it is the
balancer in their own region.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from ..network import GeoDNS, Network
from ..sim import Environment, Event
from ..workloads.program import Program
from ..workloads.request import Request, RequestStatus

__all__ = [
    "RequestTracker",
    "Frontend",
    "ClosedLoopClient",
    "OpenLoopClient",
    "TraceReplayClient",
]


class BalancerEndpoint(Protocol):
    """Anything that can receive requests over the network."""

    name: str
    region: str

    @property
    def inbox(self):  # pragma: no cover - protocol definition only
        ...


class RequestTracker:
    """Bridges replica completion callbacks back to waiting clients.

    Every request gets a simulation event; replica completion listeners call
    :meth:`complete` which triggers the event so the issuing client can move
    on to its next stage.  The tracker also keeps the global list of finished
    requests that the metrics layer consumes.
    """

    def __init__(self, env: Environment, *, retain_completed: bool = True) -> None:
        self.env = env
        self._events: Dict[int, Event] = {}
        self.completed: List[Request] = []
        self.failed: List[Request] = []
        #: When False (the streaming/macrobench mode), finished requests are
        #: only *counted* -- the ``completed``/``failed`` lists stay empty so
        #: a million-request day does not accumulate O(n) request objects.
        self.retain_completed = retain_completed
        self.num_completed = 0
        self.num_failed = 0
        self.output_tokens_completed = 0

    def register(self, request: Request) -> Event:
        event = self.env.event()
        self._events[request.request_id] = event
        return event

    def complete(self, request: Request) -> None:
        self.num_completed += 1
        self.output_tokens_completed += request.output_len
        if self.retain_completed:
            self.completed.append(request)
        event = self._events.pop(request.request_id, None)
        if event is not None and not event.triggered:
            event.succeed(request)

    def fail(self, request: Request) -> None:
        self.num_failed += 1
        if self.retain_completed:
            self.failed.append(request)
        event = self._events.pop(request.request_id, None)
        if event is not None and not event.triggered:
            event.succeed(request)

    @property
    def outstanding(self) -> int:
        return len(self._events)


class Frontend:
    """The client-facing entry point: DNS resolution plus request dispatch."""

    def __init__(self, env: Environment, network: Network, dns: Optional[GeoDNS] = None) -> None:
        self.env = env
        self.network = network
        self.dns = dns or GeoDNS(network.topology)
        self._balancers: Dict[str, BalancerEndpoint] = {}
        #: Requests dispatched on a stale DNS record because no balancer was
        #: healthy (total outage; only possible under fault injection).
        self.stale_dispatches = 0

    def register_balancer(self, balancer: BalancerEndpoint) -> None:
        """Expose a load balancer under the shared domain name."""
        self._balancers[balancer.name] = balancer
        self.dns.register(balancer.name, balancer.region)

    def set_health(self, balancer_name: str, healthy: bool) -> None:
        self.dns.set_health(balancer_name, healthy)

    def balancer(self, name: str) -> BalancerEndpoint:
        return self._balancers[name]

    def balancers(self) -> List[BalancerEndpoint]:
        return list(self._balancers.values())

    def dispatch(self, request: Request) -> None:
        """Resolve the nearest healthy balancer and send the request to it.

        When *no* balancer is healthy (a total outage under fault
        injection) the resolver cache keeps answering with the stale
        nearest record: the request is delivered to the dead balancer's
        inbox and waits there for recovery, rather than erroring out."""
        endpoint = self.dns.resolve(request.region)
        if endpoint is None:
            endpoint = self.dns.resolve_stale(request.region)
            if endpoint is None:
                raise RuntimeError("no load balancer registered")
            self.stale_dispatches += 1
        balancer = self._balancers[endpoint]
        request.status = RequestStatus.QUEUED_AT_LB
        request.ingress_region = balancer.region
        self.network.deliver(
            request,
            request.region,
            balancer.region,
            balancer.inbox,
            size_bytes=self.network.request_wire_bytes(request),
        )


class ClosedLoopClient:
    """A client that executes programs one stage at a time.

    Parameters
    ----------
    programs:
        Programs to run back to back.  Requests within a stage are issued
        concurrently; the next stage starts only after every response of the
        current stage has been received by the client.  Materialized
        sequences (lists/tuples) are copied as before; any other iterable
        (e.g. a :class:`~repro.workloads.streams.ProgramStream` view) is
        consumed lazily, one program at a time, so a streamed workload never
        materializes its programs up front.
    think_time_s:
        Optional pause between consecutive stages (user "thinking").
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        frontend: Frontend,
        tracker: RequestTracker,
        programs: Iterable[Program],
        *,
        think_time_s: float = 0.0,
        start_delay_s: float = 0.0,
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.frontend = frontend
        self.tracker = tracker
        if isinstance(programs, (list, tuple)):
            self.programs: Iterable[Program] = list(programs)
        else:
            self.programs = programs
        self.think_time_s = think_time_s
        self.start_delay_s = start_delay_s
        self.completed_programs = 0
        self.issued_requests = 0
        self.process = env.process(self._run())

    def _run(self):
        env = self.env
        if self.start_delay_s > 0:
            yield env.timeout(self.start_delay_s)
        for program in self.programs:
            for stage in program.stages:
                events = []
                for request in stage:
                    request.region = self.region
                    request.sent_time = env.now
                    request.arrival_time = env.now
                    events.append(self.tracker.register(request))
                    self.frontend.dispatch(request)
                    self.issued_requests += 1
                if events:
                    yield env.all_of(events)
                    # Responses travel back over the network before the client
                    # can act on them.
                    response_delay = max(
                        request.response_network_delay for request in stage
                    )
                    if response_delay > 0:
                        yield env.timeout(response_delay)
                if self.think_time_s > 0:
                    yield env.timeout(self.think_time_s)
            self.completed_programs += 1


class TraceReplayClient:
    """An open-loop client replaying a timed request stream.

    ``timed_requests`` yields ``(arrival_time_s, Request)`` pairs with
    non-decreasing arrival times (absolute simulation seconds, e.g. a
    :class:`~repro.workloads.streams.DiurnalRequestStream`).  The stream is
    consumed lazily -- one request object lives at a time -- which is what
    lets a full-day, million-request diurnal trace drive the frontend in
    O(1) memory.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        frontend: Frontend,
        tracker: RequestTracker,
        timed_requests: Iterable[Tuple[float, Request]],
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.frontend = frontend
        self.tracker = tracker
        self.timed_requests = timed_requests
        self.issued_requests = 0
        self.process = env.process(self._run())

    def _run(self):
        env = self.env
        for arrival, request in self.timed_requests:
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            request.region = self.region
            request.sent_time = env.now
            request.arrival_time = env.now
            self.tracker.register(request)
            self.frontend.dispatch(request)
            self.issued_requests += 1


class OpenLoopClient:
    """A client that issues requests at a fixed average rate (Poisson arrivals).

    Used by the diurnal experiments where load is defined by a trace rather
    than by client concurrency.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        frontend: Frontend,
        tracker: RequestTracker,
        requests: Sequence[Request],
        *,
        rate_per_s: float,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.env = env
        self.name = name
        self.region = region
        self.frontend = frontend
        self.tracker = tracker
        self.requests = list(requests)
        self.rate_per_s = rate_per_s
        self._rng = random.Random(seed)
        self.issued_requests = 0
        self.process = env.process(self._run())

    def _run(self):
        env = self.env
        for request in self.requests:
            yield env.timeout(self._rng.expovariate(self.rate_per_s))
            request.region = self.region
            request.sent_time = env.now
            request.arrival_time = env.now
            self.tracker.register(request)
            self.frontend.dispatch(request)
            self.issued_requests += 1
