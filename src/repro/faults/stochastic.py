"""Seeded stochastic fault processes: MTBF/MTTR renewal chains.

A :class:`RenewalFaultProcess` describes faults arriving as a renewal
process -- exponential or Weibull interarrivals with mean ``mtbf_s``, each
followed by a repair drawn with mean ``mttr_s``.  The process owns its own
``random.Random`` stream, derived from ``(process seed, run seed)`` with
the house ``zlib.crc32`` mixing rule, so:

* faults never consume draws from the workload or network RNG streams
  (installing a process does not perturb fault-free traffic),
* the same ``(process, run seed, duration)`` always compiles to the same
  concrete :class:`~repro.faults.schedule.FaultSchedule`, bit for bit,
  serial or inside any sweep worker (fork *or* spawn),
* different process seeds -- or different run seeds -- yield different
  schedules, which is what makes cross-seed mean/CI resilience statistics
  meaningful.

Compilation happens once, eagerly, in ``run_experiment`` right before the
injector is built; the simulation itself only ever sees a plain
deterministic schedule.  A compiled-empty process (nothing fires within
``duration_s``) behaves exactly like ``faults=None``.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass, field
from typing import List, Tuple

from .schedule import CompilesToFaultSchedule, FaultEvent, FaultSchedule
from .spec import FaultSpec

__all__ = ["RenewalFaultProcess", "StochasticFaultSchedule"]

_DISTRIBUTIONS = ("exponential", "weibull")


@dataclass(frozen=True)
class RenewalFaultProcess:
    """One stochastic fault stream: a template fault fired on renewals.

    Parameters
    ----------
    fault:
        Template spec.  It must carry a ``duration_s`` field; each
        occurrence is emitted as a copy with ``duration_s`` set to that
        occurrence's drawn repair time (MTTR), so the fault heals itself.
    mtbf_s / mttr_s:
        Mean time between failures / to repair, in seconds.
    seed:
        The process's own RNG seed.  Mixed with the run seed at compile
        time, so two processes in one scenario (or one process across
        seeds) draw independent streams.
    distribution:
        ``"exponential"`` (memoryless) or ``"weibull"`` (shape > 1 models
        wear-out clustering; shape < 1 infant mortality).
    shape:
        Weibull shape parameter (ignored for exponential).
    start_s:
        Earliest time the first failure may begin.
    max_events:
        Safety cap on occurrences per compile.
    """

    fault: FaultSpec
    mtbf_s: float = 60.0
    mttr_s: float = 10.0
    seed: int = 0
    distribution: str = "exponential"
    shape: float = 1.5
    start_s: float = 0.0
    max_events: int = 1000

    def __post_init__(self) -> None:
        if not isinstance(self.fault, FaultSpec):
            raise TypeError(
                f"fault must be a FaultSpec, got {type(self.fault).__name__}"
            )
        if not any(f.name == "duration_s" for f in dataclasses.fields(self.fault)):
            raise ValueError(
                f"renewal template {self.fault.kind!r} has no duration_s "
                "field; the process cannot schedule its repairs"
            )
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {_DISTRIBUTIONS}"
            )
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.max_events < 1:
            raise ValueError("max_events must be at least 1")

    # ------------------------------------------------------------------
    def _rng(self, run_seed: int) -> random.Random:
        token = f"renewal:{self.seed}:{run_seed}:{self.fault.kind}"
        return random.Random(zlib.crc32(token.encode("utf-8")))

    def _draw(self, rng: random.Random, mean: float) -> float:
        if self.distribution == "weibull":
            # Scale chosen so the Weibull mean equals ``mean``:
            # E[X] = scale * Gamma(1 + 1/shape).
            try:
                from math import gamma

                scale = mean / gamma(1.0 + 1.0 / self.shape)
            except (OverflowError, ValueError):
                scale = mean
            return rng.weibullvariate(scale, self.shape)
        return rng.expovariate(1.0 / mean)

    def compile_events(self, duration_s: float, run_seed: int) -> List[FaultEvent]:
        """The process's concrete occurrences for one run, in time order."""
        rng = self._rng(run_seed)
        events: List[FaultEvent] = []
        t = self.start_s
        while len(events) < self.max_events:
            t += self._draw(rng, self.mtbf_s)
            if t >= duration_s:
                break
            repair = self._draw(rng, self.mttr_s)
            events.append(
                FaultEvent(t, dataclasses.replace(self.fault, duration_s=repair))
            )
            t += repair
        return events


@dataclass(frozen=True)
class StochasticFaultSchedule(CompilesToFaultSchedule):
    """A bundle of renewal processes (plus optional fixed events).

    Usable anywhere ``faults=`` is accepted: ``run_experiment`` compiles it
    with the run's duration and seed right before injection.  ``base``
    contributes fixed events and the controller knobs; process events are
    appended in process order, and identical-time ties keep that order
    (``FaultSchedule.sorted_events`` is stable).
    """

    processes: Tuple[RenewalFaultProcess, ...] = ()
    base: FaultSchedule = field(default_factory=FaultSchedule)

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        for process in self.processes:
            if not isinstance(process, RenewalFaultProcess):
                raise TypeError(
                    "processes must be RenewalFaultProcess instances, got "
                    f"{type(process).__name__}"
                )
        if not isinstance(self.base, FaultSchedule):
            raise TypeError(
                f"base must be a FaultSchedule, got {type(self.base).__name__}"
            )

    def compile(self, *, duration_s: float, seed: int) -> FaultSchedule:
        events = list(self.base.events)
        for process in self.processes:
            events.extend(process.compile_events(duration_s, seed))
        return dataclasses.replace(self.base, events=tuple(events))
