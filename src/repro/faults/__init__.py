"""Deterministic fault injection: declarative resilience scenarios.

The paper's headline resilience claim -- SkyWalker degrades gracefully
under balancer and replica failures (§4.2, exercised ad hoc by the old
failover demo) -- becomes a reusable subsystem here:

* :class:`FaultSpec` subclasses (:class:`ReplicaCrash`,
  :class:`BalancerFailure`, :class:`RegionPartition`,
  :class:`LinkLatencySpike`, ...) describe faults as pure, picklable data;
  :func:`register_fault` plugs in third-party kinds by name, mirroring the
  pushing/constraint/selection registries.
* :class:`FaultSchedule` composes timed events into a scenario;
  :func:`register_fault_schedule` names whole scenarios so sweeps can ship
  just a string into worker processes.  :mod:`repro.faults.scenarios`
  registers a library of ready-made ones (``rolling-upgrade``,
  ``lossy-wan``, ``spot-eviction-wave``, ...).
* Gray failures are first-class: :class:`ReplicaDegrade` slows a replica
  without killing it, :class:`LinkDegrade` adds loss and jitter to a link,
  and :class:`RenewalFaultProcess` / :class:`StochasticFaultSchedule`
  compile seeded MTBF/MTTR renewal chains into concrete schedules per run
  seed.
* :class:`FaultInjector` executes a schedule deterministically against a
  live experiment, running a :class:`~repro.core.controller.ServiceController`
  for SkyWalker-family balancer failures so §4.2 failover happens end to
  end.  The resulting resilience metrics (outage goodput, time to
  recovery, per-phase tail latency, ...) land on
  ``RunMetrics.resilience``.

Every experiment entry point takes the schedule directly::

    from repro.experiments import REGISTRY, run_sweep, build_arena_workload
    from repro.faults import BalancerFailure, FaultSchedule

    schedule = FaultSchedule.single(30.0, BalancerFailure(region="eu",
                                                          duration_s=20.0))
    sweep = run_sweep([REGISTRY.spec("skywalker")],
                      [build_arena_workload(scale=0.1)],
                      faults=schedule, workers=4)
    print(sweep.get("chatbot-arena", "skywalker").resilience.to_dict())

Determinism contract: ``faults=None`` (or an empty schedule) is
bit-identical to a run without any fault machinery, and the same
schedule + seed reproduces the same metrics bit for bit, serial or under
``workers=N``.
"""

from .injector import FaultContext, FaultInjector, FaultRecord
from .schedule import (
    CompilesToFaultSchedule,
    FaultEvent,
    FaultSchedule,
    FaultsLike,
    make_fault_schedule,
    register_fault_schedule,
    registered_fault_schedules,
    resolve_fault_schedule,
    unregister_fault_schedule,
)
from .spec import (
    BalancerFailure,
    BalancerRecovery,
    FaultEntry,
    FaultSpec,
    LinkDegrade,
    LinkDown,
    LinkLatencySpike,
    LinkUp,
    RegionPartition,
    ReplicaCrash,
    ReplicaDegrade,
    ReplicaRecover,
    ReplicaRestore,
    make_fault,
    register_fault,
    registered_faults,
    resolve_fault,
    unregister_fault,
)
from .stochastic import RenewalFaultProcess, StochasticFaultSchedule
from . import scenarios  # noqa: F401  (imported for registration side effect)

__all__ = [
    # specs + fault registry
    "FaultSpec",
    "ReplicaCrash",
    "ReplicaRecover",
    "ReplicaDegrade",
    "ReplicaRestore",
    "BalancerFailure",
    "BalancerRecovery",
    "RegionPartition",
    "LinkLatencySpike",
    "LinkDegrade",
    "LinkDown",
    "LinkUp",
    "FaultEntry",
    "register_fault",
    "unregister_fault",
    "registered_faults",
    "resolve_fault",
    "make_fault",
    # schedules + schedule registry
    "FaultEvent",
    "FaultSchedule",
    "CompilesToFaultSchedule",
    "FaultsLike",
    "register_fault_schedule",
    "unregister_fault_schedule",
    "registered_fault_schedules",
    "make_fault_schedule",
    "resolve_fault_schedule",
    # stochastic processes
    "RenewalFaultProcess",
    "StochasticFaultSchedule",
    # execution
    "FaultInjector",
    "FaultContext",
    "FaultRecord",
]
