"""Named chaos scenarios: a curated library of registered fault schedules.

Every scenario here is a :func:`~repro.faults.schedule.register_fault_schedule`
factory, so it can be used anywhere a schedule object is accepted --
``run_experiment(..., faults="lossy-wan")``,
``run_sweep(..., faults="spot-eviction-wave")`` -- and resolves by name
inside sweep worker processes.  All knobs are keyword arguments with
defaults sized for the small three-region test clusters (one replica per
region); real experiments override ``replicas=``, times and levels.

Deterministic scenarios return a concrete
:class:`~repro.faults.schedule.FaultSchedule`; stochastic ones return a
:class:`~repro.faults.stochastic.StochasticFaultSchedule` that compiles
per run seed, so multi-seed sweeps see genuinely different fault timings
while each seed stays bit-reproducible.  Scenarios compose: schedules
merge with :meth:`FaultSchedule.merge`, and ``gray-failure-mix`` below is
itself built from smaller pieces.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .schedule import FaultEvent, FaultSchedule, register_fault_schedule
from .spec import (
    BalancerFailure,
    LinkDegrade,
    LinkLatencySpike,
    RegionPartition,
    ReplicaCrash,
    ReplicaDegrade,
)
from .stochastic import RenewalFaultProcess, StochasticFaultSchedule

__all__ = ["DEFAULT_REGIONS"]

DEFAULT_REGIONS: Tuple[str, ...] = ("us", "eu", "asia")


# ----------------------------------------------------------------------
# planned-maintenance / outage scenarios
# ----------------------------------------------------------------------
@register_fault_schedule("rolling-upgrade")
def _rolling_upgrade(
    start_s: float = 10.0,
    drain_s: float = 8.0,
    stagger_s: float = 12.0,
    regions: Sequence[str] = DEFAULT_REGIONS,
    replicas: int = 1,
    preserve_disk: bool = True,
) -> FaultSchedule:
    """Restart every replica once, one at a time, region by region.

    Each replica is down for ``drain_s`` and restarts ``stagger_s`` after
    the previous one began.  ``preserve_disk`` models an upgrade that
    keeps durable KV offload across the restart.
    """
    events = []
    t = start_s
    for region in regions:
        for index in range(replicas):
            events.append(
                FaultEvent(
                    t,
                    ReplicaCrash(
                        region=region,
                        index=index,
                        duration_s=drain_s,
                        preserve_disk=preserve_disk,
                    ),
                )
            )
            t += stagger_s
    return FaultSchedule(events=tuple(events))


@register_fault_schedule("zone-outage-correlated")
def _zone_outage_correlated(
    at_s: float = 20.0,
    duration_s: float = 15.0,
    region: str = "eu",
    replicas: int = 1,
) -> FaultSchedule:
    """A whole zone goes dark at once: every replica *and* the balancer in
    ``region`` fail together (correlated, not independent, failures)."""
    events = [
        FaultEvent(
            at_s, ReplicaCrash(region=region, index=index, duration_s=duration_s)
        )
        for index in range(replicas)
    ]
    events.append(FaultEvent(at_s, BalancerFailure(region=region, duration_s=duration_s)))
    return FaultSchedule(events=tuple(events), recovery_time_s=duration_s)


@register_fault_schedule("region-partition-flap")
def _region_partition_flap(
    start_s: float = 15.0,
    up_s: float = 5.0,
    down_s: float = 5.0,
    flaps: int = 3,
    a: str = "us",
    b: Optional[str] = "eu",
) -> FaultSchedule:
    """A flapping WAN link: the ``a``<->``b`` partition opens and heals
    ``flaps`` times (``down_s`` blocked, ``up_s`` healthy, repeat)."""
    events = []
    t = start_s
    for _ in range(flaps):
        events.append(FaultEvent(t, RegionPartition(a=a, b=b, duration_s=down_s)))
        t += down_s + up_s
    return FaultSchedule(events=tuple(events))


# ----------------------------------------------------------------------
# gray-failure scenarios (slow-but-alive)
# ----------------------------------------------------------------------
@register_fault_schedule("thermal-throttle")
def _thermal_throttle(
    at_s: float = 10.0,
    duration_s: Optional[float] = 30.0,
    region: str = "us",
    index: int = 0,
    level: str = "thermal-throttle",
) -> FaultSchedule:
    """One replica hits its thermal limit and runs slow for a while."""
    return FaultSchedule.single(
        at_s,
        ReplicaDegrade(region=region, index=index, level=level, duration_s=duration_s),
    )


@register_fault_schedule("power-cap-region")
def _power_cap_region(
    at_s: float = 10.0,
    duration_s: Optional[float] = 40.0,
    region: str = "us",
    replicas: int = 1,
    level: str = "power-cap",
) -> FaultSchedule:
    """A datacenter-wide RAPL power cap: every replica in ``region`` drops
    to the ``power-cap`` performance level at once."""
    events = tuple(
        FaultEvent(
            at_s,
            ReplicaDegrade(
                region=region, index=index, level=level, duration_s=duration_s
            ),
        )
        for index in range(replicas)
    )
    return FaultSchedule(events=events)


@register_fault_schedule("slow-replica-epidemic")
def _slow_replica_epidemic(
    start_s: float = 10.0,
    spread_s: float = 8.0,
    duration_s: float = 25.0,
    regions: Sequence[str] = DEFAULT_REGIONS,
    replicas: int = 1,
    level: str = "thermal-throttle",
) -> FaultSchedule:
    """Slowness spreads through the fleet: replicas degrade one after
    another (``spread_s`` apart), each recovering ``duration_s`` later --
    so the set of slow replicas grows, overlaps, then drains."""
    events = []
    t = start_s
    for region in regions:
        for index in range(replicas):
            events.append(
                FaultEvent(
                    t,
                    ReplicaDegrade(
                        region=region, index=index, level=level, duration_s=duration_s
                    ),
                )
            )
            t += spread_s
    return FaultSchedule(events=tuple(events))


@register_fault_schedule("flash-crowd-throttle")
def _flash_crowd_throttle(
    at_s: float = 15.0,
    duration_s: float = 20.0,
    hot_region: str = "us",
    replicas: int = 1,
    level: str = "thermal-throttle",
    spill_extra_s: float = 0.05,
) -> FaultSchedule:
    """A flash crowd's side effects: the hot region's replicas thermal
    throttle under sustained load while its egress links congest (extra
    latency), so spilled traffic pays more to leave just as local capacity
    drops."""
    events = [
        FaultEvent(
            at_s,
            ReplicaDegrade(
                region=hot_region, index=index, level=level, duration_s=duration_s
            ),
        )
        for index in range(replicas)
    ]
    for other in DEFAULT_REGIONS:
        if other != hot_region:
            events.append(
                FaultEvent(
                    at_s,
                    LinkLatencySpike(
                        a=hot_region, b=other, extra_s=spill_extra_s, duration_s=duration_s
                    ),
                )
            )
    return FaultSchedule(events=tuple(events))


@register_fault_schedule("lossy-wan")
def _lossy_wan(
    at_s: float = 10.0,
    duration_s: Optional[float] = 30.0,
    loss_probability: float = 0.05,
    extra_jitter_fraction: float = 0.5,
    links: Sequence[Tuple[str, str]] = (("us", "eu"), ("eu", "asia")),
) -> FaultSchedule:
    """Flaky wide-area links: per-message loss and inflated jitter on the
    given region pairs (probes get slow, traffic gets dropped)."""
    events = tuple(
        FaultEvent(
            at_s,
            LinkDegrade(
                a=a,
                b=b,
                loss_probability=loss_probability,
                extra_jitter_fraction=extra_jitter_fraction,
                duration_s=duration_s,
            ),
        )
        for a, b in links
    )
    return FaultSchedule(events=events)


@register_fault_schedule("wan-brownout")
def _wan_brownout(
    at_s: float = 12.0,
    duration_s: float = 25.0,
    a: str = "us",
    b: str = "eu",
    extra_s: float = 0.15,
    loss_probability: float = 0.02,
) -> FaultSchedule:
    """A browning-out link: a latency spike *and* a gray degrade on the
    same edge at the same instant (exercises identical-timestamp fault
    composition -- neither op may clobber the other)."""
    return FaultSchedule(
        events=(
            FaultEvent(at_s, LinkLatencySpike(a=a, b=b, extra_s=extra_s, duration_s=duration_s)),
            FaultEvent(
                at_s,
                LinkDegrade(
                    a=a,
                    b=b,
                    loss_probability=loss_probability,
                    extra_jitter_fraction=0.3,
                    duration_s=duration_s,
                ),
            ),
        )
    )


@register_fault_schedule("gray-failure-mix")
def _gray_failure_mix(
    at_s: float = 10.0,
    duration_s: float = 30.0,
    slow_region: str = "us",
    lossy_a: str = "eu",
    lossy_b: str = "asia",
    level: str = "power-cap",
) -> FaultSchedule:
    """The kitchen-sink gray scenario: a slow replica plus a lossy link
    plus a latency spike, composed from the smaller scenario factories."""
    slow = _thermal_throttle(
        at_s=at_s, duration_s=duration_s, region=slow_region, level=level
    )
    lossy = _lossy_wan(
        at_s=at_s, duration_s=duration_s, links=((lossy_a, lossy_b),)
    )
    spike = FaultSchedule.single(
        at_s, LinkLatencySpike(a=slow_region, b=lossy_a, extra_s=0.1, duration_s=duration_s)
    )
    return slow.merge(lossy).merge(spike)


# ----------------------------------------------------------------------
# stochastic scenarios (compile per run seed)
# ----------------------------------------------------------------------
@register_fault_schedule("spot-eviction-wave")
def _spot_eviction_wave(
    mtbf_s: float = 40.0,
    mttr_s: float = 8.0,
    seed: int = 0,
    regions: Sequence[str] = DEFAULT_REGIONS,
    index: int = 0,
    preserve_disk: bool = False,
) -> StochasticFaultSchedule:
    """Spot-instance evictions: each region's replica is reclaimed at
    exponential intervals and replaced ``mttr_s`` later.  Per-region
    processes draw independent streams (the seed is salted by region)."""
    processes = tuple(
        RenewalFaultProcess(
            fault=ReplicaCrash(region=region, index=index, preserve_disk=preserve_disk),
            mtbf_s=mtbf_s,
            mttr_s=mttr_s,
            seed=seed + salt,
        )
        for salt, region in enumerate(regions)
    )
    return StochasticFaultSchedule(processes=processes)


@register_fault_schedule("replica-crash-storm")
def _replica_crash_storm(
    mtbf_s: float = 30.0,
    mttr_s: float = 6.0,
    seed: int = 0,
    region: str = "us",
    index: int = 0,
    shape: float = 0.7,
) -> StochasticFaultSchedule:
    """A crash-looping replica: Weibull interarrivals with shape < 1
    (infant mortality), so crashes cluster in bursts."""
    return StochasticFaultSchedule(
        processes=(
            RenewalFaultProcess(
                fault=ReplicaCrash(region=region, index=index),
                mtbf_s=mtbf_s,
                mttr_s=mttr_s,
                seed=seed,
                distribution="weibull",
                shape=shape,
            ),
        )
    )


@register_fault_schedule("gray-throttle-renewal")
def _gray_throttle_renewal(
    mtbf_s: float = 45.0,
    mttr_s: float = 15.0,
    seed: int = 0,
    region: str = "us",
    index: int = 0,
    level: str = "thermal-throttle",
) -> StochasticFaultSchedule:
    """Recurring thermal throttling: one replica oscillates between
    nominal and degraded on a seeded renewal process -- the fig13 headline
    scenario's single-replica building block."""
    return StochasticFaultSchedule(
        processes=(
            RenewalFaultProcess(
                fault=ReplicaDegrade(region=region, index=index, level=level),
                mtbf_s=mtbf_s,
                mttr_s=mttr_s,
                seed=seed,
            ),
        )
    )
