"""Fault specifications and the pluggable fault registry.

A *fault* is described declaratively by a frozen :class:`FaultSpec`
dataclass -- pure data (names, scalars), so fault schedules pickle cleanly
into sweep worker processes, exactly like the typed system specs.  What a
fault *does* is a separate, registered **applier** resolved by the spec's
``kind`` at injection time, mirroring the pushing/constraint/selection
registries in :mod:`repro.core`:

.. code-block:: python

    from repro.faults import FaultSpec, register_fault

    @dataclass(frozen=True)
    class CoffeeSpill(FaultSpec):
        kind: str = "coffee-spill"
        region: str = "us"

    @register_fault("coffee-spill", spec=CoffeeSpill)
    def apply_coffee_spill(spec, ctx, record):
        ctx.balancer_in(spec.region).fail()

After registration the fault is a first-class citizen: it can appear in any
:class:`~repro.faults.schedule.FaultSchedule`, travels through
``run_sweep(..., faults=...)`` into worker processes (the executor forks,
so runtime registrations carry over) and shows up in the resilience
metrics like the built-ins.

Built-in kinds (appliers live in :mod:`repro.faults.injector`):

``replica-crash`` / ``replica-recover``
    Crash one replica (aborting its in-flight work) / bring it back with a
    cold cache.
``balancer-fail`` / ``balancer-recover``
    Kill a regional load balancer.  For SkyWalker-family systems the
    injector runs a :class:`~repro.core.controller.ServiceController`, so
    detection, replica takeover, DNS re-pointing, stranded-request
    re-routing and recovery are all controller-driven -- the paper's §4.2
    failover exercised end to end.  For controller-less systems (the
    centralized baselines, the gateway) the injector plays ops itself:
    DNS health off, stranded requests re-dispatched, recovery after
    ``duration_s``.
``region-partition``
    Block the network link between two regions (messages are dropped), or
    isolate one region from everyone (``b=None``).
``link-latency-spike``
    Add a constant extra one-way latency to a link.
``replica-degrade`` / ``replica-restore``
    Gray failure: slow a replica's compute to a named performance level
    (``thermal-throttle``, ``power-cap``, ...) without killing it.  The
    replica stays healthy, keeps answering probes, and its queue inflates
    -- which is exactly what load-aware routing is supposed to notice.
``link-degrade``
    Gray network failure: per-message loss probability and extra jitter on
    a link.  Probes feel the jitter but are never lost (slow, not dead).
``link-down`` / ``link-up``
    Take one physical link down / bring it back.  On the graph-routed
    network (:mod:`repro.net`) this downs a graph edge and re-converges
    routes around the cut (traffic *re-routes* where the topology allows,
    unlike a ``region-partition`` which forbids the pair outright); on the
    legacy pairwise network an edge and a region pair are the same thing,
    so it degenerates to a partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "FaultSpec",
    "ReplicaCrash",
    "ReplicaRecover",
    "BalancerFailure",
    "BalancerRecovery",
    "RegionPartition",
    "LinkLatencySpike",
    "ReplicaDegrade",
    "ReplicaRestore",
    "LinkDegrade",
    "LinkDown",
    "LinkUp",
    "FaultEntry",
    "register_fault",
    "unregister_fault",
    "registered_faults",
    "resolve_fault",
    "make_fault",
]


# ----------------------------------------------------------------------
# fault specifications (pure data, picklable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Base class for every fault's declarative description.

    Subclasses add their own knobs (all defaulted) and set ``kind`` to the
    registry name their applier is registered under.  Specs are data only:
    the behaviour lives in the registered applier, resolved by ``kind``
    wherever the fault is injected -- including inside sweep workers.
    """

    kind: str = ""

    @property
    def name(self) -> str:
        return self.kind


@dataclass(frozen=True)
class ReplicaCrash(FaultSpec):
    """Crash one replica; its in-flight and queued requests are aborted
    (and reported to the tracker as failed so clients are unblocked)."""

    kind: str = "replica-crash"
    region: str = "us"
    #: Index into the region's replicas, in deployment order.
    index: int = 0
    #: Auto-recover after this many seconds (``None`` = stays down until an
    #: explicit ``replica-recover`` event, or forever).
    duration_s: Optional[float] = None
    #: On (timed) recovery, re-seed the replica's disk KV tier from its
    #: pre-crash contents: a crash loses HBM and host RAM, but durable
    #: storage survives a process restart.  Only meaningful when the run
    #: uses a :class:`~repro.mem.MemoryConfig` with a disk tier.
    preserve_disk: bool = False


@dataclass(frozen=True)
class ReplicaRecover(FaultSpec):
    """Bring a crashed replica back (cold cache, fresh batcher)."""

    kind: str = "replica-recover"
    region: str = "us"
    index: int = 0
    #: See :attr:`ReplicaCrash.preserve_disk`.
    preserve_disk: bool = False


@dataclass(frozen=True)
class BalancerFailure(FaultSpec):
    """Kill the load balancer serving ``region``.

    With a controller (SkyWalker-family systems) recovery is driven by the
    controller after its configured ``recovery_time_s`` and ``duration_s``
    is ignored; without one the injector restores the balancer (and its
    DNS record) after ``duration_s`` (``None`` = stays down until an
    explicit ``balancer-recover`` event).
    """

    kind: str = "balancer-fail"
    region: str = "eu"
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class BalancerRecovery(FaultSpec):
    """Explicitly restore a failed balancer (controller-less schedules)."""

    kind: str = "balancer-recover"
    region: str = "eu"


@dataclass(frozen=True)
class RegionPartition(FaultSpec):
    """Block the link between regions ``a`` and ``b`` (both directions).

    ``b=None`` isolates ``a`` from every other region.  Messages sent over
    a blocked link are dropped (counted in ``Network.dropped_messages``);
    peers behind the partition are marked unavailable by the availability
    monitor as soon as their next probe lands.
    """

    kind: str = "region-partition"
    a: str = "us"
    b: Optional[str] = None
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class LinkLatencySpike(FaultSpec):
    """Add ``extra_s`` of one-way latency to the ``a``<->``b`` link.

    Spikes compose: overlapping spikes on the same link sum, and each one
    removes exactly its own surcharge when it settles.  A spike on a
    partitioned link never resurrects the partition -- blocking and latency
    are independent per-edge states.
    """

    kind: str = "link-latency-spike"
    a: str = "us"
    b: str = "eu"
    extra_s: float = 0.2
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class ReplicaDegrade(FaultSpec):
    """Gray failure: slow one replica to a named performance level.

    ``level`` is a :data:`~repro.replica.PERFORMANCE_LEVELS` name (or a
    float multiplier in ``(0, 1]``).  The replica stays *healthy*: it keeps
    accepting requests and answering probes, but every prefill/decode step
    stretches by ``1/scale`` -- so its pending queue inflates and
    load-discounted routing can observe the slowness without any
    crash signal.  ``duration_s=None`` degrades until an explicit
    ``replica-restore`` event.
    """

    kind: str = "replica-degrade"
    region: str = "us"
    index: int = 0
    level: str = "thermal-throttle"
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class ReplicaRestore(FaultSpec):
    """Return a degraded replica to nominal compute rates."""

    kind: str = "replica-restore"
    region: str = "us"
    index: int = 0


@dataclass(frozen=True)
class LinkDegrade(FaultSpec):
    """Gray network failure on the ``a``<->``b`` link.

    Adds a per-message ``loss_probability`` and an
    ``extra_jitter_fraction`` (positive-only latency inflation, as a
    fraction of the base one-way latency).  Loss draws come from the
    network's own seeded fault RNG -- never the workload or jitter streams
    -- so degraded runs stay deterministic per seed.  Probes are jittered
    but never lost: a gray link looks slow, not partitioned.
    """

    kind: str = "link-degrade"
    a: str = "us"
    b: str = "eu"
    loss_probability: float = 0.05
    extra_jitter_fraction: float = 0.5
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class LinkDown(FaultSpec):
    """Take the physical ``a``<->``b`` link down (both directions).

    ``a``/``b`` name *graph nodes* -- regions or WAN routers.  On the
    routed network the route table re-converges deterministically around
    the cut (observable as ``route_changed`` events); pairs left with no
    surviving path drop messages until the link heals.  Downs are
    reference-counted, so overlapping faults compose.  ``duration_s=None``
    keeps the link down until an explicit ``link-up`` event.
    """

    kind: str = "link-down"
    a: str = "us"
    b: str = "eu"
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class LinkUp(FaultSpec):
    """Bring a downed ``a``<->``b`` link back and re-converge routes."""

    kind: str = "link-up"
    a: str = "us"
    b: str = "eu"


# ----------------------------------------------------------------------
# the fault registry
# ----------------------------------------------------------------------
#: Applier signature: ``(spec, ctx, record) -> None``.  ``ctx`` is a
#: :class:`repro.faults.injector.FaultContext`; ``record`` the event's
#: :class:`repro.faults.injector.FaultRecord` (set ``target`` and resolve
#: it when the fault heals).
FaultApplier = Callable[..., object]


@dataclass(frozen=True)
class FaultEntry:
    """One registered fault: its name, spec class and applier."""

    name: str
    spec_cls: type
    applier: FaultApplier
    description: str = ""


class FaultRegistry:
    """Name -> :class:`FaultEntry` mapping (same shape as the system
    registry; built-ins register on first use via a deferred import)."""

    def __init__(self) -> None:
        self._entries: Dict[str, FaultEntry] = {}

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def register(
        self,
        name: str,
        *,
        spec: type = FaultSpec,
        description: str = "",
        replace_existing: bool = False,
    ) -> Callable[[FaultApplier], FaultApplier]:
        key = self._key(name)

        def decorator(applier: FaultApplier) -> FaultApplier:
            if key in self._entries and not replace_existing:
                raise ValueError(f"fault {name!r} is already registered")
            self._entries[key] = FaultEntry(
                name=key, spec_cls=spec, applier=applier, description=description
            )
            return applier

        return decorator

    def unregister(self, name: str) -> None:
        self._entries.pop(self._key(name), None)

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return self._key(name) in self._entries

    def names(self) -> Tuple[str, ...]:
        self._ensure_builtins()
        return tuple(sorted(self._entries))

    def get(self, name: str) -> FaultEntry:
        self._ensure_builtins()
        try:
            return self._entries[self._key(name)]
        except KeyError:
            raise ValueError(
                f"unknown fault {name!r}; registered faults: {self.names()}"
            ) from None

    def _ensure_builtins(self) -> None:
        from . import injector  # noqa: F401  (imported for registration side effect)


#: The process-global fault registry.
_FAULTS = FaultRegistry()


def register_fault(
    name: str,
    *,
    spec: type = FaultSpec,
    description: str = "",
    replace_existing: bool = False,
) -> Callable[[FaultApplier], FaultApplier]:
    """Register a fault applier under ``name`` (case-insensitive).

    The public extension point: decorate a callable taking
    ``(spec, ctx, record)``.  It may mutate the stack immediately and/or
    start follow-up simulation processes via ``ctx.env.process``.
    """
    return _FAULTS.register(
        name, spec=spec, description=description, replace_existing=replace_existing
    )


def unregister_fault(name: str) -> None:
    """Remove a registered fault (mainly for test cleanup)."""
    _FAULTS.unregister(name)


def registered_faults() -> Tuple[str, ...]:
    """Every fault kind currently registered (built-ins and plugins)."""
    return _FAULTS.names()


def resolve_fault(kind: str) -> FaultEntry:
    """Look up the registered entry for a fault kind."""
    return _FAULTS.get(kind)


def make_fault(kind: str, **overrides) -> FaultSpec:
    """A default-configured spec instance for a registered fault kind."""
    entry = _FAULTS.get(kind)
    return entry.spec_cls(kind=entry.name, **overrides)
