"""The fault injector: executes a :class:`FaultSchedule` against a live stack.

The injector is a thin deterministic orchestrator.  It walks the schedule's
events in time order inside one simulation process, resolves each fault's
``kind`` through the fault registry and hands the live stack to the
registered applier via a :class:`FaultContext`.  Every injection leaves a
:class:`FaultRecord` behind; records (plus the controller's
:class:`~repro.core.controller.FailoverRecord` bookkeeping, when one runs)
are what the resilience metrics are computed from.

For schedules containing balancer faults on SkyWalker-family systems the
injector also builds and starts the paper's §4.2 management plane -- a
:class:`~repro.core.controller.ServiceController` -- so balancer failure,
detection, replica takeover, DNS re-pointing, stranded-request re-routing
and recovery are exercised end to end rather than stubbed.  Controller-less
systems (the centralized §5.1 baselines, the gateway) get the injector
itself as a minimal ops loop: DNS health flips and ``duration_s``-timed
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..cluster.client import Frontend, RequestTracker
from ..cluster.deployment import Deployment
from ..core.balancer import SkyWalkerBalancer
from ..core.controller import ServiceController
from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment
from ..workloads.request import Request
from .schedule import FaultEvent, FaultSchedule, FaultsLike, resolve_fault_schedule
from .spec import (
    BalancerFailure,
    BalancerRecovery,
    FaultSpec,
    LinkDegrade,
    LinkDown,
    LinkLatencySpike,
    LinkUp,
    RegionPartition,
    ReplicaCrash,
    ReplicaDegrade,
    ReplicaRecover,
    ReplicaRestore,
    register_fault,
    resolve_fault,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.interface import Balancer
    from ..metrics.resilience import ResilienceMetrics

__all__ = ["FaultRecord", "FaultContext", "FaultInjector"]

#: Fault kinds whose presence makes the injector run a ServiceController
#: (when the system's balancers support one).
_CONTROLLER_FAULT_KINDS = frozenset({"balancer-fail", "balancer-recover"})


@dataclass
class FaultRecord:
    """Bookkeeping for one injected fault event."""

    fault: FaultSpec
    injected_at: float
    #: When the fault healed (set by the applier / its follow-up process, or
    #: read off the controller's failover record at collection time).
    resolved_at: Optional[float] = None
    #: Affected entity (replica/balancer name, link description).
    target: str = ""
    #: Whether this record opens an outage window for the resilience
    #: metrics (recovery-type events resolve windows instead).
    opens_window: bool = True
    #: Whether this record opens a *degraded* (gray, slow-but-alive)
    #: window -- tracked separately from hard outages: a degraded system
    #: still serves, so its goodput/TTFT are reported, not its downtime.
    opens_degraded_window: bool = False
    #: Requests this event stranded (pulled out of a dead balancer).
    stranded: int = 0


@dataclass
class FaultContext:
    """Everything a fault applier may need to reach into the stack."""

    env: Environment
    network: Network
    deployment: Deployment
    frontend: Frontend
    balancers: List["Balancer"]
    tracker: Optional[RequestTracker]
    controller: Optional[ServiceController]
    injector: "FaultInjector"

    # -- lookups --------------------------------------------------------
    def find_balancer_in(self, region: str) -> Optional["Balancer"]:
        """The (first) balancer deployed in ``region``, or ``None``.

        ``None`` is a legitimate outcome in cross-system sweeps: one fault
        schedule runs against every system variant, and a centralized
        baseline simply has no balancer in most regions -- there is nothing
        to kill there (its clients never depended on one).
        """
        for balancer in self.balancers:
            if balancer.region == region:
                return balancer
        return None

    def balancer_in(self, region: str) -> "Balancer":
        """The (first) balancer deployed in ``region`` (raising lookup)."""
        balancer = self.find_balancer_in(region)
        if balancer is None:
            regions = sorted({b.region for b in self.balancers})
            raise ValueError(
                f"no balancer deployed in region {region!r}; balancer regions: {regions}"
            )
        return balancer

    def replica(self, region: str, index: int) -> ReplicaServer:
        """The ``index``-th replica of ``region``, in deployment order."""
        replicas = self.deployment.replicas_in(region)
        if not 0 <= index < len(replicas):
            raise ValueError(
                f"region {region!r} has {len(replicas)} replicas; "
                f"index {index} is out of range"
            )
        return replicas[index]

    def controller_manages(self, balancer: "Balancer") -> bool:
        """Is this balancer's failure handled by a running controller?"""
        return self.controller is not None and balancer.name in self.controller.balancers

    # -- common actions -------------------------------------------------
    def fail_request(self, request: Request) -> None:
        """Report an aborted request as failed (unblocks waiting clients)."""
        if self.tracker is not None:
            self.tracker.fail(request)

    def redispatch(self, requests: Sequence[Request]) -> None:
        """Re-issue stranded requests through the frontend (client retry:
        DNS re-resolves, so they reach the nearest healthy balancer)."""
        for request in requests:
            self.frontend.dispatch(request)


class FaultInjector:
    """Executes a fault schedule deterministically against one experiment.

    Create it after the system is built (it needs the live balancers) and
    call :meth:`start` before running the environment.  With an empty
    schedule the injector starts nothing at all, which is what keeps the
    zero-fault path bit-identical to a run without any fault machinery.
    """

    def __init__(
        self,
        env: Environment,
        schedule: FaultsLike,
        *,
        network: Network,
        deployment: Deployment,
        frontend: Frontend,
        balancers: Sequence["Balancer"],
        tracker: Optional[RequestTracker] = None,
    ) -> None:
        resolved = resolve_fault_schedule(schedule)
        if resolved is not None and not isinstance(resolved, FaultSchedule):
            raise TypeError(
                f"FaultInjector needs a concrete FaultSchedule, got "
                f"{type(resolved).__name__}; call "
                ".compile(duration_s=..., seed=...) first (run_experiment "
                "does this automatically)"
            )
        self.schedule = resolved if resolved is not None else FaultSchedule()
        self.env = env
        self.network = network
        self.deployment = deployment
        self.frontend = frontend
        self.balancers = list(balancers)
        self.tracker = tracker
        self.records: List[FaultRecord] = []
        self.controller: Optional[ServiceController] = None
        self._process = None
        self._started = False
        # Validate every kind up front: a typo should fail fast at setup,
        # not minutes into the simulation.
        for event in self.schedule.events:
            resolve_fault(event.fault.kind)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _wants_controller(self) -> bool:
        if not self.schedule.use_controller or not self.balancers:
            return False
        if not any(kind in _CONTROLLER_FAULT_KINDS for kind in self.schedule.kinds()):
            return False
        return all(isinstance(b, SkyWalkerBalancer) for b in self.balancers)

    def start(self) -> None:
        """Start the controller (when applicable) and the schedule driver."""
        if self._started or self.schedule.is_empty:
            return
        self._started = True
        if self._wants_controller():
            self.controller = ServiceController(
                self.env,
                self.network,
                self.frontend,
                health_probe_interval_s=self.schedule.controller_probe_interval_s,
                recovery_time_s=self.schedule.recovery_time_s,
            )
            for balancer in self.balancers:
                self.controller.register_balancer(balancer)
            self.controller.start()
        self._process = self.env.process(self._run())

    def _run(self):
        for event in self.schedule.sorted_events():
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        entry = resolve_fault(event.fault.kind)
        record = FaultRecord(fault=event.fault, injected_at=self.env.now)
        self.records.append(record)
        ctx = FaultContext(
            env=self.env,
            network=self.network,
            deployment=self.deployment,
            frontend=self.frontend,
            balancers=self.balancers,
            tracker=self.tracker,
            controller=self.controller,
            injector=self,
        )
        entry.applier(event.fault, ctx, record)

    # ------------------------------------------------------------------
    # record resolution
    # ------------------------------------------------------------------
    def resolve(self, record: FaultRecord) -> None:
        """Mark a record as healed at the current simulation time."""
        if record.resolved_at is None:
            record.resolved_at = self.env.now

    def resolve_target(self, target: str, *, kind: str) -> None:
        """Resolve the oldest open record of ``kind`` affecting ``target``
        (how explicit recover events close their matching crash record)."""
        for record in self.records:
            if (
                (record.opens_window or record.opens_degraded_window)
                and record.resolved_at is None
                and record.target == target
                and record.fault.kind == kind
            ):
                record.resolved_at = self.env.now
                return

    # ------------------------------------------------------------------
    # resilience accounting
    # ------------------------------------------------------------------
    def outage_windows(self, duration_s: float) -> List[Tuple[float, float]]:
        """``(start, end)`` of every injected outage, clipped to the run.

        Controller-handled balancer failures read their recovery time off
        the controller's :class:`FailoverRecord`; unresolved faults extend
        to the end of the run.
        """
        windows: List[Tuple[float, float]] = []
        for record in self.records:
            if not record.opens_window:
                continue
            end = record.resolved_at
            if end is None and self.controller is not None and record.fault.kind == "balancer-fail":
                for failover in self.controller.failovers:
                    if (
                        failover.failed_balancer == record.target
                        and failover.failed_at >= record.injected_at
                        and failover.recovered_at is not None
                    ):
                        end = failover.recovered_at
                        record.resolved_at = end
                        break
            if end is None:
                end = duration_s
            start = min(record.injected_at, duration_s)
            end = min(end, duration_s)
            if end > start:
                windows.append((start, end))
        return sorted(windows)

    def degraded_windows(self, duration_s: float) -> List[Tuple[float, float]]:
        """``(start, end)`` of every gray-failure window, clipped to the run.

        Unlike :meth:`outage_windows`, these cover slow-but-alive periods
        (degraded replicas, lossy links): the system keeps serving, so the
        resilience metrics report goodput and TTFT *inside* the windows
        rather than counting them as downtime.
        """
        windows: List[Tuple[float, float]] = []
        for record in self.records:
            if not record.opens_degraded_window:
                continue
            end = record.resolved_at
            if end is None:
                end = duration_s
            start = min(record.injected_at, duration_s)
            end = min(end, duration_s)
            if end > start:
                windows.append((start, end))
        return sorted(windows)

    @property
    def failover_count(self) -> int:
        """Controller failovers handled (or injected balancer failures,
        for controller-less systems)."""
        if self.controller is not None:
            return len(self.controller.failovers)
        return sum(1 for r in self.records if r.fault.kind == "balancer-fail")

    @property
    def stranded_requests(self) -> int:
        """Total requests stranded by injected balancer failures."""
        return sum(record.stranded for record in self.records)

    def parked_requests(self) -> int:
        """Requests still queued/parked at balancers right now (end-of-run
        backlog left behind by the outages)."""
        total = 0
        for balancer in self.balancers:
            total += balancer.queue_size
            total += len(getattr(balancer, "stranded", ()))
        return total

    def resilience_metrics(
        self, completed: Sequence[Request], *, duration_s: float
    ) -> "ResilienceMetrics":
        """Aggregate this run's fault story into a metrics record."""
        from ..metrics.resilience import collect_resilience_metrics

        return collect_resilience_metrics(
            completed=completed,
            duration_s=duration_s,
            outage_windows=self.outage_windows(duration_s),
            degraded_windows=self.degraded_windows(duration_s),
            num_fault_events=len(self.records),
            failover_count=self.failover_count,
            stranded_requests=self.stranded_requests,
            parked_requests=self.parked_requests(),
            failed_requests=len(self.tracker.failed) if self.tracker is not None else 0,
            dropped_messages=self.network.dropped_messages,
        )


# ----------------------------------------------------------------------
# built-in fault appliers
# ----------------------------------------------------------------------
def _partition_pairs(network: Network, a: str, b: Optional[str]) -> List[Tuple[str, str]]:
    if b is not None:
        return [(a, b)]
    return [(a, other) for other in network.topology.region_names() if other != a]


@register_fault(
    "replica-crash",
    spec=ReplicaCrash,
    description="Crash one replica; optional timed recovery",
)
def _apply_replica_crash(spec: ReplicaCrash, ctx: FaultContext, record: FaultRecord) -> None:
    replica = ctx.replica(spec.region, spec.index)
    record.target = replica.name
    if not replica.healthy:
        # Crashing an already-dead replica is a recorded no-op: the
        # original crash's window already covers the outage.
        record.opens_window = False
        return
    for request in replica.fail():
        ctx.fail_request(request)
    if spec.duration_s is not None:

        def recover_later():
            yield ctx.env.timeout(spec.duration_s)
            replica.recover(preserve_disk=spec.preserve_disk)
            ctx.injector.resolve(record)

        ctx.env.process(recover_later())


@register_fault(
    "replica-recover",
    spec=ReplicaRecover,
    description="Bring a crashed replica back (cold cache)",
)
def _apply_replica_recover(
    spec: ReplicaRecover, ctx: FaultContext, record: FaultRecord
) -> None:
    replica = ctx.replica(spec.region, spec.index)
    record.target = replica.name
    record.opens_window = False
    replica.recover(preserve_disk=spec.preserve_disk)
    ctx.injector.resolve_target(replica.name, kind="replica-crash")


@register_fault(
    "balancer-fail",
    spec=BalancerFailure,
    description="Kill a regional balancer (controller-driven failover when available)",
)
def _apply_balancer_failure(
    spec: BalancerFailure, ctx: FaultContext, record: FaultRecord
) -> None:
    balancer = ctx.find_balancer_in(spec.region)
    if balancer is None:
        # Cross-system sweep semantics: this variant deploys no balancer in
        # the targeted region, so the fault is a recorded no-op for it.
        record.target = f"(no balancer in {spec.region})"
        record.opens_window = False
        return
    record.target = balancer.name
    if not balancer.healthy:
        record.opens_window = False
        return
    stranded = balancer.fail()
    record.stranded = len(stranded)
    if ctx.controller_manages(balancer):
        # Detection, DNS, replica takeover, stranded re-routing and timed
        # recovery are all the ServiceController's job from here (§4.2);
        # the stranded requests stay parked on the balancer until the
        # controller's next health probe picks the failure up.
        return
    # Controller-less systems: the injector plays ops.  DNS stops resolving
    # to the dead balancer and the stranded requests retry through the
    # frontend (reaching another region's balancer if one is healthy, or
    # queueing against the stale record during a total outage).
    ctx.frontend.set_health(balancer.name, False)
    ctx.redispatch(balancer.take_stranded())
    if spec.duration_s is not None:

        def recover_later():
            yield ctx.env.timeout(spec.duration_s)
            balancer.recover()
            ctx.frontend.set_health(balancer.name, True)
            ctx.injector.resolve(record)

        ctx.env.process(recover_later())


@register_fault(
    "balancer-recover",
    spec=BalancerRecovery,
    description="Explicitly restore a failed balancer (controller-less schedules)",
)
def _apply_balancer_recovery(
    spec: BalancerRecovery, ctx: FaultContext, record: FaultRecord
) -> None:
    balancer = ctx.find_balancer_in(spec.region)
    if balancer is None:
        record.target = f"(no balancer in {spec.region})"
        record.opens_window = False
        return
    record.target = balancer.name
    record.opens_window = False
    balancer.recover()
    if not ctx.controller_manages(balancer):
        ctx.frontend.set_health(balancer.name, True)
    ctx.injector.resolve_target(balancer.name, kind="balancer-fail")


@register_fault(
    "region-partition",
    spec=RegionPartition,
    description="Block a region pair's link (or isolate one region entirely)",
)
def _apply_region_partition(
    spec: RegionPartition, ctx: FaultContext, record: FaultRecord
) -> None:
    pairs = _partition_pairs(ctx.network, spec.a, spec.b)
    record.target = spec.a if spec.b is None else f"{spec.a}<->{spec.b}"
    for src, dst in pairs:
        ctx.network.set_link_blocked(src, dst, True)
    if spec.duration_s is not None:

        def heal_later():
            yield ctx.env.timeout(spec.duration_s)
            for src, dst in pairs:
                ctx.network.set_link_blocked(src, dst, False)
            ctx.injector.resolve(record)

        ctx.env.process(heal_later())


@register_fault(
    "link-latency-spike",
    spec=LinkLatencySpike,
    description="Add constant extra one-way latency to a link",
)
def _apply_link_latency_spike(
    spec: LinkLatencySpike, ctx: FaultContext, record: FaultRecord
) -> None:
    # Additive contribution (not an overwrite): overlapping spikes sum and
    # each settle removes exactly its own surcharge, and a spike landing on
    # a partitioned link never disturbs the block -- latency and blocking
    # are independent per-edge states.
    record.target = f"{spec.a}<->{spec.b}"
    ctx.network.add_link_extra_latency(spec.a, spec.b, spec.extra_s)
    if spec.duration_s is not None:

        def settle_later():
            yield ctx.env.timeout(spec.duration_s)
            ctx.network.remove_link_extra_latency(spec.a, spec.b, spec.extra_s)
            ctx.injector.resolve(record)

        ctx.env.process(settle_later())


@register_fault(
    "replica-degrade",
    spec=ReplicaDegrade,
    description="Gray failure: slow a replica to a named performance level",
)
def _apply_replica_degrade(
    spec: ReplicaDegrade, ctx: FaultContext, record: FaultRecord
) -> None:
    replica = ctx.replica(spec.region, spec.index)
    record.target = replica.name
    record.opens_window = False
    record.opens_degraded_window = True
    until = None if spec.duration_s is None else ctx.env.now + spec.duration_s
    token = replica.set_performance_level(spec.level, until=until)
    if spec.duration_s is not None:

        def restore_later():
            yield ctx.env.timeout(spec.duration_s)
            # Epoch-guarded: a newer degrade supersedes this timed restore.
            replica.restore_performance(token)
            ctx.injector.resolve(record)

        ctx.env.process(restore_later())


@register_fault(
    "replica-restore",
    spec=ReplicaRestore,
    description="Return a degraded replica to nominal compute rates",
)
def _apply_replica_restore(
    spec: ReplicaRestore, ctx: FaultContext, record: FaultRecord
) -> None:
    replica = ctx.replica(spec.region, spec.index)
    record.target = replica.name
    record.opens_window = False
    replica.restore_performance()
    ctx.injector.resolve_target(replica.name, kind="replica-degrade")


@register_fault(
    "link-degrade",
    spec=LinkDegrade,
    description="Gray link failure: loss probability + extra jitter",
)
def _apply_link_degrade(
    spec: LinkDegrade, ctx: FaultContext, record: FaultRecord
) -> None:
    record.target = f"{spec.a}<->{spec.b}"
    record.opens_window = False
    record.opens_degraded_window = True
    ctx.network.add_link_degrade(
        spec.a,
        spec.b,
        loss_probability=spec.loss_probability,
        extra_jitter_fraction=spec.extra_jitter_fraction,
    )
    if spec.duration_s is not None:

        def heal_later():
            yield ctx.env.timeout(spec.duration_s)
            ctx.network.remove_link_degrade(
                spec.a,
                spec.b,
                loss_probability=spec.loss_probability,
                extra_jitter_fraction=spec.extra_jitter_fraction,
            )
            ctx.injector.resolve(record)

        ctx.env.process(heal_later())


@register_fault(
    "link-down",
    spec=LinkDown,
    description="Take one physical link down (routes re-converge around it)",
)
def _apply_link_down(spec: LinkDown, ctx: FaultContext, record: FaultRecord) -> None:
    # On the routed network this downs a graph edge and the routing policy
    # re-converges deterministically (traffic re-routes where the topology
    # allows); on the pairwise network set_edge_down falls back to a pair
    # block.  Either way downs are reference-counted, so overlapping
    # link-down faults compose and each heal removes only its own down.
    record.target = f"{spec.a}<->{spec.b}"
    ctx.network.set_edge_down(spec.a, spec.b, True)
    if spec.duration_s is not None:

        def heal_later():
            yield ctx.env.timeout(spec.duration_s)
            ctx.network.set_edge_down(spec.a, spec.b, False)
            ctx.injector.resolve(record)

        ctx.env.process(heal_later())


@register_fault(
    "link-up",
    spec=LinkUp,
    description="Bring a downed link back up and re-converge routes",
)
def _apply_link_up(spec: LinkUp, ctx: FaultContext, record: FaultRecord) -> None:
    record.target = f"{spec.a}<->{spec.b}"
    record.opens_window = False
    ctx.network.set_edge_down(spec.a, spec.b, False)
    ctx.injector.resolve_target(record.target, kind="link-down")
