"""Deterministic fault schedules: *when* each fault fires.

A :class:`FaultSchedule` is an immutable, picklable list of
``(at_s, FaultSpec)`` events plus the controller knobs governing
SkyWalker-style failover.  Schedules are executed by
:class:`~repro.faults.injector.FaultInjector` as ordinary simulation
processes, so for a fixed seed a faulted run is exactly as deterministic as
a fault-free one -- the same schedule + seed reproduces the same trace bit
for bit, serial or across sweep worker processes, and an *empty* schedule
is bit-identical to no schedule at all (the runner skips the injector).

Schedules also resolve **by name**: factories registered via
:func:`register_fault_schedule` let ``run_sweep(..., faults="eu-balancer-outage")``
ship only a string into worker processes, the same way pushing policies and
routing constraints travel as registered names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple, Union

from ..core._registry import NameRegistry
from .spec import BalancerFailure, FaultSpec

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "CompilesToFaultSchedule",
    "FaultsLike",
    "register_fault_schedule",
    "unregister_fault_schedule",
    "registered_fault_schedules",
    "make_fault_schedule",
    "resolve_fault_schedule",
]


class CompilesToFaultSchedule:
    """Base class for schedule *descriptions* that compile per run.

    A stochastic fault description (e.g.
    :class:`~repro.faults.stochastic.StochasticFaultSchedule`) is not a
    concrete event list -- it becomes one only once the run's
    ``duration_s`` and ``seed`` are known.  The runner calls
    :meth:`compile` right before building the injector; a concrete
    :class:`FaultSchedule` simply compiles to itself.  Subclasses must be
    plain picklable data so they travel into sweep workers like any other
    ``faults=`` argument.
    """

    def compile(self, *, duration_s: float, seed: int) -> "FaultSchedule":
        raise NotImplementedError


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: inject ``fault`` at simulation time ``at_s``."""

    at_s: float
    fault: FaultSpec

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at_s}")
        if not isinstance(self.fault, FaultSpec):
            raise TypeError(f"fault must be a FaultSpec, got {type(self.fault).__name__}")
        if not self.fault.kind:
            raise ValueError("fault spec has an empty kind")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable sequence of timed fault events plus failover knobs.

    ``use_controller`` (default on) makes the injector run a
    :class:`~repro.core.controller.ServiceController` for schedules that
    contain balancer faults on SkyWalker-family systems;
    ``controller_probe_interval_s`` / ``recovery_time_s`` configure it.
    Everything here is plain data, so schedules pickle into sweep workers
    and hash/compare by value.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: Drive balancer failures through a ServiceController when the system
    #: supports it (SkyWalker-family balancers).
    use_controller: bool = True
    controller_probe_interval_s: float = 0.5
    #: Controller-driven recovery delay after a balancer failure is detected.
    recovery_time_s: float = 10.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"events must be FaultEvent instances, got {type(event).__name__}"
                )
        if self.controller_probe_interval_s <= 0:
            raise ValueError("controller_probe_interval_s must be positive")
        if self.recovery_time_s <= 0:
            raise ValueError("recovery_time_s must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, at_s: float, fault: FaultSpec, **kwargs) -> "FaultSchedule":
        """A one-event schedule (keyword args forward to the constructor)."""
        return cls(events=(FaultEvent(at_s, fault),), **kwargs)

    def add(self, at_s: float, fault: FaultSpec) -> "FaultSchedule":
        """A new schedule with one more event appended (immutable builder)."""
        return replace(self, events=self.events + (FaultEvent(at_s, fault),))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def kinds(self) -> Tuple[str, ...]:
        """The fault kinds appearing in this schedule, in event order."""
        return tuple(event.fault.kind for event in self.events)

    def sorted_events(self) -> List[FaultEvent]:
        """Events in injection order: by time, ties broken by list order."""
        return sorted(self.events, key=lambda event: event.at_s)

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Concatenate another schedule's events (keeping *this* schedule's
        controller knobs).  Event order is preserved, so identical-time
        events from ``self`` still inject before ``other``'s."""
        return replace(self, events=self.events + tuple(other.events))

    def compile(self, *, duration_s: float, seed: int) -> "FaultSchedule":
        """A concrete schedule is already compiled (returns ``self``)."""
        return self


#: What every ``faults=`` parameter accepts: nothing, a schedule, a
#: stochastic description compiling to one, or the name of a registered
#: schedule factory.
FaultsLike = Union[None, str, FaultSchedule, CompilesToFaultSchedule]


# ----------------------------------------------------------------------
# the schedule registry
# ----------------------------------------------------------------------
_SCHEDULES = NameRegistry("fault schedule", plural="fault schedules")


def register_fault_schedule(
    name: str, *, replace_existing: bool = False
) -> Callable[[Callable[..., FaultSchedule]], Callable[..., FaultSchedule]]:
    """Register a schedule factory under ``name`` (case-insensitive).

    The factory takes keyword arguments (all defaulted) and returns a
    :class:`FaultSchedule`.  Registered names are accepted anywhere a
    schedule object is -- ``ExperimentConfig(faults="...")`` and every
    ``run_*(..., faults="...")`` -- and resolve inside sweep workers.
    """
    return _SCHEDULES.register(name, replace_existing=replace_existing)


def unregister_fault_schedule(name: str) -> None:
    """Remove a registered schedule factory (mainly for test cleanup)."""
    _SCHEDULES.unregister(name)


def registered_fault_schedules() -> Tuple[str, ...]:
    """Every registered fault-schedule name."""
    return _SCHEDULES.names()


def make_fault_schedule(name: str, **kwargs):
    """Instantiate a registered schedule factory by name.

    Factories may return either a concrete :class:`FaultSchedule` or a
    :class:`CompilesToFaultSchedule` description (a stochastic scenario
    compiles per run seed)."""
    schedule = _SCHEDULES.make(name, **kwargs)
    if not isinstance(schedule, (FaultSchedule, CompilesToFaultSchedule)):
        raise TypeError(
            f"fault schedule factory {name!r} returned "
            f"{type(schedule).__name__}, expected FaultSchedule "
            "or CompilesToFaultSchedule"
        )
    return schedule


def resolve_fault_schedule(faults: FaultsLike):
    """Normalise a ``faults=`` argument to a schedule (or ``None``).

    ``None`` passes through (no fault machinery at all -- the zero-fault
    path is byte-for-byte the historical one); strings resolve through the
    schedule registry; schedule objects -- concrete or compiling -- are
    returned as-is (the runner compiles right before injection).
    """
    if faults is None:
        return None
    if isinstance(faults, (FaultSchedule, CompilesToFaultSchedule)):
        return faults
    if isinstance(faults, str):
        return make_fault_schedule(faults)
    raise TypeError(
        "faults must be None, a FaultSchedule, a CompilesToFaultSchedule, "
        f"or a registered schedule name; got {type(faults).__name__}"
    )


# ----------------------------------------------------------------------
# built-in schedules
# ----------------------------------------------------------------------
@register_fault_schedule("eu-balancer-outage")
def _eu_balancer_outage(
    at_s: float = 30.0, duration_s: float = 20.0, region: str = "eu"
) -> FaultSchedule:
    """The canonical §4.2 scenario: one regional balancer dies mid-run.

    Controller-driven recovery for SkyWalker systems; ``duration_s``-timed
    recovery for controller-less ones (the two are aligned so outage
    windows are comparable across system families).
    """
    return FaultSchedule(
        events=(FaultEvent(at_s, BalancerFailure(region=region, duration_s=duration_s)),),
        recovery_time_s=duration_s,
    )
