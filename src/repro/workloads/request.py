"""The request object that flows through every layer of the system.

A :class:`Request` is created by a workload/client, travels through a load
balancer (possibly two, with SkyWalker's two-layer routing), is admitted
into a replica's continuous batch, and finally completes.  Timestamps for
every hop are recorded on the request itself so the metrics layer can
compute TTFT, end-to-end latency, queueing delay and cache hit rates without
any global bookkeeping.

All times are simulation seconds; all lengths are in tokens.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["Request", "RequestStatus", "TokenSeq"]

#: Synthetic token sequences are plain tuples of ints.  There is no real
#: tokenizer in the simulator; prefix sharing is defined directly on these
#: integer sequences, which is exactly the property the balancer exploits.
TokenSeq = Tuple[int, ...]

_request_counter = itertools.count()


class RequestStatus:
    """Lifecycle states of a request (plain constants, not an Enum, to keep
    comparisons cheap inside the simulation hot loop)."""

    CREATED = "created"
    QUEUED_AT_LB = "queued_at_lb"
    FORWARDED = "forwarded"          # sent to a remote load balancer
    PENDING_AT_REPLICA = "pending_at_replica"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass(eq=False)
class Request:
    """A single LLM inference request.

    Requests are mutable entities that flow through the system, so they
    compare (and hash) by identity rather than by field values.

    Parameters
    ----------
    prompt_tokens:
        The full prompt, including any shared prefix (system prompt, chat
        history, tree-of-thoughts context).
    output_len:
        Number of tokens the request will generate.  In the real system this
        is unknown in advance; the simulator samples it when the request is
        created but **never** exposes it to the load balancer -- balancers
        may only look at ``prompt_tokens`` and observable replica state,
        mirroring the paper's "load unpredictability" constraint.
    user_id / session_id:
        Identity keys used by consistent-hashing policies.
    region:
        Region name of the originating client.
    """

    prompt_tokens: TokenSeq
    output_len: int
    user_id: str = "user-0"
    session_id: str = "session-0"
    region: str = "us"
    arrival_time: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_counter))
    program_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Mutable routing / execution state, filled in as the request flows
    # through the system.
    # ------------------------------------------------------------------
    status: str = RequestStatus.CREATED
    #: Region of the load balancer that first received the request.
    ingress_region: Optional[str] = None
    #: Region of the load balancer that made the final placement decision.
    serving_region: Optional[str] = None
    #: Name of the replica that executed the request.
    replica_name: Optional[str] = None
    #: Number of cross-LB forwards (0 = served locally).
    forward_hops: int = 0

    # Timestamps (simulation seconds).
    sent_time: Optional[float] = None
    lb_arrival_time: Optional[float] = None
    lb_dispatch_time: Optional[float] = None
    replica_arrival_time: Optional[float] = None
    schedule_time: Optional[float] = None       # admitted to continuous batch
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None

    # Execution accounting, filled in by the replica.
    cached_prefix_tokens: int = 0
    prefilled_tokens: int = 0
    generated_tokens: int = 0

    #: One-way network latency from the serving region back to the client's
    #: region.  The forward path is simulated with real event delays; the
    #: response path is accounted for analytically via this field, which the
    #: dispatching load balancer fills in.
    response_network_delay: float = 0.0

    # ------------------------------------------------------------------
    @property
    def prompt_len(self) -> int:
        """Length of the prompt in tokens."""
        return len(self.prompt_tokens)

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens processed so far."""
        return self.prompt_len + self.generated_tokens

    @property
    def ttft(self) -> Optional[float]:
        """Time-to-first-token as observed by the client (includes the
        network latency of the response path back to the client's region)."""
        if self.first_token_time is None or self.sent_time is None:
            return None
        return self.first_token_time + self.response_network_delay - self.sent_time

    @property
    def e2e_latency(self) -> Optional[float]:
        """End-to-end latency from send to the client receiving the final token."""
        if self.finish_time is None or self.sent_time is None:
            return None
        return self.finish_time + self.response_network_delay - self.sent_time

    @property
    def queueing_delay(self) -> Optional[float]:
        """Delay between arriving at the first LB and being scheduled."""
        if self.schedule_time is None or self.lb_arrival_time is None:
            return None
        return self.schedule_time - self.lb_arrival_time

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of prompt tokens served from the replica's prefix cache."""
        if self.prompt_len == 0:
            return 0.0
        return self.cached_prefix_tokens / self.prompt_len

    @property
    def finished(self) -> bool:
        return self.status == RequestStatus.FINISHED

    def clone_for_retry(self) -> "Request":
        """Create a fresh copy with execution state cleared (failure recovery)."""
        return Request(
            prompt_tokens=self.prompt_tokens,
            output_len=self.output_len,
            user_id=self.user_id,
            session_id=self.session_id,
            region=self.region,
            arrival_time=self.arrival_time,
            program_id=self.program_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Request {self.request_id} user={self.user_id} region={self.region} "
            f"prompt={self.prompt_len} out={self.output_len} status={self.status}>"
        )
