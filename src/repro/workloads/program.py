"""Programs: the unit of work a client executes.

The paper's clients each run "one program at a time" (§5.1): a multi-turn
conversation, or one Tree-of-Thoughts tree.  A :class:`Program` is a list of
*stages*; requests inside a stage may be issued concurrently (tree levels),
and stages are issued sequentially (turn k+1 only after turn k finished).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from .request import Request

__all__ = ["Program"]


@dataclass
class Program:
    """A sequence of request stages executed by one client."""

    program_id: str
    user_id: str
    region: str
    stages: List[List[Request]] = field(default_factory=list)
    #: Free-form label ("conversation", "tot-2", "tot-4", ...).
    kind: str = "generic"

    def __post_init__(self) -> None:
        for stage in self.stages:
            for request in stage:
                request.program_id = self.program_id

    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return sum(len(stage) for stage in self.stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def all_requests(self) -> Iterator[Request]:
        for stage in self.stages:
            yield from stage

    def clone(self) -> "Program":
        """A fresh copy with pristine requests (no routing/execution state).

        Lets one generated workload be replayed across several system
        variants (``run_sweep``) without the runs contaminating each other
        through the mutable per-request state.
        """
        return Program(
            program_id=self.program_id,
            user_id=self.user_id,
            region=self.region,
            stages=[[request.clone_for_retry() for request in stage] for stage in self.stages],
            kind=self.kind,
        )

    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_len for r in self.all_requests())

    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.all_requests())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Program {self.program_id} kind={self.kind} user={self.user_id} "
            f"stages={self.num_stages} requests={self.num_requests}>"
        )
