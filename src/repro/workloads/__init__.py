"""Workload generation: requests, programs, traces and their statistics."""

from .conversation import ConversationConfig, ConversationWorkload, UserProfile, arena_config
from .diurnal import COUNTRY_PROFILES, DiurnalPattern, generate_daily_trace
from .lengths import (
    ARENA_LIKE,
    TOT_LIKE,
    WILDCHAT_LIKE,
    LengthDistribution,
    LengthSampler,
    WorkloadLengths,
)
from .program import Program
from .request import Request, RequestStatus, TokenSeq
from .streams import (
    STREAM_FACTORIES,
    DiurnalRequestStream,
    ProgramStream,
    register_stream_factory,
)
from .tokens import TokenFactory
from .traces import RegionalTrace
from .tree_of_thoughts import TreeOfThoughtsConfig, TreeOfThoughtsWorkload

__all__ = [
    "Request",
    "RequestStatus",
    "TokenSeq",
    "Program",
    "TokenFactory",
    "LengthDistribution",
    "LengthSampler",
    "WorkloadLengths",
    "WILDCHAT_LIKE",
    "ARENA_LIKE",
    "TOT_LIKE",
    "ConversationConfig",
    "ConversationWorkload",
    "UserProfile",
    "arena_config",
    "TreeOfThoughtsConfig",
    "TreeOfThoughtsWorkload",
    "DiurnalPattern",
    "COUNTRY_PROFILES",
    "generate_daily_trace",
    "RegionalTrace",
    "ProgramStream",
    "DiurnalRequestStream",
    "STREAM_FACTORIES",
    "register_stream_factory",
]
