"""Tree-of-Thoughts workloads (GSM8K-style multi-step reasoning, §5.1).

One program is one tree: the root prompt contains the system instructions
and the question; every node expands its parent's context with the parent's
generated "thought", so all nodes of a tree share long prefixes with their
ancestors and siblings.  With branching factor *b* and depth 4 the tree has
``1 + b + b^2 + b^3`` requests: 15 for the 2-branch trees and 85 for the
4-branch trees, matching the paper's setup.  All nodes at the same depth can
execute concurrently (one stage per depth).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from .lengths import TOT_LIKE, LengthSampler, WorkloadLengths
from .program import Program
from .request import Request
from .tokens import TokenFactory

__all__ = ["TreeOfThoughtsConfig", "TreeOfThoughtsWorkload"]


@dataclass(frozen=True)
class TreeOfThoughtsConfig:
    """Parameters of a Tree-of-Thoughts workload."""

    branching_factor: int = 2
    depth: int = 4
    lengths: WorkloadLengths = TOT_LIKE
    #: A single system prompt shared by every tree of this workload (the ToT
    #: solver uses one fixed instruction template).
    shared_system_prompt: bool = True
    seed: int = 0

    @property
    def requests_per_tree(self) -> int:
        return sum(self.branching_factor ** level for level in range(self.depth))


class TreeOfThoughtsWorkload:
    """Generates tree-structured reasoning programs."""

    def __init__(self, config: TreeOfThoughtsConfig = TreeOfThoughtsConfig()) -> None:
        if config.branching_factor < 1:
            raise ValueError("branching_factor must be at least 1")
        if config.depth < 1:
            raise ValueError("depth must be at least 1")
        self.config = config
        self._rng = random.Random(config.seed)
        self._tokens = TokenFactory(seed=config.seed + 17)
        self._lengths = LengthSampler(config.lengths, seed=config.seed + 29)
        self._system_tokens: Tuple[int, ...] = (
            self._tokens.fresh(self._lengths.system_prompt())
            if config.shared_system_prompt
            else ()
        )

    # ------------------------------------------------------------------
    def generate_tree(self, question_id: str, user_id: str, region: str) -> Program:
        """One tree program for one question."""
        config = self.config
        question = self._tokens.fresh(self._lengths.user_turn())
        root_prompt = self._system_tokens + question

        stages: List[List[Request]] = []
        # Each frontier entry is the prompt context of a node to expand.
        frontier: List[Tuple[int, ...]] = [root_prompt]
        for _depth in range(config.depth):
            stage: List[Request] = []
            next_frontier: List[Tuple[int, ...]] = []
            for context in frontier:
                output_len = self._lengths.output()
                request = Request(
                    prompt_tokens=context,
                    output_len=output_len,
                    user_id=user_id,
                    session_id=question_id,
                    region=region,
                )
                stage.append(request)
                thought = self._tokens.fresh(output_len)
                for _branch in range(config.branching_factor):
                    # Every child continues from the parent's context plus the
                    # parent's generated thought and a short branch-specific
                    # continuation marker.
                    marker = self._tokens.fresh(4)
                    next_frontier.append(context + thought + marker)
            stages.append(stage)
            frontier = next_frontier
        return Program(
            program_id=question_id,
            user_id=user_id,
            region=region,
            stages=stages,
            kind=f"tot-{config.branching_factor}",
        )

    def generate_programs(self, count: int, region: str, *, user_prefix: str = "tot-user") -> List[Program]:
        """``count`` independent trees issued from ``region``."""
        programs: List[Program] = []
        for index in range(count):
            question_id = f"{region}/question-{self.config.branching_factor}b-{index}"
            user_id = f"{region}/{user_prefix}-{index}"
            programs.append(self.generate_tree(question_id, user_id, region))
        return programs
