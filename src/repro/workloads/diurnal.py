"""Diurnal regional traffic patterns (Fig. 2, Fig. 3a).

Real LLM traffic peaks during each region's local daytime and dips at night;
the WildChat analysis in the paper shows per-region load varying by 2.88x to
32.64x over a day while the *aggregated* global load varies by only 1.29x.
The :class:`DiurnalPattern` models a region's hourly request rate as a
day-time bump centred on local mid-afternoon, and
:func:`generate_daily_trace` samples per-hour request counts with Poisson
noise so the traces look like measured data rather than smooth curves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from .traces import RegionalTrace

__all__ = ["DiurnalPattern", "generate_daily_trace", "COUNTRY_PROFILES"]


@dataclass(frozen=True)
class DiurnalPattern:
    """Hourly request rate for one region.

    Parameters
    ----------
    utc_offset_hours:
        Region's timezone offset; the peak lands at ``peak_local_hour`` local.
    base_rate / peak_rate:
        Requests per hour at the quietest and busiest times of day.
    peak_local_hour / peak_width_hours:
        Centre and width (std-dev) of the day-time activity bump.
    """

    utc_offset_hours: float
    base_rate: float
    peak_rate: float
    peak_local_hour: float = 15.0
    peak_width_hours: float = 4.5

    def rate_at(self, hour_utc: float) -> float:
        """Request rate (requests/hour) at a given UTC hour."""
        local = (hour_utc + self.utc_offset_hours) % 24.0
        # Circular distance to the peak hour.
        delta = min(abs(local - self.peak_local_hour), 24.0 - abs(local - self.peak_local_hour))
        bump = math.exp(-(delta ** 2) / (2.0 * self.peak_width_hours ** 2))
        return self.base_rate + (self.peak_rate - self.base_rate) * bump


#: Country-level profiles mirroring the six WildChat panels in Fig. 2
#: (peak magnitudes roughly proportional to the paper's y-axes).
COUNTRY_PROFILES: Dict[str, DiurnalPattern] = {
    "united-states": DiurnalPattern(-6, base_rate=900, peak_rate=7600),
    "russia": DiurnalPattern(+3, base_rate=700, peak_rate=6300),
    "china": DiurnalPattern(+8, base_rate=800, peak_rate=7400),
    "united-kingdom": DiurnalPattern(0, base_rate=250, peak_rate=1900),
    "germany": DiurnalPattern(+1, base_rate=200, peak_rate=1500),
    "france": DiurnalPattern(+1, base_rate=260, peak_rate=2300),
}


def generate_daily_trace(
    patterns: Mapping[str, DiurnalPattern],
    *,
    hours: int = 24,
    seed: int = 0,
    poisson_noise: bool = True,
) -> RegionalTrace:
    """Sample an ``hours``-long trace of per-region hourly request counts."""
    rng = random.Random(seed)
    counts: Dict[str, List[int]] = {}
    for region, pattern in patterns.items():
        series: List[int] = []
        for hour in range(hours):
            rate = pattern.rate_at(hour)
            if poisson_noise:
                value = _poisson(rng, rate)
            else:
                value = int(round(rate))
            series.append(value)
        counts[region] = series
    return RegionalTrace(hourly_counts=counts)


def _poisson(rng: random.Random, lam: float) -> int:
    """Poisson sample; normal approximation above lambda = 50 for speed."""
    if lam <= 0:
        return 0
    if lam > 50:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    # Knuth's algorithm for small lambda.
    threshold = math.exp(-lam)
    k = 0
    product = 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1
