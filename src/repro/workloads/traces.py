"""Containers and statistics for regional traffic traces.

A :class:`RegionalTrace` holds per-region hourly request counts and exposes
the aggregate statistics the paper uses to motivate cross-region load
balancing: per-region peak-to-trough variance, the aggregated global curve,
and the number of replicas each provisioning strategy would need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence

__all__ = ["RegionalTrace"]


@dataclass
class RegionalTrace:
    """Per-region time series of request counts (one entry per hour)."""

    hourly_counts: Dict[str, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(series) for series in self.hourly_counts.values()}
        if len(lengths) > 1:
            raise ValueError("all regions must cover the same number of hours")

    # ------------------------------------------------------------------
    @property
    def regions(self) -> List[str]:
        return list(self.hourly_counts)

    @property
    def num_hours(self) -> int:
        if not self.hourly_counts:
            return 0
        return len(next(iter(self.hourly_counts.values())))

    def series(self, region: str) -> List[int]:
        return list(self.hourly_counts[region])

    # ------------------------------------------------------------------
    # lazy iteration (the streaming path: nothing materialized per request)
    # ------------------------------------------------------------------
    def iter_hourly(self, region: str) -> Iterator[int]:
        """Lazily yield one region's hourly counts in trace order."""
        yield from self.hourly_counts[region]

    def iter_arrival_times(self, region: str, *, seed: int = 0) -> Iterator[float]:
        """Lazily yield monotone arrival times (seconds) for one region.

        Hour ``h`` contributes ``hourly_counts[region][h]`` arrivals placed
        uniformly at random within ``[h*3600, (h+1)*3600)`` and sorted, so
        memory is bounded by the *busiest hour's* count rather than the
        whole day's -- a full-day million-request trace streams in O(peak
        hour) memory.  Deterministic for a given ``seed``.
        """
        rng = random.Random(seed)
        for hour, count in enumerate(self.hourly_counts[region]):
            start = hour * 3600.0
            arrivals = sorted(rng.uniform(start, start + 3600.0) for _ in range(count))
            yield from arrivals

    # ------------------------------------------------------------------
    def aggregate(self) -> List[int]:
        """Hourly totals across all regions (the Fig. 3a aggregated curve)."""
        totals = [0] * self.num_hours
        for series in self.hourly_counts.values():
            for hour, value in enumerate(series):
                totals[hour] += value
        return totals

    def region_peak(self, region: str) -> int:
        return max(self.hourly_counts[region])

    def region_trough(self, region: str) -> int:
        return min(self.hourly_counts[region])

    def peak_to_trough_ratio(self, region: str) -> float:
        """How much a single region's demand swings over the day."""
        trough = max(1, self.region_trough(region))
        return self.region_peak(region) / trough

    def aggregated_peak(self) -> int:
        return max(self.aggregate()) if self.num_hours else 0

    def aggregated_peak_to_trough_ratio(self) -> float:
        totals = self.aggregate()
        if not totals:
            return 1.0
        return max(totals) / max(1, min(totals))

    def sum_of_region_peaks(self) -> int:
        """Capacity a region-local deployment must provision for (sum of
        independent per-region peaks)."""
        return sum(self.region_peak(region) for region in self.regions)

    def total_requests(self) -> int:
        return sum(sum(series) for series in self.hourly_counts.values())

    # ------------------------------------------------------------------
    def required_replicas(self, requests_per_replica_hour: float) -> Dict[str, int]:
        """Replicas needed per provisioning strategy.

        Returns a mapping with three strategies:

        * ``region_local`` -- sum over regions of ceil(region peak / capacity),
        * ``aggregated`` -- ceil(global peak / capacity), the SkyWalker pool,
        * ``on_demand_hours`` -- replica-hours under perfect autoscaling
          (sum over hours of ceil(demand / capacity)).
        """
        if requests_per_replica_hour <= 0:
            raise ValueError("requests_per_replica_hour must be positive")

        def replicas_for(load: float) -> int:
            return int(-(-load // requests_per_replica_hour))  # ceil division

        region_local = sum(
            replicas_for(self.region_peak(region)) for region in self.regions
        )
        aggregated = replicas_for(self.aggregated_peak())
        on_demand_hours = 0
        for hour in range(self.num_hours):
            demand = sum(self.hourly_counts[region][hour] for region in self.regions)
            on_demand_hours += replicas_for(demand)
        return {
            "region_local": region_local,
            "aggregated": aggregated,
            "on_demand_hours": on_demand_hours,
        }

    def subset(self, regions: Sequence[str]) -> "RegionalTrace":
        return RegionalTrace(
            hourly_counts={region: list(self.hourly_counts[region]) for region in regions}
        )
