"""Synthetic token-id generation with controllable prefix sharing.

The simulator has no tokenizer: prompts are tuples of integer token ids, and
two requests share a prefix exactly when their tuples share a prefix.  This
module hands out *disjoint* id ranges for independent pieces of text, so the
workload generators can compose prompts whose sharing structure is exact and
auditable (e.g. "all users in this workload share this 300-token system
prompt; each user additionally has a private 200-token context").
"""

from __future__ import annotations

import random
from typing import Tuple

__all__ = ["TokenFactory"]


class TokenFactory:
    """Produces fresh, never-repeating token sequences.

    Every call to :meth:`fresh` returns ids from a new, disjoint range, so
    independently generated text never accidentally shares tokens.  The
    factory is deterministic given its seed and call sequence.
    """

    def __init__(self, seed: int = 0, *, start: int = 1) -> None:
        self._rng = random.Random(seed)
        self._next_id = start

    def fresh(self, length: int) -> Tuple[int, ...]:
        """A fresh run of ``length`` token ids (monotonically increasing)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        tokens = tuple(range(self._next_id, self._next_id + length))
        self._next_id += length
        return tokens

    def fresh_shuffled(self, length: int) -> Tuple[int, ...]:
        """A fresh run with ids shuffled (no structure beyond disjointness)."""
        tokens = list(self.fresh(length))
        self._rng.shuffle(tokens)
        return tuple(tokens)

    @property
    def issued(self) -> int:
        """Total number of token ids issued so far."""
        return self._next_id - 1
