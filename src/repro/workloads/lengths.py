"""Request length distributions.

Fig. 4a of the paper shows the CDFs of input and output lengths in the
WildChat dataset: both are heavy-tailed, with the bulk of inputs below about
1,000 tokens, outputs typically a few hundred tokens, and a long tail out to
several thousand tokens.  We model both with truncated log-normal
distributions whose parameters are chosen to reproduce those qualitative
shapes (median a few hundred tokens, 99th percentile in the thousands).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["LengthDistribution", "LengthSampler", "WILDCHAT_LIKE", "ARENA_LIKE", "TOT_LIKE"]


@dataclass(frozen=True)
class LengthDistribution:
    """A truncated log-normal distribution over token counts."""

    median: float
    sigma: float
    minimum: int
    maximum: int

    def sample(self, rng: random.Random) -> int:
        mu = math.log(self.median)
        value = int(round(rng.lognormvariate(mu, self.sigma)))
        return max(self.minimum, min(self.maximum, value))

    def cdf_points(self, samples: Sequence[int]) -> List[Tuple[int, float]]:
        """Empirical CDF of ``samples`` as (length, cumulative fraction) points."""
        if not samples:
            return []
        ordered = sorted(samples)
        n = len(ordered)
        return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


@dataclass(frozen=True)
class WorkloadLengths:
    """Input (per-turn user message) and output length distributions."""

    user_turn: LengthDistribution
    output: LengthDistribution
    system_prompt: LengthDistribution


#: Matches the WildChat CDF shape in Fig. 4a (long-tailed, multi-turn chat).
WILDCHAT_LIKE = WorkloadLengths(
    user_turn=LengthDistribution(median=160, sigma=1.0, minimum=8, maximum=6000),
    output=LengthDistribution(median=320, sigma=0.9, minimum=1, maximum=7000),
    system_prompt=LengthDistribution(median=350, sigma=0.6, minimum=32, maximum=2000),
)

#: ChatBot Arena conversations: shorter prompts, comparable outputs.
ARENA_LIKE = WorkloadLengths(
    user_turn=LengthDistribution(median=90, sigma=1.1, minimum=4, maximum=4000),
    output=LengthDistribution(median=260, sigma=0.9, minimum=1, maximum=6000),
    system_prompt=LengthDistribution(median=120, sigma=0.5, minimum=16, maximum=800),
)

#: Tree-of-Thoughts on GSM8K: short thoughts, moderate question prompts.
TOT_LIKE = WorkloadLengths(
    user_turn=LengthDistribution(median=70, sigma=0.4, minimum=16, maximum=400),
    output=LengthDistribution(median=120, sigma=0.5, minimum=16, maximum=600),
    system_prompt=LengthDistribution(median=450, sigma=0.2, minimum=200, maximum=900),
)


class LengthSampler:
    """Seedable sampler over a :class:`WorkloadLengths` preset."""

    def __init__(self, lengths: WorkloadLengths = WILDCHAT_LIKE, seed: int = 0) -> None:
        self.lengths = lengths
        self._rng = random.Random(seed)

    def user_turn(self) -> int:
        return self.lengths.user_turn.sample(self._rng)

    def output(self) -> int:
        return self.lengths.output.sample(self._rng)

    def system_prompt(self) -> int:
        return self.lengths.system_prompt.sample(self._rng)
