"""Generator-backed workload streams.

The legacy workload path materializes every :class:`~repro.workloads.program.
Program` of a run up front, which is fine for minutes-long cells but not for
the paper's millions-of-users diurnal regime: a full-day, million-request
trace costs tens of gigabytes as lists.  This module provides the lazy
alternative:

* :class:`ProgramStream` -- a picklable, *re-instantiable* description of one
  region's program sequence.  Iterating it regenerates the programs from the
  builder's config and seed, so a stream can be replayed (``fresh_copy``),
  shipped to sweep worker processes, and split across clients without ever
  holding more than one program in memory.
* :class:`DiurnalRequestStream` -- a lazy day-long ``(arrival_time, Request)``
  stream sampled from a :class:`~repro.workloads.diurnal.DiurnalPattern`,
  used by the open-loop trace-replay clients and the engine macrobench.

Equivalence contract: for every registered factory, iterating the stream
yields programs whose semantic payload (prompt tokens, output lengths, user
and session identities, stage structure) is byte-identical to the legacy
materialized list for the same config -- the tests in
``tests/workloads/test_streaming_equivalence.py`` pin this for every builder.
Only the global ``Request.request_id`` counter values differ, because lazy
construction interleaves differently with other allocations.

Why factories yield ``(region, program)`` pairs in *legacy global order*
rather than one region directly: several legacy builders share a single RNG
across regions (e.g. one ``TreeOfThoughtsWorkload`` generating us, then eu,
then asia), so reproducing one region's sequence exactly requires replaying
the whole generation order and filtering.  That trades CPU (regions x) for
O(1) memory; single-region configs (wildchat, skewed) pay nothing extra.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Dict, Iterator, List, Tuple

from .conversation import ConversationConfig, ConversationWorkload
from .diurnal import DiurnalPattern, _poisson
from .lengths import LengthSampler, WorkloadLengths, WILDCHAT_LIKE
from .program import Program
from .request import Request
from .tokens import TokenFactory
from .tree_of_thoughts import TreeOfThoughtsConfig, TreeOfThoughtsWorkload

__all__ = [
    "ProgramStream",
    "DiurnalRequestStream",
    "STREAM_FACTORIES",
    "register_stream_factory",
]

#: Registry of stream factories.  Each factory is a generator function
#: yielding ``(region, Program)`` pairs in the legacy builder's global
#: generation order (see module docstring for why the order matters).
STREAM_FACTORIES: Dict[str, Callable[..., Iterator[Tuple[str, Program]]]] = {}


def register_stream_factory(
    name: str,
) -> Callable[[Callable[..., Iterator[Tuple[str, Program]]]], Callable[..., Iterator[Tuple[str, Program]]]]:
    """Class of decorators registering a program-stream factory under ``name``."""

    def decorator(fn: Callable[..., Iterator[Tuple[str, Program]]]):
        if name in STREAM_FACTORIES:
            raise ValueError(f"stream factory {name!r} already registered")
        STREAM_FACTORIES[name] = fn
        return fn

    return decorator


@register_stream_factory("conversation")
def conversation_stream(*, config: ConversationConfig) -> Iterator[Tuple[str, Program]]:
    """Lazily replay ``ConversationWorkload.generate_programs`` one program
    at a time (identical RNG consumption order, so identical programs)."""
    workload = ConversationWorkload(config)
    for user in workload.users:
        for index in range(config.conversations_per_user):
            yield user.region, workload.generate_conversation(user, index)


@register_stream_factory("tree-of-thoughts")
def tree_of_thoughts_stream(
    *,
    config: TreeOfThoughtsConfig,
    counts: Tuple[Tuple[str, int], ...],
    user_prefix: str = "tot-user",
) -> Iterator[Tuple[str, Program]]:
    """Lazily replay ``TreeOfThoughtsWorkload.generate_programs`` across the
    regions of ``counts`` (one shared workload instance, legacy RNG order)."""
    workload = TreeOfThoughtsWorkload(config)
    for region, count in counts:
        for index in range(count):
            question_id = f"{region}/question-{config.branching_factor}b-{index}"
            user_id = f"{region}/{user_prefix}-{index}"
            yield region, workload.generate_tree(question_id, user_id, region)


@dataclass(frozen=True)
class _StridedView:
    """Programs ``offset, offset+step, ...`` of a stream (one client's share).

    Mirrors the list path's ``_split_round_robin`` semantics:
    ``chunks[i] == programs[i::parts]``.  Each view iterates the underlying
    stream independently, so splitting an n-client region regenerates the
    stream n times -- CPU for memory, by design.
    """

    stream: "ProgramStream"
    offset: int
    step: int

    def __iter__(self) -> Iterator[Program]:
        return islice(iter(self.stream), self.offset, None, self.step)

    def __len__(self) -> int:
        total = len(self.stream)
        if self.offset >= total:
            return 0
        return (total - self.offset + self.step - 1) // self.step

    def __bool__(self) -> bool:
        return len(self) > 0


@dataclass(frozen=True)
class ProgramStream:
    """A picklable, re-instantiable lazy sequence of one region's programs.

    Parameters
    ----------
    factory:
        Name of a registered stream factory (see :data:`STREAM_FACTORIES`).
    region:
        The region whose programs this stream yields; other regions'
        programs are generated (to keep the RNG sequence identical to the
        legacy builder) but skipped.
    num_programs:
        Exact number of programs this stream yields, known up front from
        the builder's config -- lets clients be laid out without iterating.
    kwargs:
        Factory keyword arguments as a tuple of ``(name, value)`` pairs
        (kept as a tuple so the spec stays frozen/hashable/picklable).
    """

    factory: str
    region: str
    num_programs: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __iter__(self) -> Iterator[Program]:
        fn = STREAM_FACTORIES[self.factory]
        for region, program in fn(**dict(self.kwargs)):
            if region == self.region:
                yield program

    def __len__(self) -> int:
        return self.num_programs

    def __bool__(self) -> bool:
        return self.num_programs > 0

    def fresh_copy(self) -> "ProgramStream":
        """Streams are stateless descriptions: every iteration regenerates
        pristine programs, so the fresh copy is the stream itself."""
        return self

    def split(self, parts: int) -> List[_StridedView]:
        """Round-robin split into ``parts`` independent lazy views, matching
        the materialized path's ``programs[i::parts]`` assignment."""
        if parts < 1:
            raise ValueError("parts must be at least 1")
        return [_StridedView(stream=self, offset=i, step=parts) for i in range(parts)]

    def materialize(self) -> List[Program]:
        """Generate the full program list (testing/debug escape hatch)."""
        return list(self)


@dataclass(frozen=True)
class DiurnalRequestStream:
    """Lazy day-long ``(arrival_time_s, Request)`` stream for one region.

    Hourly request counts follow ``pattern`` with Poisson noise -- the same
    sampling as :func:`~repro.workloads.diurnal.generate_daily_trace` --
    and arrivals are uniform within each hour.  Memory is bounded by the
    *busiest hour's* arrival list (the times must be sorted), never by the
    full-day request count, which is what lets a million-request day drive
    the frontend in effectively O(1) memory.

    ``rate_scale`` rescales the pattern's hourly rates so one profile can
    serve unit tests (thousands of requests) and the macrobench (millions).
    """

    pattern: DiurnalPattern
    region: str
    hours: int = 24
    seed: int = 0
    rate_scale: float = 1.0
    lengths: WorkloadLengths = WILDCHAT_LIKE
    #: Tokens shared by every request of the region (system prompt); keeps
    #: per-request allocations small and exercises the prefix cache.
    shared_prefix_tokens: int = 32
    user_turn_tokens: int = 8
    #: Spread users so consistent-hashing systems see realistic key counts.
    users: int = 1000

    def expected_requests(self) -> int:
        """Sum of the pattern's (scaled) hourly rates -- the expected number
        of requests per day, without sampling anything."""
        return int(
            sum(self.pattern.rate_at(hour) * self.rate_scale for hour in range(self.hours))
        )

    def __iter__(self) -> Iterator[Tuple[float, Request]]:
        region_salt = zlib.crc32(self.region.encode("utf-8")) % 99991
        rng = random.Random(self.seed + region_salt)
        tokens = TokenFactory(seed=self.seed + region_salt)
        sampler = LengthSampler(self.lengths, seed=self.seed + region_salt + 1)
        prefix = tokens.fresh(self.shared_prefix_tokens)
        for hour in range(self.hours):
            rate = self.pattern.rate_at(hour) * self.rate_scale
            count = _poisson(rng, rate)
            start = hour * 3600.0
            arrivals = sorted(rng.uniform(start, start + 3600.0) for _ in range(count))
            for arrival in arrivals:
                user = rng.randrange(self.users)
                request = Request(
                    prompt_tokens=prefix + tokens.fresh(self.user_turn_tokens),
                    output_len=sampler.output(),
                    user_id=f"{self.region}-duser-{user}",
                    session_id=f"{self.region}-dsession-{user}",
                    region=self.region,
                )
                yield arrival, request

    def fresh_copy(self) -> "DiurnalRequestStream":
        return self
