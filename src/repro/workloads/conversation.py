"""Multi-turn conversation workloads (WildChat- and ChatBot-Arena-like).

The generator reproduces the *structural* properties of the paper's chat
traces that matter to a prefix-aware balancer:

* every turn's prompt extends the previous turn's prompt (chat history), so
  within-session prefix similarity is very high;
* a user keeps their system prompt/context across conversations, so
  within-user similarity is significant (Fig. 5a: 8--20 %);
* a configurable fraction of users share prompt templates, producing the
  weaker cross-user similarity (Fig. 5a: 2.5--10 %);
* sharing across *regions* is negligible because users live in one region.

Output lengths are sampled from the heavy-tailed distributions in
:mod:`repro.workloads.lengths`, reproducing the unpredictability that breaks
blind pushing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .lengths import ARENA_LIKE, WILDCHAT_LIKE, LengthSampler, WorkloadLengths
from .program import Program
from .request import Request
from .tokens import TokenFactory

__all__ = ["ConversationConfig", "ConversationWorkload", "UserProfile"]


@dataclass(frozen=True)
class ConversationConfig:
    """Parameters of a synthetic multi-turn conversation workload."""

    regions: Tuple[str, ...] = ("us", "eu", "asia")
    users_per_region: int = 20
    conversations_per_user: int = 2
    #: Min/max turns per conversation (uniformly sampled).
    turns_range: Tuple[int, int] = (2, 6)
    lengths: WorkloadLengths = WILDCHAT_LIKE
    #: Number of shared prompt templates per region; 0 disables cross-user
    #: sharing entirely.
    shared_templates: int = 4
    #: Probability a user adopts one of the shared templates instead of a
    #: private system prompt.
    template_adoption: float = 0.35
    #: Probability a shared template is global rather than region-local
    #: (controls the small cross-region similarity in Fig. 5a).
    global_template_fraction: float = 0.15
    seed: int = 0


@dataclass
class UserProfile:
    """A synthetic user: identity plus their persistent prompt context."""

    user_id: str
    region: str
    system_tokens: Tuple[int, ...]
    uses_shared_template: bool


def arena_config(**overrides) -> ConversationConfig:
    """Convenience preset approximating the ChatBot Arena workload (§5.1)."""
    defaults = dict(
        lengths=ARENA_LIKE,
        shared_templates=6,
        template_adoption=0.5,
        turns_range=(2, 5),
    )
    defaults.update(overrides)
    return ConversationConfig(**defaults)


class ConversationWorkload:
    """Generates users and their conversation programs."""

    def __init__(self, config: ConversationConfig = ConversationConfig()) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._tokens = TokenFactory(seed=config.seed)
        self._lengths = LengthSampler(config.lengths, seed=config.seed + 1)
        self._global_templates: List[Tuple[int, ...]] = []
        self._regional_templates: Dict[str, List[Tuple[int, ...]]] = {}
        self.users: List[UserProfile] = []
        self._build_templates()
        self._build_users()

    # ------------------------------------------------------------------
    def _build_templates(self) -> None:
        config = self.config
        for region in config.regions:
            templates: List[Tuple[int, ...]] = []
            for _ in range(config.shared_templates):
                length = self._lengths.system_prompt()
                if self._rng.random() < config.global_template_fraction:
                    if not self._global_templates:
                        self._global_templates.append(self._tokens.fresh(length))
                    templates.append(self._rng.choice(self._global_templates))
                else:
                    templates.append(self._tokens.fresh(length))
            self._regional_templates[region] = templates

    def _build_users(self) -> None:
        config = self.config
        for region in config.regions:
            for index in range(config.users_per_region):
                adopt = (
                    config.shared_templates > 0
                    and self._rng.random() < config.template_adoption
                )
                if adopt:
                    system = self._rng.choice(self._regional_templates[region])
                else:
                    system = self._tokens.fresh(self._lengths.system_prompt())
                self.users.append(
                    UserProfile(
                        user_id=f"{region}-user-{index}",
                        region=region,
                        system_tokens=system,
                        uses_shared_template=adopt,
                    )
                )

    # ------------------------------------------------------------------
    def users_in(self, region: str) -> List[UserProfile]:
        return [user for user in self.users if user.region == region]

    def generate_conversation(self, user: UserProfile, conversation_index: int) -> Program:
        """One multi-turn conversation program for ``user``."""
        config = self.config
        turns = self._rng.randint(*config.turns_range)
        session_id = f"{user.user_id}/conv-{conversation_index}"
        history: Tuple[int, ...] = user.system_tokens
        stages: List[List[Request]] = []
        for _turn in range(turns):
            user_msg = self._tokens.fresh(self._lengths.user_turn())
            prompt = history + user_msg
            output_len = self._lengths.output()
            request = Request(
                prompt_tokens=prompt,
                output_len=output_len,
                user_id=user.user_id,
                session_id=session_id,
                region=user.region,
            )
            stages.append([request])
            # The assistant's reply becomes part of the next turn's history.
            assistant_msg = self._tokens.fresh(output_len)
            history = prompt + assistant_msg
        return Program(
            program_id=session_id,
            user_id=user.user_id,
            region=user.region,
            stages=stages,
            kind="conversation",
        )

    def generate_programs(self) -> List[Program]:
        """All conversations of all users, interleaved per region."""
        programs: List[Program] = []
        for user in self.users:
            for index in range(self.config.conversations_per_user):
                programs.append(self.generate_conversation(user, index))
        return programs

    def programs_by_region(self) -> Dict[str, List[Program]]:
        grouped: Dict[str, List[Program]] = {region: [] for region in self.config.regions}
        for program in self.generate_programs():
            grouped[program.region].append(program)
        return grouped
