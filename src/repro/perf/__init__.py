"""Hot-path performance benchmark subsystem (stdlib-only).

``repro.perf.run_suite()`` times the router/replica hot paths — prefix-tree
lookup/insert/eviction, radix-cache eviction/admission, and one full Fig. 8
wildchat sweep cell — and emits ``BENCH_hotpaths.json``.  See PERFORMANCE.md
for how to run it and how to read the committed before/after report.

Usage::

    PYTHONPATH=src python -m repro.perf --quick   # CI-sized smoke run
    from repro.perf import run_suite
    payload = run_suite(quick=True, out_path=None)
"""

from .engine_bench import (
    ENGINE_REPORT_SCHEMA,
    ENGINE_SCHEMA,
    run_engine_bench,
    write_engine_report,
)
from .harness import alloc_peak_bytes, loglog_slope, time_op
from .suite import REPORT_SCHEMA, SUITE_SCHEMA, run_suite, write_report

__all__ = [
    "run_suite",
    "write_report",
    "run_engine_bench",
    "write_engine_report",
    "time_op",
    "alloc_peak_bytes",
    "loglog_slope",
    "SUITE_SCHEMA",
    "REPORT_SCHEMA",
    "ENGINE_SCHEMA",
    "ENGINE_REPORT_SCHEMA",
]
