"""The hot-path microbenchmark suite (``repro.perf.run_suite``).

Each benchmark targets one path the routing stack exercises per request:

* ``trie_best_target``      — router-side prefix lookup (time + transient
  allocation volume; the allocation number is what the "allocation-free
  descent" work moves),
* ``trie_insert_evict``     — insert into a capacity-bounded tree, paying
  eviction on every call,
* ``trie_evict_scaling``    — per-eviction cost at growing tree sizes; the
  log-log slope distinguishes a full-tree scan (~1) from a heap pop (~0),
* ``trie_remove_target``    — decommissioning a target (full erase + prune),
* ``radix_evict_scaling``   — replica-side LRU eviction at growing sizes,
* ``radix_admission``       — the match/insert/evict cycle a replica runs
  per admitted request,
* ``fig8_wildchat_cell``    — one full (wildchat, skywalker) macro-sweep
  cell per seed, timed through the sweep executor's per-cell wall-clock
  channel (``cell_seconds_seed<N>``; ``wall_s`` is the base seed's best),
* ``net_transit_sampling``  — multi-hop one-way latency sampling on the
  routed backbone network: the fault-free ``_route_base`` fast path and
  the per-edge walk a latency spike forces, per sampled pair.

Everything is deterministic (fixed-seed RNG builds the synthetic token
paths) and stdlib-only.  The suite runs unchanged against the
pre-optimization implementations, which is how the committed before/after
report in ``BENCH_hotpaths.json`` was produced (see PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import random
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .harness import BenchResult, alloc_peak_bytes, loglog_slope, time_op

__all__ = ["run_suite", "write_report", "SUITE_SCHEMA", "REPORT_SCHEMA"]

SUITE_SCHEMA = "repro-perf/1"
REPORT_SCHEMA = "repro-perf-report/1"

#: Targets used by every trie benchmark; includes the r9/r10 pair whose
#: ``repr`` ordering motivated the deterministic tie-break satellite.
_TARGETS = tuple(f"r{i}" for i in range(12))


# ----------------------------------------------------------------------
# deterministic synthetic token paths
# ----------------------------------------------------------------------
def _make_paths(
    rng: random.Random,
    count: int,
    *,
    n_shared: int = 16,
    shared_len: int = 48,
    unique_len: int = 80,
    vocab: int = 50_000,
) -> List[Tuple[int, ...]]:
    """Paths with wildchat-like shape: a shared head plus a unique tail."""
    shared = [
        tuple(rng.randrange(vocab) for _ in range(shared_len)) for _ in range(n_shared)
    ]
    return [
        shared[i % n_shared] + tuple(rng.randrange(vocab) for _ in range(unique_len))
        for i in range(count)
    ]


def _build_tree(paths: Sequence[Tuple[int, ...]], max_tokens: float = float("inf")):
    from repro.core.prefix_tree import PrefixTree

    tree = PrefixTree(max_tokens=max_tokens)
    for i, path in enumerate(paths):
        tree.insert(path, _TARGETS[i % len(_TARGETS)])
    return tree


def _leaf_count(tree) -> int:
    return sum(
        1 for node in tree._iter_nodes() if node.parent is not None and not node.children
    )


# ----------------------------------------------------------------------
# individual benchmarks
# ----------------------------------------------------------------------
def _bench_trie_best_target(quick: bool) -> BenchResult:
    rng = random.Random(1234)
    paths = _make_paths(rng, 256 if quick else 2048)
    tree = _build_tree(paths)
    available = set(_TARGETS[:8])
    probes = paths[:: max(1, len(paths) // 64)]
    state = {"i": 0}

    def op():
        i = state["i"]
        state["i"] = (i + 1) % len(probes)
        return tree.best_target(probes[i], available)

    return {
        "per_op_us": time_op(op, number=500 if quick else 2000, repeats=3) * 1e6,
        "alloc_peak_bytes_per_op": alloc_peak_bytes(op, number=30),
    }


def _bench_trie_insert_evict(quick: bool) -> BenchResult:
    rng = random.Random(99)
    paths = _make_paths(rng, 512 if quick else 2048)
    # Capacity fits only a fraction of the paths: inserts evict continuously.
    tree = _build_tree(paths[:128], max_tokens=128 * 60)
    state = {"i": 0}

    def op():
        i = state["i"]
        state["i"] = (i + 1) % len(paths)
        tree.insert(paths[i], _TARGETS[i % len(_TARGETS)])

    return {"per_op_us": time_op(op, number=300 if quick else 1000, repeats=3) * 1e6}


def _bench_trie_evict_scaling(quick: bool) -> BenchResult:
    sizes = (256, 1024) if quick else (512, 2048, 8192)
    points: List[Tuple[float, float]] = []
    result: BenchResult = {}
    for size in sizes:
        rng = random.Random(31 + size)
        paths = _make_paths(rng, size, n_shared=max(8, size // 64))
        best = float("inf")
        for _ in range(2 if quick else 3):
            tree = _build_tree(paths)
            leaves_before = _leaf_count(tree)
            tree.max_tokens = tree.total_tokens / 2
            import time as _time

            start = _time.perf_counter()
            tree._enforce_capacity()
            elapsed = _time.perf_counter() - start
            # Evicted leaves can be replaced by parents becoming leaves, so
            # the leaf delta undercounts; it is still a stable lower bound
            # and identical across implementations, which is all the slope
            # comparison needs.
            evicted = max(1, leaves_before - _leaf_count(tree))
            best = min(best, elapsed / evicted)
        points.append((float(size), best))
        result[f"per_evict_us_n{size}"] = best * 1e6
    result["loglog_slope"] = loglog_slope(points)
    return result


def _bench_trie_remove_target(quick: bool) -> BenchResult:
    rng = random.Random(7)
    paths = _make_paths(rng, 512 if quick else 2048)
    holder: Dict[str, object] = {}

    def setup():
        holder["tree"] = _build_tree(paths)

    def op():
        tree = holder["tree"]
        for target in _TARGETS:
            tree.remove_target(target)

    per_all = time_op(op, number=1, repeats=2 if quick else 3, setup=setup)
    return {"per_target_us": per_all / len(_TARGETS) * 1e6}


def _bench_radix_evict_scaling(quick: bool) -> BenchResult:
    from repro.replica.kv_cache import RadixCache

    sizes = (256, 1024) if quick else (512, 2048, 8192)
    points: List[Tuple[float, float]] = []
    result: BenchResult = {}
    for size in sizes:
        rng = random.Random(17 + size)
        paths = _make_paths(rng, size, n_shared=max(8, size // 64))
        best = float("inf")
        for _ in range(2 if quick else 3):
            cache = RadixCache()
            for i, path in enumerate(paths):
                cache.insert(path, now=float(i))
            import time as _time

            start = _time.perf_counter()
            cache.evict(cache.total_tokens, now=float(len(paths)))
            elapsed = _time.perf_counter() - start
            best = min(best, elapsed / size)
        points.append((float(size), best))
        result[f"per_leaf_us_n{size}"] = best * 1e6
    result["loglog_slope"] = loglog_slope(points)
    return result


def _bench_radix_admission(quick: bool) -> BenchResult:
    from repro.replica.kv_cache import RadixCache

    rng = random.Random(5)
    paths = _make_paths(rng, 256 if quick else 1024)
    cache = RadixCache(capacity_tokens=16_384)
    state = {"i": 0, "now": 0.0}

    def op():
        i = state["i"]
        state["i"] = (i + 1) % len(paths)
        state["now"] += 1.0
        now = state["now"]
        tokens = paths[i]
        match = cache.match_prefix(tokens, now=now)
        needed = len(tokens) - match.matched_tokens
        free = cache.capacity_tokens - cache.total_tokens
        if needed > free:
            cache.evict(int(needed - free), now=now)
        cache.insert(tokens, now=now)

    return {"per_op_us": time_op(op, number=300 if quick else 1000, repeats=3) * 1e6}


def _bench_fig8_wildchat_cell(quick: bool) -> BenchResult:
    from repro.experiments import REGISTRY, SweepTask, run_sweep_task
    from repro.experiments.macro import default_macro_cluster
    from repro.experiments.workloads import MACRO_WORKLOAD_BUILDERS

    scale = 0.2 if quick else 0.5
    duration = 40.0 if quick else 120.0
    # Each seed is one independently generated (wildchat, skywalker) sweep
    # cell, timed via the sweep executor's own per-cell wall-clock channel
    # (RunMetrics.wall_clock_s, i.e. what SweepResult.cell_seconds reports),
    # so the perf report and a real multi-seed sweep measure the same thing.
    seeds = (0,) if quick else (0, 1)
    result: BenchResult = {}
    completed = 0
    for seed in seeds:
        workload = MACRO_WORKLOAD_BUILDERS["wildchat"](scale=scale, seed=seed)
        task = SweepTask(
            system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
            workload=workload,
            cluster=default_macro_cluster(scale),
            duration_s=duration,
            seed=seed,
        )
        best = float("inf")
        for _ in range(2 if quick else 3):
            metrics = run_sweep_task(task)
            best = min(best, metrics.wall_clock_s)
            if seed == seeds[0]:
                completed = metrics.num_completed
        result[f"cell_seconds_seed{seed}"] = best
    result.update(
        {
            "wall_s": result[f"cell_seconds_seed{seeds[0]}"],
            "completed": float(completed),
            "scale": scale,
            "duration_s": duration,
        }
    )
    return result


def _bench_net_transit_sampling(quick: bool) -> BenchResult:
    from repro.net import NetConfig, build_routed_network
    from repro.network import default_topology
    from repro.sim import Environment

    def make_network():
        return build_routed_network(
            Environment(),
            NetConfig(topology="backbone"),
            default_topology(),
            jitter_fraction=0.05,
            seed=0,
        )

    pairs = [
        (src, dst)
        for src in ("us", "eu", "asia")
        for dst in ("us", "eu", "asia")
        if src != dst
    ]
    number = 300 if quick else 1000

    fast = make_network()

    def op_fast():
        for src, dst in pairs:
            fast.sample_one_way(src, dst)

    faulted = make_network()
    faulted.add_link_extra_latency("us", "wan/north-america", 0.01)

    def op_faulted():
        for src, dst in pairs:
            faulted.sample_one_way(src, dst)

    result: BenchResult = {
        "per_pair_us": time_op(op_fast, number=number, repeats=3) / len(pairs) * 1e6,
        "per_pair_faulted_us": time_op(op_faulted, number=number, repeats=3)
        / len(pairs)
        * 1e6,
        "alloc_peak_bytes_per_op": float(alloc_peak_bytes(op_fast, number=30)),
    }
    return result


_BENCHMARKS = {
    "trie_best_target": _bench_trie_best_target,
    "trie_insert_evict": _bench_trie_insert_evict,
    "trie_evict_scaling": _bench_trie_evict_scaling,
    "trie_remove_target": _bench_trie_remove_target,
    "radix_evict_scaling": _bench_radix_evict_scaling,
    "radix_admission": _bench_radix_admission,
    "fig8_wildchat_cell": _bench_fig8_wildchat_cell,
    "net_transit_sampling": _bench_net_transit_sampling,
}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_suite(
    quick: bool = False,
    out_path: Optional[str] = "BENCH_hotpaths.json",
    only: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run every hot-path microbenchmark and return (and emit) the results.

    With the default ``out_path`` the JSON lands in the current working
    directory — run from the repo root to refresh ``BENCH_hotpaths.json``.
    ``quick=True`` shrinks sizes/iterations for CI smoke use.  ``only``
    restricts the run to a subset of benchmark names.
    """
    names = list(only) if only else list(_BENCHMARKS)
    unknown = sorted(set(names) - set(_BENCHMARKS))
    if unknown:
        raise ValueError(f"unknown benchmark(s): {unknown}; known: {sorted(_BENCHMARKS)}")
    results: Dict[str, BenchResult] = {}
    for name in names:
        results[name] = _BENCHMARKS[name](quick)
    payload: Dict[str, object] = {
        "schema": SUITE_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": results,
    }
    if out_path:
        Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def write_report(
    before: Dict[str, object],
    after: Dict[str, object],
    after_quick: Dict[str, object],
    out_path: str = "BENCH_hotpaths.json",
) -> Dict[str, object]:
    """Combine before/after suite runs into the committed comparison report.

    ``before`` must come from the pre-optimization implementation (same
    machine, same suite), ``after`` from the optimized one; ``after_quick``
    is the ``quick=True`` run CI uses as its regression baseline.
    """
    comparison: Dict[str, Dict[str, float]] = {}
    for name, after_row in after["benchmarks"].items():
        before_row = before["benchmarks"].get(name)
        if not before_row:
            continue
        row: Dict[str, float] = {}
        for key, after_value in after_row.items():
            before_value = before_row.get(key)
            if (
                isinstance(before_value, (int, float))
                and isinstance(after_value, (int, float))
                and after_value > 0
                and ("us" in key or key in ("wall_s", "alloc_peak_bytes_per_op"))
            ):
                row[f"{key}_speedup"] = before_value / after_value
        comparison[name] = row
    payload = {
        "schema": REPORT_SCHEMA,
        "before": before,
        "after": after,
        "after_quick": after_quick,
        "comparison": comparison,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description="Run the hot-path benchmark suite."
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default="BENCH_hotpaths.json", help="output JSON path ('' = stdout only)")
    parser.add_argument("--only", nargs="*", default=None, help="subset of benchmark names")
    args = parser.parse_args(argv)
    payload = run_suite(quick=args.quick, out_path=args.out or None, only=args.only)
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0
