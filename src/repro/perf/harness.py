"""Stdlib-only measurement primitives for the hot-path benchmark suite.

Two measurements matter for this repo's hot paths:

* **wall time per operation** — :func:`time_op` runs a callable in batches
  and reports the best batch (the standard way to suppress scheduler noise
  without external dependencies), and
* **transient allocation volume per operation** — :func:`alloc_peak_bytes`
  uses :mod:`tracemalloc` to record how far the Python heap grows while one
  operation runs.  Slicing token tuples and materialising availability sets
  show up here even though the garbage is freed immediately afterwards,
  which is exactly what "allocation-free hot path" claims need to measure.

Everything is deterministic given the caller's inputs; no wall-clock value
is ever fed back into benchmark *workloads* (only into results).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["time_op", "alloc_peak_bytes", "loglog_slope", "BenchResult"]

#: One benchmark's results: flat JSON-ready mapping.
BenchResult = Dict[str, float]


def time_op(
    fn: Callable[[], object],
    *,
    number: int = 1000,
    repeats: int = 5,
    setup: Callable[[], object] = None,
) -> float:
    """Best per-call wall time (seconds) of ``fn`` over ``repeats`` batches.

    ``setup`` (when given) runs before *each* batch, outside the timed
    region — use it to rebuild state that the measured operation consumes
    (e.g. refill a tree that eviction drains).
    """
    best = float("inf")
    perf = time.perf_counter
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = perf()
        for _ in range(number):
            fn()
        elapsed = perf() - start
        best = min(best, elapsed / number)
    return best


def alloc_peak_bytes(fn: Callable[[], object], *, number: int = 50) -> float:
    """Average peak heap growth (bytes) of one ``fn`` call.

    The peak is reset before every call, so retained garbage from earlier
    iterations does not accumulate into later measurements; what remains is
    the transient allocation high-water mark of a single operation.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        total = 0.0
        for _ in range(number):
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            fn()
            _, peak = tracemalloc.get_traced_memory()
            total += max(0, peak - before)
        return total / number
    finally:
        if not was_tracing:
            tracemalloc.stop()


def loglog_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``.

    For a per-operation cost measured at increasing structure sizes the
    slope approximates the polynomial order: ~1 for a linear scan per op,
    ~0 for O(1)/O(log n).  Only sizes with positive cost contribute.
    """
    import math

    xs: List[float] = []
    ys: List[float] = []
    for x, y in points:
        if x > 0 and y > 0:
            xs.append(math.log(x))
            ys.append(math.log(y))
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom
