"""``python -m repro.perf`` — run the hot-path benchmark suite."""

import sys

from .suite import main

if __name__ == "__main__":
    sys.exit(main())
