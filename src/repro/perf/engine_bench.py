"""Engine macrobenchmarks (``repro.perf.engine_bench``).

Three benchmarks pin the million-event sim-core work:

* ``timeline_hold``       — the classic *hold model* run directly against the
  two timeline structures (``CalendarQueue`` vs the reference heap): keep N
  events pending, repeatedly pop the earliest and push a successor a random
  delay later.  This isolates scheduler cost from event machinery and is
  where the calendar queue's amortized O(1) shows up against the heap's
  O(log n) + cache-hostile sift path.  The committed full run (millions
  pending) is the ``>=2x`` headline; CI re-checks a looser, noise-safe bound
  on the quick run.
* ``engine_steps``        — the same hold model end-to-end through
  :class:`~repro.sim.Environment` (timeouts, callbacks, the works) for both
  timelines.  The ratio here is smaller by construction: Event allocation
  and callback dispatch are shared costs that dilute the scheduler win.
* ``streamed_diurnal_cell`` — a full-day diurnal trace streamed through the
  real stack (skywalker balancers, replicas, network) via
  :class:`~repro.workloads.streams.DiurnalRequestStream` and
  :class:`~repro.cluster.TraceReplayClient`, with
  ``RequestTracker(retain_completed=False)``.  Reports events/sec and the
  tracemalloc peak over a short and a doubled simulation window at the same
  rate; the window processes ~2x the requests but the peak must stay (near)
  flat — the O(1)-memory streaming claim.

Everything is deterministic and stdlib-only.  The committed before/after
report in ``BENCH_engine.json`` was produced by ``write_engine_report`` on
one host (see PERFORMANCE.md); CI runs the quick suite against the report's
``quick`` section via ``benchmarks/test_perf_engine.py``.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import time
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from .harness import BenchResult

__all__ = ["run_engine_bench", "write_engine_report", "ENGINE_SCHEMA", "ENGINE_REPORT_SCHEMA"]

ENGINE_SCHEMA = "repro-perf-engine/1"
ENGINE_REPORT_SCHEMA = "repro-perf-engine-report/1"

#: Priority used for every synthetic entry (== ``repro.sim.engine.NORMAL``).
_NORMAL = 1


# ----------------------------------------------------------------------
# timeline_hold: structure-level hold model
# ----------------------------------------------------------------------
def _hold_ns_per_op(timeline, *, pending: int, ops: int, seed: int) -> float:
    """Run the hold model on a raw timeline and return ns per pop+push pair.

    The RNG sequence is fully determined by ``seed`` so the heap and the
    calendar see byte-identical workloads; GC is paused during the timed
    region so collection pauses don't land on one structure's tab.
    """
    rng = random.Random(seed)
    eid = 0
    for _ in range(pending):
        eid += 1
        timeline.push((rng.random() * 3600.0, _NORMAL, eid, None))
    # A small cycle of pre-drawn delays keeps RNG cost out of the timed loop.
    delays = [0.001 + rng.random() * 2.0 for _ in range(1024)]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        perf = time.perf_counter
        start = perf()
        for i in range(ops):
            when = timeline.pop()[0]
            eid += 1
            timeline.push((when + delays[i & 1023], _NORMAL, eid, None))
        elapsed = perf() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed / ops * 1e9


def _bench_timeline_hold(quick: bool) -> BenchResult:
    from repro.sim.calendar import CalendarQueue
    from repro.sim.engine import _HeapTimeline

    # The full size sits in the paper's regime -- millions of queued events
    # -- where the heap's log-depth sift and cache misses dominate.  Quick
    # keeps CI under a second per repeat while still deep enough to rank the
    # structures correctly.
    pending = 200_000 if quick else 4_000_000
    ops = 100_000 if quick else 400_000
    repeats = 2 if quick else 3
    result: BenchResult = {"pending": float(pending)}
    for name, factory in (("heap", _HeapTimeline), ("calendar", CalendarQueue)):
        best = float("inf")
        for repeat in range(repeats):
            best = min(
                best,
                _hold_ns_per_op(factory(), pending=pending, ops=ops, seed=42 + repeat),
            )
        result[f"{name}_ns_per_op"] = best
    result["speedup"] = result["heap_ns_per_op"] / result["calendar_ns_per_op"]
    return result


# ----------------------------------------------------------------------
# engine_steps: the hold model through Environment
# ----------------------------------------------------------------------
def _engine_ns_per_event(timeline_name: str, *, pending: int, ops: int, seed: int) -> float:
    from repro.sim import Environment

    env = Environment(timeline=timeline_name)
    rng = random.Random(seed)
    for _ in range(pending):
        env.timeout(rng.random() * 3600.0)
    delays = [0.001 + rng.random() * 2.0 for _ in range(1024)]
    timeout = env.timeout
    step = env.step
    perf = time.perf_counter
    start = perf()
    for i in range(ops):
        step()
        timeout(delays[i & 1023])
    elapsed = perf() - start
    return elapsed / ops * 1e9


def _bench_engine_steps(quick: bool) -> BenchResult:
    pending = 50_000 if quick else 1_000_000
    ops = 50_000 if quick else 200_000
    repeats = 2 if quick else 3
    result: BenchResult = {"pending": float(pending)}
    for name in ("heap", "calendar"):
        best = float("inf")
        for repeat in range(repeats):
            best = min(
                best,
                _engine_ns_per_event(name, pending=pending, ops=ops, seed=7 + repeat),
            )
        result[f"{name}_ns_per_event"] = best
        result[f"{name}_events_per_s"] = 1e9 / best
    result["speedup"] = result["heap_ns_per_event"] / result["calendar_ns_per_event"]
    return result


# ----------------------------------------------------------------------
# streamed_diurnal_cell: a full day through the real stack
# ----------------------------------------------------------------------
#: Per-region diurnal profiles for the macrobench cell (paper Fig. 2 shapes:
#: offsets put each region's peak in its local afternoon).
_DIURNAL_PATTERNS: Dict[str, Tuple[float, float, float]] = {
    # region: (utc_offset_hours, base_rate, peak_rate) in requests/hour
    "us": (-6.0, 900.0, 7600.0),
    "eu": (0.0, 250.0, 1900.0),
    "asia": (8.0, 800.0, 7400.0),
}


def _diurnal_streams(rate_scale: float, seed: int, hours: int = 24):
    from repro.workloads.diurnal import DiurnalPattern
    from repro.workloads.streams import DiurnalRequestStream

    streams = {}
    for region, (offset, base, peak) in _DIURNAL_PATTERNS.items():
        pattern = DiurnalPattern(offset, base_rate=base, peak_rate=peak)
        streams[region] = DiurnalRequestStream(
            pattern=pattern, region=region, hours=hours, seed=seed, rate_scale=rate_scale
        )
    return streams


def expected_diurnal_requests(rate_scale: float, hours: int = 24) -> int:
    """Expected request count across the three regions over ``hours``."""
    return sum(s.expected_requests() for s in _diurnal_streams(rate_scale, 0, hours).values())


def _run_streamed_cell(
    rate_scale: float,
    *,
    hours: int = 24,
    seed: int = 0,
    replicas_per_region: int = 4,
    traced: bool = False,
    trie_max_tokens: Optional[int] = None,
    hbm_fraction: float = 1.0,
) -> Dict[str, float]:
    """One full-day streamed diurnal cell; returns counters + timings.

    ``traced=True`` wraps the run in tracemalloc (slower, so events/sec from
    traced runs is not comparable with untraced ones) and reports the peak
    traced heap -- the number whose *flatness across simulation windows* is
    the O(1)-memory streaming claim.

    ``trie_max_tokens`` / ``hbm_fraction`` shrink the two capacity-bounded
    caches (the balancers' routing tries, the replicas' radix KV caches) so
    they *saturate* inside the flatness pair's short window.  Both caches
    legitimately grow with unique tokens seen until they hit their caps; at
    the default sizes (2M trie tokens, ~59k KV tokens x N replicas) a short
    traced run would read that bounded warm-up as request-linear growth.
    """
    from repro.cluster import (
        Deployment,
        Frontend,
        ReplicaSpec,
        RequestTracker,
        TraceReplayClient,
    )
    from repro.experiments.registry import REGISTRY
    from repro.experiments.runner import build_system
    from repro.mem import MemoryConfig
    from repro.network import Network, default_topology
    from repro.replica import LLAMA_8B_L4
    from repro.sim import EmptySchedule, Environment

    # The paper's own replica profile: its ~25-100 ms continuous-batching
    # steps keep a simulated day's decode-event count tractable (the tiny
    # unit-test profile steps every 2 ms, which would drown the run in
    # replica events regardless of request count).
    env = Environment()
    topology = default_topology()
    network = Network(env, topology, jitter_fraction=0.05, seed=seed)
    deployment = Deployment(
        env,
        [
            ReplicaSpec(region=region, count=replicas_per_region, profile=LLAMA_8B_L4)
            for region in _DIURNAL_PATTERNS
        ],
        topology=topology,
        network=network,
        memory=None if hbm_fraction >= 1.0 else MemoryConfig(hbm_fraction=hbm_fraction),
    )
    tracker = RequestTracker(env, retain_completed=False)
    for replica in deployment.replicas:
        replica.add_completion_listener(tracker.complete)
    frontend = Frontend(env, network)
    overrides = {} if trie_max_tokens is None else {"trie_max_tokens": trie_max_tokens}
    build_system(
        REGISTRY.spec("skywalker", **overrides),
        env,
        network,
        deployment,
        frontend,
        client_regions=list(_DIURNAL_PATTERNS),
        hash_key="user",
    )
    clients = [
        TraceReplayClient(
            env,
            name=f"{region}/replay",
            region=region,
            frontend=frontend,
            tracker=tracker,
            timed_requests=stream,
        )
        for region, stream in _diurnal_streams(rate_scale, seed, hours).items()
    ]

    horizon = hours * 3600.0 + 600.0  # the traced window plus a drain tail
    steps = 0
    if traced:
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
    perf = time.perf_counter
    start = perf()
    try:
        while env.peek() <= horizon:
            env.step()
            steps += 1
    except EmptySchedule:
        pass
    wall_s = perf() - start
    result: Dict[str, float] = {
        "rate_scale": rate_scale,
        "requests_issued": float(sum(c.issued_requests for c in clients)),
        "requests_completed": float(tracker.num_completed),
        "events": float(steps),
        "wall_s": wall_s,
        "events_per_s": steps / wall_s if wall_s > 0 else float("inf"),
        "outstanding": float(tracker.outstanding),
    }
    if traced:
        _, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
        result["alloc_peak_bytes"] = float(peak)
    return result


def _bench_streamed_diurnal_cell(quick: bool) -> BenchResult:
    # Two traced runs over a short and a doubled window at the *same* rate
    # pin memory flatness: the long window processes ~2x the requests, but
    # peak memory tracks the in-flight population (bounded by the busiest
    # hour), not the total processed, so the peak must stay near-flat.
    # (Doubling the *rate* instead would legitimately double the in-flight
    # population -- that measures concurrency, not streaming-ness.)  One
    # untraced run reports honest events/sec.  Full mode's untraced run is
    # the million-request day (rate_scale 5.0 over 24 h => ~1.07M expected
    # requests); quick stays small enough for CI by shrinking the simulated
    # window, not just the rate, because availability probes make sim-hours
    # themselves cost events.
    flat_hours = 1 if quick else 2
    flat_scale = 1.0 if quick else 2.0
    flat_replicas = 2 if quick else 6
    # Shrunk cache capacities so the bounded caches saturate early in the
    # short window (see _run_streamed_cell): ~20k trie tokens and ~15% of
    # the replicas' KV budget are each a few hundred cached prompts,
    # reached within the first simulated minutes.
    flat_trie_tokens = 20_000
    flat_hbm_fraction = 0.15
    result: BenchResult = {}
    short = _run_streamed_cell(
        flat_scale,
        hours=flat_hours,
        replicas_per_region=flat_replicas,
        traced=True,
        trie_max_tokens=flat_trie_tokens,
        hbm_fraction=flat_hbm_fraction,
    )
    long = _run_streamed_cell(
        flat_scale,
        hours=flat_hours * 2,
        replicas_per_region=flat_replicas,
        traced=True,
        trie_max_tokens=flat_trie_tokens,
        hbm_fraction=flat_hbm_fraction,
    )
    result["alloc_peak_bytes_short"] = short["alloc_peak_bytes"]
    result["alloc_peak_bytes_long"] = long["alloc_peak_bytes"]
    result["alloc_flatness_ratio"] = (
        long["alloc_peak_bytes"] / short["alloc_peak_bytes"]
        if short["alloc_peak_bytes"] > 0
        else float("inf")
    )
    result["flat_requests_short"] = short["requests_issued"]
    result["flat_requests_long"] = long["requests_issued"]
    if quick:
        timed = _run_streamed_cell(2.0, hours=1, replicas_per_region=2)
    else:
        timed = _run_streamed_cell(5.0, hours=24, replicas_per_region=6)
    for key, value in timed.items():
        result[f"day_{key}"] = value
    return result


_BENCHMARKS = {
    "timeline_hold": _bench_timeline_hold,
    "engine_steps": _bench_engine_steps,
    "streamed_diurnal_cell": _bench_streamed_diurnal_cell,
}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_engine_bench(
    quick: bool = False,
    out_path: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the engine macrobenchmarks and return (and optionally emit) JSON."""
    names = list(only) if only else list(_BENCHMARKS)
    unknown = sorted(set(names) - set(_BENCHMARKS))
    if unknown:
        raise ValueError(f"unknown benchmark(s): {unknown}; known: {sorted(_BENCHMARKS)}")
    results: Dict[str, BenchResult] = {}
    for name in names:
        results[name] = _BENCHMARKS[name](quick)
    payload: Dict[str, object] = {
        "schema": ENGINE_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": results,
    }
    if out_path:
        Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def write_engine_report(
    full: Dict[str, object],
    quick: Dict[str, object],
    out_path: str = "BENCH_engine.json",
) -> Dict[str, object]:
    """Combine a full and a quick engine-bench run into the committed report.

    ``full`` is the headline run (millions pending / the million-request
    day); ``quick`` is the CI-sized run CI uses as its regression baseline.
    """
    payload = {
        "schema": ENGINE_REPORT_SCHEMA,
        "full": full,
        "quick": quick,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.engine_bench",
        description="Run the sim-engine macrobenchmarks.",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default="", help="output JSON path ('' = stdout only)")
    parser.add_argument("--only", nargs="*", default=None, help="subset of benchmark names")
    args = parser.parse_args(argv)
    payload = run_engine_bench(quick=args.quick, out_path=args.out or None, only=args.only)
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
