"""Route-event traces: run one experiment cell, return its route diffs.

:func:`run_route_trace` is a module-level (hence picklable) worker entry
point, exactly like :func:`repro.experiments.sweep.run_sweep_task` but
returning the network's ``route_changed`` sequence instead of metrics.  The
re-convergence determinism tests push the *same* task through a serial map,
a ``workers=2`` fork pool and a forced-spawn pool and assert the traces are
identical tuples.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["run_route_trace"]


def run_route_trace(task) -> Tuple[tuple, ...]:
    """Run one :class:`~repro.experiments.sweep.SweepTask` and return the
    routed network's :class:`~repro.net.routed.RouteChange` sequence as a
    tuple of :meth:`~repro.net.routed.RouteChange.as_tuple` values (empty
    for runs on the legacy pairwise network)."""
    # Imported lazily: the experiments package imports repro.net for the
    # runner's routed branch, so a module-level import here would cycle.
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import run_experiment

    config = ExperimentConfig(
        system=task.system,
        cluster=task.cluster,
        duration_s=task.duration_s,
        seed=task.seed,
        network_jitter=task.network_jitter,
        faults=task.faults,
    )
    result = run_experiment(config, task.workload.fresh_copy())
    events = getattr(result.frontend.network, "route_events", ())
    return tuple(event.as_tuple() for event in events)
