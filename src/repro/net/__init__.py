"""``repro.net``: the graph-routed WAN with shared-link bandwidth contention.

The legacy :mod:`repro.network` models the WAN as a pairwise latency matrix:
every region pair has a private wire, so messages never share a path and the
bandwidth-scarce regime the paper's BP vs SP-O/SP-P comparison diverges in
is unreachable.  This package replaces the wire with a routed graph:

* :mod:`~repro.net.graph` -- :class:`WanGraph` (regions + WAN routers,
  directed edges with latency and optional finite bandwidth) and the
  ``register_wan_topology`` builder registry (``"mesh"``, ``"backbone"``).
* :mod:`~repro.net.routing` -- the ``register_routing_policy`` registry
  (``"shortest-path"`` Dijkstra with the deterministic ``(cost, name)``
  tie-break, ``"static-route"``, ``"cost-weighted"``).
* :mod:`~repro.net.routed` -- :class:`RoutedNetwork`, a drop-in
  :class:`~repro.network.Network` doing multi-hop delivery, per-edge FIFO
  contention and deterministic route re-convergence under faults
  (observable as :class:`RouteChange` events).
* :mod:`~repro.net.config` -- the frozen :class:`NetConfig` that rides on
  :class:`~repro.experiments.config.ClusterConfig` into sweep workers.

With contention disabled (the default) the routed ``"mesh"`` network is
bit-identical to the legacy pairwise one -- see ``docs/NETWORK.md`` for the
full determinism contract.
"""

from .config import NetConfig
from .graph import (
    WanGraph,
    WanLink,
    make_wan_topology,
    register_wan_topology,
    registered_wan_topologies,
)
from .routed import RoutedNetwork, RouteChange, build_routed_network
from .routing import (
    CostWeightedRouting,
    RoutingPolicy,
    ShortestPathRouting,
    StaticRouting,
    make_routing_policy,
    register_routing_policy,
    registered_routing_policies,
)
from .trace import run_route_trace

__all__ = [
    "NetConfig",
    "WanGraph",
    "WanLink",
    "register_wan_topology",
    "make_wan_topology",
    "registered_wan_topologies",
    "RoutingPolicy",
    "ShortestPathRouting",
    "StaticRouting",
    "CostWeightedRouting",
    "register_routing_policy",
    "make_routing_policy",
    "registered_routing_policies",
    "RoutedNetwork",
    "RouteChange",
    "build_routed_network",
    "run_route_trace",
]
