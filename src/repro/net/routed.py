"""The routed network: multi-hop delivery with shared-link contention.

:class:`RoutedNetwork` is a drop-in :class:`~repro.network.Network` whose
latency comes from a routed path over a :class:`~repro.net.graph.WanGraph`
instead of a pairwise matrix lookup, and whose messages -- when any edge
carries finite bandwidth -- serialise through per-edge FIFO queues as real
simulation processes (store-and-forward per hop).

Determinism contract (the part the golden traces pin):

* **Contention off** (every edge bandwidth 0, the default): on the
  ``"mesh"`` topology the routed network is *bit-identical* to the legacy
  pairwise network.  Routes are the single direct hop, the per-edge latency
  is the matrix entry, fault surcharges key on the same ``(src, dst)``
  pairs, and both the jitter RNG and the fault RNG are consumed in exactly
  the historical order.
* **Contention on**: transit becomes event-driven (queue, transmit
  ``size/bandwidth``, propagate per hop), so latencies depend on concurrent
  traffic -- but the whole schedule is still a pure function of
  (spec, workload, seed): serial, ``workers=N`` and forced-spawn sweeps
  produce identical results.
* **Re-convergence**: route tables are recomputed whenever an edge goes
  down/up or a region pair is (un)blocked, by the registered routing policy
  with its deterministic tie-break; every table diff is appended to
  :attr:`RoutedNetwork.route_events` in sorted pair order, so two runs
  agree on the exact ``route_changed`` sequence.

A pair whose route is cut keeps its *last-known-good* path in the table
(latency sampling stays finite for code that asks) but is marked
unreachable: messages sent across it are dropped, exactly like the legacy
partition semantics, and :meth:`link_blocked` reports it down so
availability probes see the cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..network.link import Network
from ..sim import Environment, Resource, Store
from .config import NetConfig
from .graph import WanGraph, make_wan_topology
from .routing import RoutingPolicy, make_routing_policy

__all__ = ["RouteChange", "RoutedNetwork", "build_routed_network"]

Path = Tuple[str, ...]
Pair = Tuple[str, str]

#: Sentinel payload for phantom transfers (response streams) that occupy
#: link bandwidth but are never delivered into an inbox.
_PHANTOM = object()


@dataclass(frozen=True)
class RouteChange:
    """One observable ``route_changed`` event: a region pair's path diff."""

    time: float
    #: What triggered the re-convergence: ``"partition"``, ``"heal"``,
    #: ``"link-down"`` or ``"link-up"``.
    reason: str
    src: str
    dst: str
    #: Previous path (``None`` = the pair was unreachable).
    old_path: Optional[Path]
    #: New path (``None`` = the pair is now unreachable).
    new_path: Optional[Path]

    def as_tuple(self) -> tuple:
        """Hashable, comparison-friendly form (times rounded to ns so a
        serialisation round-trip cannot perturb equality checks)."""
        return (round(self.time, 9), self.reason, self.src, self.dst,
                self.old_path, self.new_path)


class RoutedNetwork(Network):
    """Multi-hop message transport over a WAN graph.

    Parameters beyond the legacy :class:`Network` ones:

    graph / policy:
        The :class:`WanGraph` to route over and the
        :class:`~repro.net.routing.RoutingPolicy` computing paths.  Edge
        bandwidths are fixed at build time (``contention_enabled`` is
        cached), so mutate the graph before constructing the network.
    request_bytes_per_token / response_bytes_per_token / kv_bytes_per_token:
        Wire-size coefficients for the contention model (all inert while
        contention is off).
    model_responses:
        When contended, finished responses become phantom reverse-path
        transfers (:meth:`stream_response`) so they share WAN edges with
        pushes -- registered as a replica completion listener by the
        experiment runner.
    """

    def __init__(
        self,
        env: Environment,
        graph: WanGraph,
        policy: RoutingPolicy,
        *,
        jitter_fraction: float = 0.05,
        seed: int = 0,
        request_bytes_per_token: float = 0.0,
        response_bytes_per_token: float = 0.0,
        kv_bytes_per_token: float = 0.0,
        model_responses: bool = True,
    ) -> None:
        super().__init__(
            env, graph.regions, jitter_fraction=jitter_fraction, seed=seed
        )
        self.graph = graph
        self.policy = policy
        self.request_bytes_per_token = request_bytes_per_token
        self.response_bytes_per_token = response_bytes_per_token
        self.kv_bytes_per_token = kv_bytes_per_token
        self.model_responses = model_responses
        self._contended = graph.has_finite_bandwidth
        # Route table over region pairs.  _route_base caches the summed
        # path latency for the (hot) no-active-fault sampling path.
        self._routes: Dict[Pair, Path] = {}
        self._route_base: Dict[Pair, float] = {}
        self._down_edges: Dict[Pair, int] = {}
        self._unreachable: Set[Pair] = set()
        #: Every route-table diff, in event order (sorted pair order within
        #: one re-convergence) -- the observable ``route_changed`` stream.
        self.route_events: List[RouteChange] = []
        # One FIFO queue per finite-bandwidth edge, created lazily.
        self._edge_queues: Dict[Pair, Resource] = {}
        # Contention accounting (separate from the legacy message counters,
        # which golden traces may observe indirectly).
        self.wire_bytes_sent = 0.0
        self.response_streams = 0
        self.response_bytes = 0.0
        self._reconverge(None)

    # ------------------------------------------------------------------
    # routes and re-convergence
    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> Optional[Path]:
        """The current path for a region pair (``None`` when unreachable;
        same-region pairs route trivially)."""
        if src == dst:
            return (src,)
        if (src, dst) in self._unreachable:
            return None
        return self._routes[(src, dst)]

    def reachable(self, src: str, dst: str) -> bool:
        return src == dst or (src, dst) not in self._unreachable

    def _reconverge(self, reason: Optional[str]) -> None:
        """Recompute every region pair's route and record the diffs.

        ``reason=None`` is the initial table build: no events, and a
        disconnected pair is a construction error rather than an outage.
        Pairs are visited in sorted order so the event sequence of one
        re-convergence is deterministic.
        """
        down = frozenset(self._down_edges)
        regions = sorted(self.graph.region_names())
        for src in regions:
            for dst in regions:
                if src == dst:
                    continue
                pair = (src, dst)
                old_path: Optional[Path] = (
                    self._routes[pair] if pair in self._routes and pair not in self._unreachable
                    else None
                )
                if pair in self._blocked_links:
                    # A blocked *pair* is a policy statement that these two
                    # regions must not communicate (the partition fault), so
                    # routing around it is not allowed.
                    new_path: Optional[Path] = None
                else:
                    new_path = self.policy.compute_path(self.graph, src, dst, down)
                if new_path is None:
                    if reason is None:
                        raise ValueError(
                            f"no route from {src!r} to {dst!r} in the WAN graph; "
                            "a topology must connect every region pair"
                        )
                    # Keep the last-known-good path for latency sampling;
                    # deliveries across the pair drop until it heals.
                    self._unreachable.add(pair)
                else:
                    self._unreachable.discard(pair)
                    self._routes[pair] = new_path
                    self._route_base[pair] = sum(
                        self.graph.latency(u, v)
                        for u, v in zip(new_path, new_path[1:])
                    )
                if reason is not None and old_path != new_path:
                    self.route_events.append(
                        RouteChange(self.env.now, reason, src, dst, old_path, new_path)
                    )

    # ------------------------------------------------------------------
    # fault surface: edges down, pairs blocked
    # ------------------------------------------------------------------
    def set_edge_down(
        self, u: str, v: str, down: bool = True, *, symmetric: bool = True
    ) -> None:
        """Take one graph edge down (or back up) and re-converge routes.

        Downs are reference-counted per direction, like pair blocks, so
        overlapping faults compose.  Unlike a blocked pair, traffic *routes
        around* a downed edge when the policy finds an alternative."""
        pairs = [(u, v)] + ([(v, u)] if symmetric else [])
        for a, b in pairs:
            if not self.graph.has_edge(a, b):
                raise KeyError(f"no edge {a!r} -> {b!r} in the graph")
        for pair in pairs:
            self._adjust_down_edge(pair, down)
        self._reconverge("link-down" if down else "link-up")

    def _adjust_down_edge(self, pair: Pair, down: bool) -> None:
        if down:
            self._down_edges[pair] = self._down_edges.get(pair, 0) + 1
        else:
            count = self._down_edges.get(pair, 0)
            if count <= 1:
                self._down_edges.pop(pair, None)
            else:
                self._down_edges[pair] = count - 1

    def set_link_blocked(
        self, src: str, dst: str, blocked: bool = True, *, symmetric: bool = True
    ) -> None:
        """A partition between two regions, as a graph cut.

        The pair block itself is inherited (messages across the pair drop,
        probes see it down); additionally any *direct* edge between the two
        nodes goes down so third-party routes avoid it, and the route table
        re-converges -- which is what makes the partition observable as
        ``route_changed`` events."""
        super().set_link_blocked(src, dst, blocked, symmetric=symmetric)
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            if self.graph.has_edge(*pair):
                self._adjust_down_edge(pair, blocked)
        self._reconverge("partition" if blocked else "heal")

    def link_blocked(self, src: str, dst: str) -> bool:
        """Down when the pair is blocked *or* the route to it is cut, so
        availability probes detect graph cuts the same way they detect
        pairwise partitions."""
        return super().link_blocked(src, dst) or (src, dst) in self._unreachable

    # ------------------------------------------------------------------
    # latency sampling (the uncontended path)
    # ------------------------------------------------------------------
    def _sample_base(self, src: str, dst: str) -> float:
        """Pre-jitter latency summed edge by edge along the routed path.

        Spike surcharges and degrade jitter key on graph *edges*; on the
        mesh topology the path is the single ``(src, dst)`` edge, so the
        arithmetic, the dict keys and the fault-RNG draws are exactly the
        legacy pairwise code's -- that is the bit-identity contract."""
        if src == dst:
            return super()._sample_base(src, dst)
        path = self._routes[(src, dst)]
        if not self._extra_latency and not self._link_extra_jitter:
            return self._route_base[(src, dst)]
        base = 0.0
        for u, v in zip(path, path[1:]):
            leg = self.graph.latency(u, v)
            if self._extra_latency:
                leg += self._extra_latency.get((u, v), 0.0)
            if self._link_extra_jitter:
                extra = self._link_extra_jitter.get((u, v), 0.0)
                if extra > 0:
                    leg += self._ensure_fault_rng().uniform(0.0, leg * extra)
            base += leg
        return base

    def _message_lost(self, src: str, dst: str) -> bool:
        """Per-edge loss checks, in path order (single-edge on the mesh,
        where this reduces byte-for-byte to the pairwise check)."""
        if not self._link_loss or src == dst:
            return super()._message_lost(src, dst)
        path = self._routes.get((src, dst))
        if path is None:
            return super()._message_lost(src, dst)
        for u, v in zip(path, path[1:]):
            loss = min(1.0, self._link_loss.get((u, v), 0.0))
            if loss > 0.0 and self._ensure_fault_rng().random() < loss:
                return True
        return False

    # ------------------------------------------------------------------
    # wire sizes (the contention model's inputs)
    # ------------------------------------------------------------------
    @property
    def contention_enabled(self) -> bool:
        return self._contended

    def request_wire_bytes(self, request: Any) -> float:
        return self.request_bytes_per_token * request.prompt_len

    def push_wire_bytes(self, tokens: int) -> float:
        return self.kv_bytes_per_token * max(0, tokens)

    def response_wire_bytes(self, request: Any) -> float:
        tokens = request.generated_tokens or request.output_len
        return self.response_bytes_per_token * tokens

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        item: Any,
        src: str,
        dst: str,
        inbox: Store,
        *,
        extra_delay: float = 0.0,
        size_bytes: float = 0.0,
    ) -> None:
        if src != dst and self._contended:
            self.messages_sent += 1
            self.cross_region_messages += 1
            if (src, dst) in self._blocked_links or (src, dst) in self._unreachable:
                self.dropped_messages += 1
                return
            if self._message_lost(src, dst):
                self.dropped_messages += 1
                return
            self.wire_bytes_sent += size_bytes
            self.env.process(
                self._transit(item, src, dst, inbox, extra_delay, size_bytes)
            )
            return
        if self._drop_unreachable(src, dst):
            return
        super().deliver(item, src, dst, inbox, extra_delay=extra_delay, size_bytes=size_bytes)

    def call_after_delay(self, src: str, dst: str, callback: Callable[[], None]) -> None:
        if self._drop_unreachable(src, dst):
            return
        super().call_after_delay(src, dst, callback)

    def _drop_unreachable(self, src: str, dst: str) -> bool:
        """Drop (with legacy counter order) across a cut that is not also a
        pair block -- the pair-block drop itself lives in the base class."""
        if (
            src != dst
            and (src, dst) in self._unreachable
            and (src, dst) not in self._blocked_links
        ):
            self.messages_sent += 1
            self.cross_region_messages += 1
            self.dropped_messages += 1
            return True
        return False

    # ------------------------------------------------------------------
    # contended transit
    # ------------------------------------------------------------------
    def _edge_queue(self, u: str, v: str) -> Resource:
        key = (u, v)
        queue = self._edge_queues.get(key)
        if queue is None:
            queue = self._edge_queues[key] = Resource(self.env, capacity=1)
        return queue

    def _transit(
        self,
        item: Any,
        src: str,
        dst: str,
        inbox: Optional[Store],
        extra_delay: float,
        size_bytes: float,
    ):
        """Store-and-forward transit: per edge, acquire the shared FIFO,
        transmit ``size/bandwidth``, release, then propagate the hop's
        latency.  Zero-size messages still pass through the queue (they
        wait behind in-flight transmissions -- shared-FIFO semantics), and
        a message already in flight completes over its captured path even
        if an edge on it goes down mid-transit."""
        if extra_delay > 0:
            yield self.env.timeout(extra_delay)
        path = self._routes[(src, dst)]
        for u, v in zip(path, path[1:]):
            link = self.graph.link(u, v)
            if link.bandwidth_bytes_per_s > 0:
                queue = self._edge_queue(u, v)
                grant = queue.request()
                yield grant
                try:
                    if size_bytes > 0:
                        yield self.env.timeout(size_bytes / link.bandwidth_bytes_per_s)
                finally:
                    queue.release(grant)
            yield self.env.timeout(self._hop_delay(u, v))
        if inbox is not None:
            yield inbox.put(item)

    def _hop_delay(self, u: str, v: str) -> float:
        """One hop's propagation delay: edge latency, fault surcharges and
        bounded jitter, drawn at forwarding time (hop by hop, rather than
        once end-to-end, because contended hops happen at different sim
        times)."""
        leg = self.graph.latency(u, v)
        if self._extra_latency:
            leg += self._extra_latency.get((u, v), 0.0)
        if self._link_extra_jitter:
            extra = self._link_extra_jitter.get((u, v), 0.0)
            if extra > 0:
                leg += self._ensure_fault_rng().uniform(0.0, leg * extra)
        if self.jitter_fraction > 0:
            jitter = leg * self.jitter_fraction
            leg = max(0.0, leg + self._rng.uniform(-jitter, jitter))
        return leg

    # ------------------------------------------------------------------
    # response streams (phantom reverse-path transfers)
    # ------------------------------------------------------------------
    def stream_response(self, request: Any) -> None:
        """Completion listener: occupy the reverse path with the finished
        response's bytes.

        The client-observed latency itself stays the analytic
        ``response_network_delay`` stamp (so the metric identity payload is
        untouched); what this models is the *load* responses place on
        shared WAN edges, which is the other half of the contention story
        -- pushes and response streams queue behind each other."""
        if not self._contended or not self.model_responses:
            return
        src = request.serving_region or request.region
        dst = request.region
        if src == dst:
            return
        size = self.response_wire_bytes(request)
        self.response_streams += 1
        self.response_bytes += size
        if (src, dst) in self._blocked_links or (src, dst) in self._unreachable:
            return
        self.env.process(self._transit(_PHANTOM, src, dst, None, 0.0, size))


def build_routed_network(
    env: Environment,
    config: NetConfig,
    regions,
    *,
    jitter_fraction: float = 0.05,
    seed: int = 0,
    default_kv_bytes_per_token: float = 0.0,
) -> RoutedNetwork:
    """Resolve a frozen :class:`NetConfig` into a live routed network.

    ``regions`` is the experiment's :class:`~repro.network.NetworkTopology`;
    ``default_kv_bytes_per_token`` is the model profile's KV footprint, used
    when the config leaves ``kv_bytes_per_token`` at 0 (the physically
    faithful default: pushed prefixes weigh what the profile says they do).
    """
    graph = make_wan_topology(
        config.topology,
        regions,
        wan_bandwidth_bytes_per_s=config.wan_bandwidth_bytes_per_s,
        **dict(config.topology_args),
    )
    policy = make_routing_policy(config.routing, **dict(config.routing_args))
    kv_bytes = config.kv_bytes_per_token or default_kv_bytes_per_token
    return RoutedNetwork(
        env,
        graph,
        policy,
        jitter_fraction=jitter_fraction,
        seed=seed,
        request_bytes_per_token=config.request_bytes_per_token,
        response_bytes_per_token=config.response_bytes_per_token,
        kv_bytes_per_token=kv_bytes,
        model_responses=config.model_responses,
    )
