"""Frozen configuration for the routed WAN (picklable into sweep workers).

``NetConfig`` follows the house config contract: a frozen dataclass carrying
only registry *names* plus scalars, resolved into live objects
(:func:`repro.net.routed.build_routed_network`) inside each worker process.
Attach one to :class:`~repro.experiments.config.ClusterConfig` via its
``network`` field; ``None`` (the default) keeps the legacy pairwise
:class:`~repro.network.Network` byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["NetConfig"]


@dataclass(frozen=True)
class NetConfig:
    """How to build the routed network for an experiment.

    ``wan_bandwidth_bytes_per_s=0`` (the default) leaves every edge
    uncontended: messages pay only routed latency, wire sizes stay zero and
    the run is bit-identical to the legacy pairwise network on the
    ``"mesh"`` topology.  A positive bandwidth turns the topology's WAN
    edges into shared FIFOs and switches dispatch into computing wire
    sizes from the per-token byte rates below.
    """

    #: Registered WAN topology builder (``repro.net.graph``).
    topology: str = "mesh"
    #: Extra scalar kwargs for the topology builder, as sorted
    #: ``(name, value)`` pairs so the config stays hashable/picklable.
    topology_args: Tuple[Tuple[str, float], ...] = ()
    #: Registered routing policy (``repro.net.routing``).
    routing: str = "shortest-path"
    #: Extra scalar kwargs for the routing policy, same encoding.
    routing_args: Tuple[Tuple[str, float], ...] = ()
    #: Bandwidth of WAN edges in bytes/s; 0 = uncontended (infinite).
    wan_bandwidth_bytes_per_s: float = 0.0
    #: Wire bytes per prompt token for request messages.
    request_bytes_per_token: float = 2.0
    #: Wire bytes per output token for response streams.
    response_bytes_per_token: float = 2.0
    #: Wire bytes per pushed KV-prefix token (0 = take the profile's
    #: ``kv_bytes_per_token``, the physically-faithful default).
    kv_bytes_per_token: float = 0.0
    #: Model finished responses as reverse-path transfers (they share WAN
    #: edges with pushes, which is half the contention story).
    model_responses: bool = True

    def __post_init__(self) -> None:
        if self.wan_bandwidth_bytes_per_s < 0:
            raise ValueError(
                f"wan_bandwidth_bytes_per_s must be non-negative, "
                f"got {self.wan_bandwidth_bytes_per_s!r}"
            )
        for label, value in (
            ("request_bytes_per_token", self.request_bytes_per_token),
            ("response_bytes_per_token", self.response_bytes_per_token),
            ("kv_bytes_per_token", self.kv_bytes_per_token),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value!r}")
        for label, pairs in (
            ("topology_args", self.topology_args),
            ("routing_args", self.routing_args),
        ):
            for entry in pairs:
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    raise ValueError(
                        f"{label} entries must be (name, value) pairs, got {entry!r}"
                    )
