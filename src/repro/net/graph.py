"""The routed WAN graph: regions and routers as nodes, links as edges.

The legacy :class:`~repro.network.topology.NetworkTopology` is a pairwise
one-way latency matrix -- every region pair has its own private wire, so
messages never share a path and never queue.  :class:`WanGraph` replaces
that wire with a real graph: *region* nodes (the deployment's regions) plus
optional *WAN router* nodes, connected by directed :class:`WanLink` edges
that carry a propagation latency and an optional finite bandwidth.  Routes
between regions are computed by a registered routing policy
(:mod:`repro.net.routing`); messages transit edge by edge, and on
finite-bandwidth edges they serialise through a shared FIFO
(:mod:`repro.net.routed`).

Graph *builders* are registered by name (``register_wan_topology``) so a
frozen :class:`~repro.net.config.NetConfig` can carry just the name plus
scalar arguments into sweep worker processes, exactly like the pushing /
selection / constraint registries:

* ``"mesh"`` -- one direct edge per legacy latency-matrix entry.  With the
  bandwidth knob at 0 this is the pairwise network re-expressed as a graph
  (single-hop routes, same latencies), which is what the bit-identity
  contract is checked against.
* ``"backbone"`` -- one WAN router per continent; regions attach to their
  continent's router and routers interconnect.  All cross-continent
  traffic between two continents shares one router-to-router edge pair,
  which is the shared-link regime the Fig. 14 contention benchmark sweeps.
  ``redundancy=2`` wires two parallel routers per continent (``.../a`` and
  ``.../b``): the deterministic ``(cost, name)`` tie-break routes via
  ``a`` until a ``link-down`` fault forces re-convergence onto ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .._registry import NameRegistry
from ..network.topology import NetworkTopology

__all__ = [
    "WanLink",
    "WanGraph",
    "register_wan_topology",
    "make_wan_topology",
    "registered_wan_topologies",
]


@dataclass(frozen=True)
class WanLink:
    """One directed edge: propagation latency plus optional bandwidth.

    ``bandwidth_bytes_per_s=0`` means *uncontended* (infinite capacity, the
    default): messages pay only the latency.  A positive bandwidth makes the
    edge a shared FIFO -- concurrent messages serialise at
    ``size_bytes / bandwidth`` each, in arrival order.
    """

    src: str
    dst: str
    latency_s: float
    bandwidth_bytes_per_s: float = 0.0


class WanGraph:
    """Directed graph of region and router nodes.

    Region nodes come from the :class:`NetworkTopology` (and carry its
    metadata -- continents, GDPR flags); router nodes are added explicitly
    via :meth:`add_router`.  Edge insertion validates eagerly -- unknown
    nodes, self-loops, negative latency/bandwidth and duplicate directed
    edges are all rejected with errors naming the offending edge -- so a
    mis-built topology fails at construction, not mid-simulation.
    """

    def __init__(self, regions: NetworkTopology) -> None:
        self.regions = regions
        self._routers: Dict[str, None] = {}
        self._links: Dict[Tuple[str, str], WanLink] = {}
        self._adjacency: Dict[str, List[str]] = {name: [] for name in regions.region_names()}

    # ------------------------------------------------------------------
    def add_router(self, name: str) -> None:
        """Add a WAN router node (a pure forwarding hop, not a region)."""
        if name in self._adjacency:
            raise ValueError(f"node {name!r} is already in the graph")
        self._routers[name] = None
        self._adjacency[name] = []

    def add_edge(
        self,
        src: str,
        dst: str,
        latency_s: float,
        *,
        bandwidth_bytes_per_s: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Add a directed edge (and its reverse when ``symmetric``)."""
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for u, v in pairs:
            if u == v:
                raise ValueError(f"self-loop edge {u!r} -> {v!r} is not allowed")
            if u not in self._adjacency:
                raise ValueError(f"unknown node {u!r} on edge {u!r} -> {v!r}")
            if v not in self._adjacency:
                raise ValueError(f"unknown node {v!r} on edge {u!r} -> {v!r}")
            if latency_s < 0:
                raise ValueError(
                    f"latency must be non-negative, got {latency_s!r} on {u!r} -> {v!r}"
                )
            if bandwidth_bytes_per_s < 0:
                raise ValueError(
                    f"bandwidth must be non-negative, got {bandwidth_bytes_per_s!r} "
                    f"on {u!r} -> {v!r}"
                )
            if (u, v) in self._links:
                raise ValueError(f"edge {u!r} -> {v!r} is already in the graph")
            self._links[(u, v)] = WanLink(u, v, latency_s, bandwidth_bytes_per_s)
            self._adjacency[u].append(v)
            self._adjacency[u].sort()

    # ------------------------------------------------------------------
    def nodes(self) -> List[str]:
        """Every node name, regions first, in insertion order."""
        return list(self._adjacency)

    def router_names(self) -> List[str]:
        return list(self._routers)

    def region_names(self) -> List[str]:
        return self.regions.region_names()

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> WanLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no edge {src!r} -> {dst!r} in the graph") from None

    def latency(self, src: str, dst: str) -> float:
        return self.link(src, dst).latency_s

    def neighbors(self, node: str) -> List[str]:
        """Successors of ``node``, sorted by name (deterministic iteration)."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def edges(self) -> Iterator[WanLink]:
        """Every directed edge, sorted by (src, dst)."""
        for key in sorted(self._links):
            yield self._links[key]

    @property
    def has_finite_bandwidth(self) -> bool:
        """True when any edge carries a finite (contended) bandwidth."""
        return any(link.bandwidth_bytes_per_s > 0 for link in self._links.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<WanGraph regions={len(self.region_names())} "
            f"routers={len(self._routers)} edges={len(self._links)}>"
        )


# ----------------------------------------------------------------------
# the WAN topology builder registry
# ----------------------------------------------------------------------
_WAN_TOPOLOGIES = NameRegistry("WAN topology", plural="WAN topologies")


def register_wan_topology(name: str, *, replace_existing: bool = False):
    """Register a graph builder under ``name``.

    A builder is a callable ``(regions: NetworkTopology, *,
    wan_bandwidth_bytes_per_s=0.0, **kwargs) -> WanGraph``; configs carry
    only the name plus scalar kwargs, so they pickle into sweep workers and
    resolve there -- the same contract as every other registry.
    """
    return _WAN_TOPOLOGIES.register(name, replace_existing=replace_existing)


def make_wan_topology(name: str, regions: NetworkTopology, **kwargs) -> WanGraph:
    """Build a registered WAN topology over ``regions``."""
    return _WAN_TOPOLOGIES.make(name, regions, **kwargs)


def registered_wan_topologies() -> Tuple[str, ...]:
    return _WAN_TOPOLOGIES.names()


@register_wan_topology("mesh")
def build_mesh(
    regions: NetworkTopology, *, wan_bandwidth_bytes_per_s: float = 0.0
) -> WanGraph:
    """Full mesh: one direct edge per legacy latency-matrix entry.

    Every route is the single hop the pairwise matrix already modelled, and
    each edge's latency is the matrix entry itself -- with the bandwidth
    knob at 0 the routed network built on this graph is bit-identical to
    the legacy :class:`~repro.network.Network`.
    """
    graph = WanGraph(regions)
    for (src, dst), latency_s in sorted(regions.links().items()):
        if not graph.has_edge(src, dst):
            graph.add_edge(
                src,
                dst,
                latency_s,
                bandwidth_bytes_per_s=wan_bandwidth_bytes_per_s,
                symmetric=False,
            )
    return graph


def _continent_representatives(regions: NetworkTopology) -> Dict[str, str]:
    """Lexicographically-first region per continent (deterministic)."""
    representatives: Dict[str, str] = {}
    for name in sorted(regions.region_names()):
        continent = regions.info(name).continent
        representatives.setdefault(continent, name)
    return representatives


@register_wan_topology("backbone")
def build_backbone(
    regions: NetworkTopology,
    *,
    wan_bandwidth_bytes_per_s: float = 0.0,
    access_latency_s: float = 0.002,
    access_bandwidth_bytes_per_s: float = 0.0,
    redundancy: int = 1,
    min_backbone_latency_s: float = 0.001,
) -> WanGraph:
    """One (or two, ``redundancy=2``) WAN router(s) per continent.

    Regions attach to their continent's router(s) over a short access link;
    routers interconnect with a latency derived from the legacy matrix
    between each continent's representative regions (minus the two access
    legs, clamped at ``min_backbone_latency_s``), so end-to-end routed
    latencies track the matrix.  The ``wan_bandwidth_bytes_per_s`` knob
    applies to the router-to-router edges only: *every* flow between two
    continents shares that one edge pair, which is what makes the
    bandwidth-scarce regime observable.
    """
    if redundancy not in (1, 2):
        raise ValueError(f"redundancy must be 1 or 2, got {redundancy!r}")
    graph = WanGraph(regions)
    representatives = _continent_representatives(regions)
    suffixes = ("a", "b")[:redundancy]
    routers: Dict[str, List[str]] = {}
    for continent in sorted(representatives):
        routers[continent] = []
        for suffix in suffixes:
            name = f"wan/{continent}/{suffix}" if redundancy > 1 else f"wan/{continent}"
            graph.add_router(name)
            routers[continent].append(name)
    for region in sorted(regions.region_names()):
        continent = regions.info(region).continent
        for router in routers[continent]:
            graph.add_edge(
                region,
                router,
                access_latency_s,
                bandwidth_bytes_per_s=access_bandwidth_bytes_per_s,
            )
    continents = sorted(representatives)
    for i, a in enumerate(continents):
        for b in continents[i + 1 :]:
            base = regions.one_way(representatives[a], representatives[b])
            backbone_latency = max(min_backbone_latency_s, base - 2 * access_latency_s)
            for router_a in routers[a]:
                for router_b in routers[b]:
                    graph.add_edge(
                        router_a,
                        router_b,
                        backbone_latency,
                        bandwidth_bytes_per_s=wan_bandwidth_bytes_per_s,
                    )
    if redundancy > 1:
        # The two parallel planes interconnect within a continent so a
        # single downed backbone edge re-routes without re-crossing an
        # access link.
        for continent in continents:
            plane_a, plane_b = routers[continent]
            graph.add_edge(plane_a, plane_b, min_backbone_latency_s)
    return graph
