"""Routing policies: deterministic path computation over the WAN graph.

A routing policy computes the path a message takes between two nodes given
the graph and the currently-down edges.  Policies are registered by name
(``register_routing_policy``) so configs carry only the (picklable) name
plus scalar kwargs -- the same plug-in contract as the pushing / selection
/ constraint registries -- and resolve inside sweep worker processes.

Built-ins:

``shortest-path`` (the default)
    Dijkstra over edge latencies with the house ``(cost, name)`` heap
    tie-break: equal-cost frontiers pop in lexicographic node order and
    neighbours relax in sorted order, so the chosen path is a *unique*
    deterministic function of the graph -- never of dict iteration order.
``static-route``
    Explicit per-pair paths (``routes={(src, dst): (src, hop, dst)}``),
    falling back to ``shortest-path`` for pairs without an entry or whose
    pinned path crosses a downed edge.  The operator's "traffic
    engineering" escape hatch.
``cost-weighted``
    Dijkstra over ``latency + hop_penalty_s`` per edge: a positive penalty
    discourages long detours (prefer direct links even when a multi-hop
    path has marginally lower latency); the paper-default penalty of 0
    makes it identical to ``shortest-path``.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from .._registry import NameRegistry
from .graph import WanGraph

__all__ = [
    "RoutingPolicy",
    "ShortestPathRouting",
    "StaticRouting",
    "CostWeightedRouting",
    "register_routing_policy",
    "make_routing_policy",
    "registered_routing_policies",
]

Path = Tuple[str, ...]
EdgeSet = FrozenSet[Tuple[str, str]]

_ROUTING_POLICIES = NameRegistry("routing policy", plural="routing policies")


def register_routing_policy(name: str, *, replace_existing: bool = False):
    """Register a routing-policy factory under ``name`` (the extension
    point; factories take scalar kwargs and return a policy object with a
    ``compute_path(graph, src, dst, down_edges)`` method)."""
    return _ROUTING_POLICIES.register(name, replace_existing=replace_existing)


def make_routing_policy(name: str, **kwargs) -> "RoutingPolicy":
    return _ROUTING_POLICIES.make(name, **kwargs)


def registered_routing_policies() -> Tuple[str, ...]:
    return _ROUTING_POLICIES.names()


class RoutingPolicy:
    """Base class: a deterministic path function over the graph."""

    def compute_path(
        self, graph: WanGraph, src: str, dst: str, down_edges: EdgeSet = frozenset()
    ) -> Optional[Path]:
        """The node path from ``src`` to ``dst`` (inclusive), or ``None``
        when no route survives the downed edges."""
        raise NotImplementedError


def _dijkstra(
    graph: WanGraph,
    src: str,
    dst: str,
    down_edges: EdgeSet,
    *,
    hop_penalty_s: float = 0.0,
) -> Optional[Path]:
    """Deterministic Dijkstra: heap entries are ``(cost, name)`` so
    equal-cost ties break lexicographically, and neighbours relax in
    sorted order -- the path is a pure function of the graph."""
    if src == dst:
        return (src,)
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, str] = {}
    heap: list = [(0.0, src)]
    done: Dict[str, None] = {}
    while heap:
        cost, node = heapq.heappop(heap)
        if node in done:
            continue
        done[node] = None
        if node == dst:
            break
        for neighbor in graph.neighbors(node):
            if (node, neighbor) in down_edges:
                continue
            next_cost = cost + graph.latency(node, neighbor) + hop_penalty_s
            if neighbor not in dist or next_cost < dist[neighbor]:
                dist[neighbor] = next_cost
                prev[neighbor] = node
                heapq.heappush(heap, (next_cost, neighbor))
    if dst not in done:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return tuple(path)


@register_routing_policy("shortest-path")
class ShortestPathRouting(RoutingPolicy):
    """Latency-shortest paths with the ``(cost, name)`` tie-break."""

    def compute_path(
        self, graph: WanGraph, src: str, dst: str, down_edges: EdgeSet = frozenset()
    ) -> Optional[Path]:
        return _dijkstra(graph, src, dst, down_edges)


@register_routing_policy("cost-weighted")
class CostWeightedRouting(RoutingPolicy):
    """Shortest paths over ``latency + hop_penalty_s`` per edge."""

    def __init__(self, hop_penalty_s: float = 0.0) -> None:
        if hop_penalty_s < 0:
            raise ValueError(f"hop_penalty_s must be non-negative, got {hop_penalty_s!r}")
        self.hop_penalty_s = hop_penalty_s

    def compute_path(
        self, graph: WanGraph, src: str, dst: str, down_edges: EdgeSet = frozenset()
    ) -> Optional[Path]:
        return _dijkstra(graph, src, dst, down_edges, hop_penalty_s=self.hop_penalty_s)


@register_routing_policy("static-route")
class StaticRouting(RoutingPolicy):
    """Pinned per-pair paths with a shortest-path fallback.

    ``routes`` maps ``(src, dst)`` to an explicit node path.  A pinned path
    is used verbatim while every edge on it is up and present in the graph;
    otherwise -- and for pairs without an entry -- the policy falls back to
    ``shortest-path``, so traffic engineering never strands a reachable
    pair.  Accepts any mapping-like of pairs (including a tuple of
    ``((src, dst), path)`` items, the shape a frozen config carries).
    """

    def __init__(
        self,
        routes: Optional[
            "Mapping[Tuple[str, str], Sequence[str]]"
        ] = None,
    ) -> None:
        entries = dict(routes or {})
        self.routes: Dict[Tuple[str, str], Path] = {}
        for (src, dst), path in sorted(entries.items()):
            path = tuple(path)
            if len(path) < 2 or path[0] != src or path[-1] != dst:
                raise ValueError(
                    f"static route for {(src, dst)!r} must start at {src!r} and "
                    f"end at {dst!r}, got {path!r}"
                )
            self.routes[(src, dst)] = path
        self._fallback = ShortestPathRouting()

    def _pinned_path_usable(
        self, graph: WanGraph, path: Path, down_edges: EdgeSet
    ) -> bool:
        return all(
            graph.has_edge(u, v) and (u, v) not in down_edges
            for u, v in zip(path, path[1:])
        )

    def compute_path(
        self, graph: WanGraph, src: str, dst: str, down_edges: EdgeSet = frozenset()
    ) -> Optional[Path]:
        pinned = self.routes.get((src, dst))
        if pinned is not None and self._pinned_path_usable(graph, pinned, down_edges):
            return pinned
        return self._fallback.compute_path(graph, src, dst, down_edges)
