"""SkyWalker reproduction: a locality-aware cross-region load balancer for
LLM inference, together with the full simulated serving stack it runs on.

Quick start::

    from repro.experiments import (
        ClusterConfig, ExperimentConfig, SystemConfig, run_experiment,
        build_arena_workload,
    )

    workload = build_arena_workload(scale=0.1)
    config = ExperimentConfig(
        system=SystemConfig(kind="skywalker"),
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=60.0,
    )
    result = run_experiment(config, workload)
    print(result.metrics.format_row())

Sub-packages
------------
``repro.sim``          discrete-event simulation kernel
``repro.replica``      simulated SGLang/vLLM-style inference replica
``repro.network``      cross-region latency matrix, transport and DNS
``repro.cluster``      deployments, pricing, clients
``repro.workloads``    synthetic conversation / Tree-of-Thoughts / diurnal traces
``repro.core``         SkyWalker itself (two-layer router, prefix trie, CH,
                       selective pushing, controller)
``repro.balancers``    the baseline load balancers of §5.1
``repro.metrics``      latency summaries and run aggregation
``repro.analysis``     cost model, traffic aggregation, prefix similarity
``repro.experiments``  scenario builders and runners for every figure
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "replica",
    "network",
    "cluster",
    "workloads",
    "core",
    "balancers",
    "metrics",
    "analysis",
    "experiments",
]
