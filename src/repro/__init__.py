"""SkyWalker reproduction: a locality-aware cross-region load balancer for
LLM inference, together with the full simulated serving stack it runs on.

Quick start -- one run with a registry-typed system config::

    from repro.experiments import (
        ClusterConfig, ExperimentConfig, SkyWalkerConfig, run_experiment,
        build_arena_workload,
    )

    workload = build_arena_workload(scale=0.1)
    config = ExperimentConfig(
        system=SkyWalkerConfig(kind="skywalker", pushing="SP-P"),
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=60.0,
    )
    result = run_experiment(config, workload)
    print(result.metrics.format_row())

Sweep several systems over one generated workload (the workload is built
once and replayed with fresh request state per variant).  ``workers`` runs
each (workload, system, seed) cell in its own worker process -- results are
bit-identical to the serial loop for the same seeds, so parallelism only
buys wall-clock.  ``seeds=[...]`` repeats every cell across seeds and adds
a statistical layer on top: per-seed runs in ``SweepResult.seed_runs`` and
mean / stdev / 95% CI (Student-t, stdlib-only) via
``SweepResult.aggregate`` / ``SweepResult.report``::

    from repro.experiments import REGISTRY, run_sweep

    sweep = run_sweep(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("skywalker-hybrid"),
         REGISTRY.spec("least-load")],
        [workload],
        seeds=[0, 1, 2],
        workers=4,
    )
    print(sweep.format_report())          # per-seed rows + aggregate table
    print(sweep.aggregate(workload.name, "skywalker").stat("ttft_p50"))

``seeds=[s]`` is bit-identical to the legacy single-seed ``seed=s`` path,
and ``run_macro_benchmark`` / ``run_pushing_benchmark`` /
``run_diurnal_sweep`` accept the same ``seeds=[...]`` (rebuilding their
workloads per seed so each trial sees fresh traffic).  Per-cell host
wall-clock is recorded in ``SweepResult.cell_seconds`` (and per seed in
``seed_cell_seconds``); it is telemetry only and deliberately **excluded
from ``RunMetrics.to_dict()``**, which is the payload every bit-identity
check (serial vs parallel, golden traces) compares.

Lower-level control (arbitrary per-cell functions, e.g. the Fig. 10 sweep's
per-region percentiles) is available through
``repro.experiments.SweepExecutor``.  ``README.md`` and ``docs/`` (module
map in ``docs/ARCHITECTURE.md``, plugin walkthrough in
``docs/EXTENDING.md``) cover the whole surface in prose.

Add a whole new system without touching the runner -- register a typed
config and a builder with the public registry::

    from dataclasses import dataclass
    from repro.experiments import SystemSpec, register_system

    @dataclass(frozen=True)
    class MySystemConfig(SystemSpec):
        kind: str = "my-system"
        fanout: int = 2

    @register_system("my-system", config=MySystemConfig)
    def build_my_system(spec, ctx):
        balancer = ...        # build from spec + ctx (env, network, regions)
        ctx.attach(balancer)  # wire replicas, start, register with DNS
        return [balancer]

After registration ``"my-system"`` works everywhere a built-in kind does:
``run_experiment``, ``run_sweep`` and the legacy shim.  The
``skywalker-hybrid`` system (``repro.experiments.hybrid``) is exactly such
a plugin.

The same ``@register_*`` pattern extends SkyWalker's policy knobs, which
configs therefore carry as plain *names* (keeping every experiment
description picklable for the process-parallel sweeps):

* **pushing policies** (``"BP"``/``"SP-O"``/``"SP-P"``) --
  ``repro.core.register_pushing_policy`` / ``make_pushing_policy``::

      from repro.core import PushingPolicy, register_pushing_policy

      @register_pushing_policy("SP-MEM")
      class MemoryPushing(PushingPolicy):
          def replica_available(self, probe, dispatched_since_probe):
              return probe.healthy and probe.memory_utilization < 0.8

      SkyWalkerConfig(kind="skywalker", pushing="SP-MEM")  # just works

* **routing constraints** (``"gdpr"``/``"continent"``/``"allow-all"``) --
  ``repro.core.register_constraint`` / ``make_constraint``; factories
  receive the run's topology::

      from repro.core import DenyRegions, register_constraint

      @register_constraint("no-asia")
      def _no_asia(topology):
          return DenyRegions({"asia"})

      SkyWalkerConfig(kind="skywalker", constraint="no-asia")

* **selection policies** (``"prefix_tree"``/``"consistent_hash"``) --
  ``repro.core.register_selection_policy`` / ``make_selection_policy``,
  making custom names valid as ``SkyWalkerBalancer(routing=...)``.

Systems are always described by these typed configs (``SkyWalkerConfig``,
``GatewayConfig``, ``CentralizedConfig``, ...) or by
``REGISTRY.spec(kind, **overrides)`` -- the latter is also the only
spelling that supports plugin-registered kinds with their own extra knobs
(e.g. ``REGISTRY.spec("skywalker-hybrid", hybrid_load_weight=0.2)``).

Sub-packages
------------
``repro.sim``          discrete-event simulation kernel
``repro.replica``      simulated SGLang/vLLM-style inference replica
``repro.network``      cross-region latency matrix, transport and DNS
``repro.cluster``      deployments, pricing, clients
``repro.workloads``    synthetic conversation / Tree-of-Thoughts / diurnal traces
``repro.core``         SkyWalker itself (two-layer router, prefix trie, CH,
                       selective pushing, controller)
``repro.balancers``    the baseline load balancers of §5.1
``repro.metrics``      latency summaries, run aggregation, multi-seed
                       statistics (mean / stdev / 95% CI, paired per-seed
                       diffs) and fault-run resilience metrics
``repro.analysis``     cost model, traffic aggregation, prefix similarity
``repro.faults``       deterministic fault injection: picklable fault
                       specs/schedules, name-resolved registries, and the
                       injector driving §4.2 controller failover
``repro.experiments``  scenario builders and runners for every figure
``repro.perf``         hot-path microbenchmark suite (``python -m repro.perf``)
``repro.mem``          page-aligned KV allocator and tiered offload store
``repro.lint``         determinism & registry static analysis
                       (``python -m repro.lint``; ``docs/DETERMINISM.md``)

Resilience scenarios are declarative: every ``run_*`` entry point takes
``faults=`` (a ``repro.faults.FaultSchedule`` or a registered schedule
name).  ``faults=None``/empty is bit-identical to the fault-free path;
the same schedule + seed is bit-identical serially and under
``workers=N``; faulted runs report ``RunMetrics.resilience`` (outage
goodput, time to recovery, per-phase p90 TTFT, stranded/parked/failed
counts).  See ``docs/RESILIENCE.md``.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "replica",
    "network",
    "cluster",
    "workloads",
    "core",
    "balancers",
    "metrics",
    "analysis",
    "faults",
    "experiments",
    "perf",
]
