"""SkyWalker reproduction: a locality-aware cross-region load balancer for
LLM inference, together with the full simulated serving stack it runs on.

Quick start -- one run with a registry-typed system config::

    from repro.experiments import (
        ClusterConfig, ExperimentConfig, SkyWalkerConfig, run_experiment,
        build_arena_workload,
    )

    workload = build_arena_workload(scale=0.1)
    config = ExperimentConfig(
        system=SkyWalkerConfig(kind="skywalker", pushing="SP-P"),
        cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
        duration_s=60.0,
    )
    result = run_experiment(config, workload)
    print(result.metrics.format_row())

Sweep several systems over one generated workload (the workload is built
once and replayed with fresh request state per variant)::

    from repro.experiments import REGISTRY, run_sweep

    sweep = run_sweep(
        [REGISTRY.spec("skywalker"), REGISTRY.spec("skywalker-hybrid"),
         REGISTRY.spec("least-load")],
        [workload],
    )
    print(sweep.format_report())

Add a whole new system without touching the runner -- register a typed
config and a builder with the public registry::

    from dataclasses import dataclass
    from repro.experiments import SystemSpec, register_system

    @dataclass(frozen=True)
    class MySystemConfig(SystemSpec):
        kind: str = "my-system"
        fanout: int = 2

    @register_system("my-system", config=MySystemConfig)
    def build_my_system(spec, ctx):
        balancer = ...        # build from spec + ctx (env, network, regions)
        ctx.attach(balancer)  # wire replicas, start, register with DNS
        return [balancer]

After registration ``"my-system"`` works everywhere a built-in kind does:
``run_experiment``, ``run_sweep`` and the legacy shim.  The
``skywalker-hybrid`` system (``repro.experiments.hybrid``) is exactly such
a plugin.

Deprecation note: the grab-bag ``SystemConfig(kind=...)`` dataclass remains
fully supported as a thin shim -- it resolves to the registered typed config
via ``SystemConfig.resolve()`` -- but new code should prefer the typed
configs (``SkyWalkerConfig``, ``GatewayConfig``, ``CentralizedConfig``, ...)
or ``REGISTRY.spec(kind, **overrides)``.

Sub-packages
------------
``repro.sim``          discrete-event simulation kernel
``repro.replica``      simulated SGLang/vLLM-style inference replica
``repro.network``      cross-region latency matrix, transport and DNS
``repro.cluster``      deployments, pricing, clients
``repro.workloads``    synthetic conversation / Tree-of-Thoughts / diurnal traces
``repro.core``         SkyWalker itself (two-layer router, prefix trie, CH,
                       selective pushing, controller)
``repro.balancers``    the baseline load balancers of §5.1
``repro.metrics``      latency summaries and run aggregation
``repro.analysis``     cost model, traffic aggregation, prefix similarity
``repro.experiments``  scenario builders and runners for every figure
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "replica",
    "network",
    "cluster",
    "workloads",
    "core",
    "balancers",
    "metrics",
    "analysis",
    "experiments",
]
