"""Back-compat alias: the shared registry helper moved to
:mod:`repro._registry` so packages below :mod:`repro.core` in the import
hierarchy (e.g. :mod:`repro.mem`, imported by the replica layer) can use it
without importing the core package and its balancer machinery."""

from .._registry import NameRegistry

__all__ = ["NameRegistry"]
