"""SkyWalker's core: the locality-aware cross-region load balancer.

This package contains the paper's contribution:

* :class:`SkyWalkerBalancer` -- the regional load balancer with two-layer
  cross-region routing (§3.1),
* :class:`PrefixTree` and :class:`ConsistentHashRing` -- the two
  prefix-aware candidate-selection mechanisms (§3.2),
* the selective-pushing policies (§3.3),
* :class:`AvailabilityMonitor` -- the heartbeat/probing loop of Algorithm 1,
* :class:`ServiceController` -- the management plane with load-balancer
  failure recovery (§4.2),
* routing constraints such as GDPR data-residency (§4.1, §7).
"""

from .availability import AvailabilityMonitor, LoadBalancerProbe
from .balancer import ROUTING_CONSISTENT_HASH, ROUTING_PREFIX_TREE, SkyWalkerBalancer
from .controller import FailoverRecord, ServiceController
from .hash_ring import ConsistentHashRing
from .interface import Balancer, BalancerBase
from .selection import (
    ConsistentHashSelection,
    PrefixTreeSelection,
    SelectionPolicy,
    make_selection_policy,
    register_selection_policy,
    registered_selection_policies,
    unregister_selection_policy,
)
from .policies import (
    AllowAll,
    CompositeConstraint,
    DenyRegions,
    GDPRConstraint,
    RoutingConstraint,
    SameContinentConstraint,
    make_constraint,
    register_constraint,
    registered_constraints,
    unregister_constraint,
)
from .prefix_tree import PrefixMatch, PrefixTree
from .pushing import (
    BlindPushing,
    PushingPolicy,
    ReplicaProbe,
    SelectivePushingOutstanding,
    SelectivePushingPending,
    make_pushing_policy,
    register_pushing_policy,
    registered_pushing_policies,
    unregister_pushing_policy,
)

__all__ = [
    "Balancer",
    "BalancerBase",
    "SkyWalkerBalancer",
    "ROUTING_PREFIX_TREE",
    "ROUTING_CONSISTENT_HASH",
    "SelectionPolicy",
    "PrefixTreeSelection",
    "ConsistentHashSelection",
    "make_selection_policy",
    "register_selection_policy",
    "registered_selection_policies",
    "unregister_selection_policy",
    "AvailabilityMonitor",
    "LoadBalancerProbe",
    "ServiceController",
    "FailoverRecord",
    "ConsistentHashRing",
    "PrefixTree",
    "PrefixMatch",
    "PushingPolicy",
    "ReplicaProbe",
    "BlindPushing",
    "SelectivePushingOutstanding",
    "SelectivePushingPending",
    "make_pushing_policy",
    "register_pushing_policy",
    "registered_pushing_policies",
    "unregister_pushing_policy",
    "RoutingConstraint",
    "AllowAll",
    "GDPRConstraint",
    "SameContinentConstraint",
    "DenyRegions",
    "CompositeConstraint",
    "make_constraint",
    "register_constraint",
    "registered_constraints",
    "unregister_constraint",
]
