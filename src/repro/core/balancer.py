"""The SkyWalker regional load balancer (§3, Algorithm 1).

One :class:`SkyWalkerBalancer` runs in every region.  It is the first point
of contact for clients in that region, keeps a FCFS request queue, and for
each request either

* pushes it to an *available* local replica (selective pushing, §3.3), or
* forwards it to an *available* remote load balancer (cross-region traffic
  handling, §3.1), which then places it on one of its local replicas.

Candidate selection is a plug-in (:mod:`repro.core.selection`): the
prefix-tree policy (``routing="prefix_tree"``, the full SkyWalker design),
two-layer consistent hashing (``routing="consistent_hash"``, SkyWalker-CH),
or any custom :class:`~repro.core.selection.SelectionPolicy` passed via
``selection_policy``.  Pushing policies and routing constraints are equally
orthogonal plug-ins.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment, Interrupt
from ..workloads.request import Request, RequestStatus
from .availability import AvailabilityMonitor
from .hash_ring import ConsistentHashRing
from .interface import BalancerBase
from .policies import AllowAll, RoutingConstraint
from .prefix_tree import PrefixTree
from .pushing import PushingPolicy, SelectivePushingPending
from .selection import SelectionPolicy, make_selection_policy

__all__ = ["SkyWalkerBalancer", "ROUTING_PREFIX_TREE", "ROUTING_CONSISTENT_HASH"]

ROUTING_PREFIX_TREE = "prefix_tree"
ROUTING_CONSISTENT_HASH = "consistent_hash"


def _default_hash_key(request: Request) -> str:
    """Listing 1 uses the session id as the consistent-hashing key."""
    return request.session_id


class SkyWalkerBalancer(BalancerBase):
    """A regional load balancer participating in SkyWalker's two-layer design.

    Parameters
    ----------
    routing:
        ``"prefix_tree"`` (SkyWalker) or ``"consistent_hash"`` (SkyWalker-CH).
        Shorthand for the corresponding built-in selection policy.
    selection_policy:
        Explicit :class:`~repro.core.selection.SelectionPolicy` instance;
        overrides ``routing``.  This is how third-party systems plug in
        custom candidate selection without subclassing.
    pushing_policy:
        Selective-pushing policy; defaults to pending-request based SP-P.
    prefix_match_threshold:
        When the best prefix hit ratio falls below this value the balancer
        prefers the least-loaded available target instead (the adaptive
        behaviour discussed in §5.1).
    allow_remote:
        Disable to obtain the Region-Local baseline used in Fig. 10.
    constraint:
        Optional :class:`RoutingConstraint` (GDPR, same-continent, ...).
    hash_key_fn:
        Extracts the consistent-hashing key from a request (user id, session
        id, question id, ... depending on the workload).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        network: Network,
        *,
        routing: str = ROUTING_PREFIX_TREE,
        selection_policy: Optional[SelectionPolicy] = None,
        pushing_policy: Optional[PushingPolicy] = None,
        probe_interval_s: float = 0.1,
        prefix_match_threshold: float = 0.5,
        trie_max_tokens: int = 2_000_000,
        remote_queue_buffer: int = 4,
        allow_remote: bool = True,
        constraint: Optional[RoutingConstraint] = None,
        hash_key_fn: Callable[[Request], str] = _default_hash_key,
        balance_abs_threshold: int = 8,
        balance_rel_threshold: float = 1.5,
    ) -> None:
        super().__init__(env, name, region, network)
        self.selection = selection_policy or make_selection_policy(routing)
        self.routing = self.selection.routing
        self.pushing_policy = pushing_policy or SelectivePushingPending()
        self.prefix_match_threshold = prefix_match_threshold
        self.allow_remote = allow_remote
        self.constraint = constraint or AllowAll()
        self.hash_key_fn = hash_key_fn
        #: Prefix affinity yields to load balancing when the preferred
        #: replica is this much busier than the least-loaded candidate
        #: (§3.3: "prefix-aware routing must be combined with effective load
        #: balancing strategies").
        self.balance_abs_threshold = balance_abs_threshold
        self.balance_rel_threshold = balance_rel_threshold

        #: Requests accepted from the inbox but not yet placed (FCFS).
        self.queue: Deque[Request] = deque()
        self.monitor = AvailabilityMonitor(
            env,
            network,
            region,
            pushing_policy=self.pushing_policy,
            probe_interval_s=probe_interval_s,
            remote_queue_buffer=remote_queue_buffer,
        )
        # Prefix-aware state (§3.2): one tree/ring per routing layer.
        self.replica_trie: PrefixTree[str] = PrefixTree(max_tokens=trie_max_tokens)
        self.snapshot_trie: PrefixTree[str] = PrefixTree(max_tokens=trie_max_tokens)
        self.replica_ring: ConsistentHashRing[str] = ConsistentHashRing()
        self.balancer_ring: ConsistentHashRing[str] = ConsistentHashRing()

        self._peers: Dict[str, "SkyWalkerBalancer"] = {}

        # Per-probe-epoch memo for estimated_load: selection policies rank
        # every candidate against every other (imbalance + least-load), so
        # without the memo each load is recomputed per comparison per
        # request.  The monitor bumps load_version whenever an input moves.
        self._load_cache: Dict[str, int] = {}
        self._load_cache_version = -1

        # Statistics.
        self.received_forwards = 0
        self.local_dispatches = 0
        self.remote_forwards = 0
        self.queue_wait_events = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _register_replica(self, replica: ReplicaServer) -> None:
        """Attach a replica this balancer manages as local."""
        self.monitor.add_local_replica(replica)
        self.replica_ring.add_target(replica.name)

    def remove_replica(self, replica_name: str) -> Optional[ReplicaServer]:
        replica = self._replicas.pop(replica_name, None)
        if replica is not None:
            # Detach our listeners so fail/recover cycles (controller
            # takeovers) don't stack duplicates on the replica.
            replica.remove_completion_listener(self._on_replica_complete)
            replica.remove_health_listener(self._on_replica_health)
        self.outstanding.pop(replica_name, None)
        self.monitor.remove_local_replica(replica_name)
        self.replica_ring.remove_target(replica_name)
        self.replica_trie.remove_target(replica_name)
        return replica

    def add_peer(self, balancer: "SkyWalkerBalancer") -> None:
        """Register a remote load balancer as an offload target."""
        if balancer.name == self.name:
            return
        self._peers[balancer.name] = balancer
        self.monitor.add_remote_balancer(balancer)
        self.balancer_ring.add_target(balancer.name)

    def remove_peer(self, balancer_name: str) -> None:
        self._peers.pop(balancer_name, None)
        self.monitor.remove_remote_balancer(balancer_name)
        self.balancer_ring.remove_target(balancer_name)
        self.snapshot_trie.remove_target(balancer_name)

    def local_replicas(self) -> List[ReplicaServer]:
        return list(self._replicas.values())

    def peers(self) -> List["SkyWalkerBalancer"]:
        return list(self._peers.values())

    def start(self) -> None:
        """Start the availability monitor and the serving loop."""
        self.monitor.start()
        super().start()

    # ------------------------------------------------------------------
    # state advertised to peers (read by their probes)
    # ------------------------------------------------------------------
    @property
    def num_available_replicas(self) -> int:
        return len(self.monitor.available_local_replicas())

    @property
    def queue_size(self) -> int:
        return len(self.queue) + len(self.inbox.items)

    # ------------------------------------------------------------------
    # failure handling (used by the controller and the fault injector)
    # ------------------------------------------------------------------
    def _collect_stranded(self) -> List[Request]:
        """The FCFS queue strands ahead of the base class's buffers."""
        stranded = list(self.queue)
        self.queue.clear()
        stranded.extend(super()._collect_stranded())
        return stranded

    def _restore_stranded(self, stranded: List[Request]) -> None:
        self.queue.extendleft(reversed(stranded))

    def recover(self) -> None:
        """Restart a failed balancer with empty routing state.

        A real restart loses the in-memory prefix trees, so routing on
        pre-failure affinity data would be wrong: the replicas' caches were
        churned by the takeover balancer while this one was down.  The hash
        rings are pure functions of the membership (which the controller
        re-drives via add_replica/add_peer), so they stay.
        """
        if self.healthy:
            return
        self.replica_trie.clear()
        self.snapshot_trie.clear()
        super().recover()

    # ------------------------------------------------------------------
    # serving loop (HANDLEREQUEST in Algorithm 1)
    # ------------------------------------------------------------------
    def _serve(self):
        try:
            while True:
                if not self.queue:
                    request = yield self.inbox.get()
                    self._accept(request)
                # Drain whatever else already arrived so queue_size is honest.
                while self.inbox.items:
                    self._accept(self.inbox.items.popleft())
                request = self.queue[0]
                placed = yield from self._place(request)
                if placed:
                    self.queue.popleft()
        except Interrupt:
            return

    def _accept(self, request: Request) -> None:
        super()._accept(request)
        if request.forward_hops > 0:
            self.received_forwards += 1
        self.queue.append(request)

    def _place(self, request: Request):
        """Try to place the head-of-queue request; wait for availability if
        nothing can take it (selective pushing queues at the LB)."""
        while True:
            local = self.monitor.available_local_replicas()
            if local:
                replica = self._select_replica(request, local)
                self._dispatch_local(request, replica)
                return True
            if self.allow_remote and request.forward_hops == 0:
                remotes = self._eligible_remote_balancers(request)
                if remotes:
                    peer = self._select_balancer(request, remotes)
                    self._forward_remote(request, peer)
                    return True
            if self.pushing_policy.blind and self._replicas:
                # Blind pushing never queues: fall back to any healthy local
                # replica even if it looks full.
                healthy = [r for r in self._replicas.values() if r.healthy]
                if healthy:
                    replica = self._select_replica(request, healthy)
                    self._dispatch_local(request, replica)
                    return True
            # Nothing can accept the request right now: wait for the next
            # probe update and retry (the request stays at the queue head).
            self.queue_wait_events += 1
            yield self.monitor.wait_for_change()

    def _eligible_remote_balancers(self, request: Request) -> List["SkyWalkerBalancer"]:
        candidates = self.monitor.available_remote_balancers()
        return [
            peer
            for peer in candidates
            if self.constraint.allows(request, self.region, peer.region)
        ]

    # ------------------------------------------------------------------
    # candidate selection (SELECTCANDIDATE in Algorithm 1)
    # ------------------------------------------------------------------
    def _select_replica(self, request: Request, candidates: List[ReplicaServer]) -> ReplicaServer:
        return self.selection.select_replica(self, request, candidates)

    def _select_balancer(
        self, request: Request, candidates: List["SkyWalkerBalancer"]
    ) -> "SkyWalkerBalancer":
        return self.selection.select_balancer(self, request, candidates)

    # ------------------------------------------------------------------
    # load estimates shared with the selection policies
    # ------------------------------------------------------------------
    def estimated_load(self, replica: ReplicaServer) -> int:
        monitor = self.monitor
        if monitor.load_version != self._load_cache_version:
            self._load_cache_version = monitor.load_version
            self._load_cache.clear()
        name = replica.name
        load = self._load_cache.get(name)
        if load is None:
            probe = monitor.replica_probes.get(name)
            outstanding = probe.num_outstanding if probe else 0
            load = outstanding + monitor.dispatched_since_probe(name)
            self._load_cache[name] = load
        return load

    def severely_imbalanced(
        self, preferred: ReplicaServer, candidates: List[ReplicaServer]
    ) -> bool:
        """Is the prefix-preferred replica much busier than the lightest one?"""
        preferred_load = self.estimated_load(preferred)
        lightest = min(self.estimated_load(replica) for replica in candidates)
        return (
            preferred_load > self.balance_abs_threshold
            and preferred_load > self.balance_rel_threshold * max(lightest, 1)
        )

    def least_loaded(self, candidates: List[ReplicaServer]) -> ReplicaServer:
        return min(
            candidates,
            key=lambda replica: (self.estimated_load(replica), replica.name),
        )

    # Backwards-compatible private aliases (pre-registry API).
    _estimated_load = estimated_load
    _severely_imbalanced = severely_imbalanced
    _least_loaded = least_loaded

    # ------------------------------------------------------------------
    # routing actions
    # ------------------------------------------------------------------
    def _dispatch_local(self, request: Request, replica: ReplicaServer) -> None:
        self._dispatch(request, replica)
        self.local_dispatches += 1

    def _known_prefix_tokens(self, request: Request, replica: ReplicaServer) -> int:
        """What the affinity trie says ``replica`` already holds of this
        prompt -- the part a selective push does not need to ship."""
        if self.selection.maintains_prefix_trees:
            return self.replica_trie.match_length(request.prompt_tokens, replica.name)
        return 0

    def _note_dispatch(self, request: Request, replica: ReplicaServer) -> None:
        if self.selection.maintains_prefix_trees:
            self.replica_trie.insert(request.prompt_tokens, replica.name)
        self.monitor.note_dispatch(replica.name)

    def _forward_remote(self, request: Request, peer: "SkyWalkerBalancer") -> None:
        request.forward_hops += 1
        request.status = RequestStatus.FORWARDED
        if self.selection.maintains_prefix_trees:
            # The regional snapshot tracks the prompts this region has sent
            # to each remote region (§3.2).
            self.snapshot_trie.insert(request.prompt_tokens, peer.name)
        self.monitor.note_forward(peer.name)
        self.network.deliver(request, self.region, peer.region, peer.inbox)
        self.remote_forwards += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SkyWalkerBalancer {self.name} region={self.region} routing={self.routing} "
            f"replicas={len(self._replicas)} peers={len(self._peers)} queue={self.queue_size} "
            f"trie={len(self.replica_trie)}n/{self.replica_trie.total_tokens}tok "
            f"snapshot={len(self.snapshot_trie)}n/{self.snapshot_trie.total_tokens}tok>"
        )
