"""Availability monitoring: the MONITORAVAILABILITY loop of Algorithm 1.

Each SkyWalker load balancer runs one :class:`AvailabilityMonitor`.  Every
``probe_interval`` (100 ms by default, §4.1) it

* probes every **local replica** for its pending-queue size, marking the
  replica available when the pushing policy allows more work, and
* probes every **remote load balancer** for its number of available replicas
  and its own queue length, marking the peer available when it has at least
  one free replica and a short queue (buffer ``tau``).

Probes travel over the simulated network, so the information the balancer
acts on is stale by up to an RTT plus one probe interval -- the same
staleness the real system lives with.  To avoid dumping a whole queue onto
one target inside a single interval, the monitor additionally counts how
many requests were dispatched to each target since its last probe and lets
the pushing policy take that into account.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, TYPE_CHECKING

from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment, Event
from .pushing import PushingPolicy, ReplicaProbe, SelectivePushingPending

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .balancer import SkyWalkerBalancer

__all__ = ["LoadBalancerProbe", "AvailabilityMonitor"]


class LoadBalancerProbe(NamedTuple):
    """Snapshot of a peer load balancer's advertised state."""

    balancer_name: str
    healthy: bool
    num_available_replicas: int
    queue_size: int
    probe_time: float


class AvailabilityMonitor:
    """Tracks which local replicas and remote balancers can accept work."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        region: str,
        *,
        pushing_policy: Optional[PushingPolicy] = None,
        probe_interval_s: float = 0.1,
        remote_queue_buffer: int = 4,
    ) -> None:
        self.env = env
        self.network = network
        self.region = region
        self.pushing_policy = pushing_policy or SelectivePushingPending()
        self.probe_interval_s = probe_interval_s
        #: ``tau`` in Algorithm 1: a peer with more queued requests than this
        #: is not a useful offload target.
        self.remote_queue_buffer = remote_queue_buffer

        self._local_replicas: Dict[str, ReplicaServer] = {}
        self._remote_balancers: Dict[str, "SkyWalkerBalancer"] = {}

        self.replica_probes: Dict[str, ReplicaProbe] = {}
        self.balancer_probes: Dict[str, LoadBalancerProbe] = {}
        self._dispatched_since_probe: Dict[str, int] = {}
        self._forwarded_since_probe: Dict[str, int] = {}

        #: Bumped whenever any input of a replica load estimate changes (a
        #: probe landing or a dispatch being recorded).  Selection policies
        #: memoise ``estimated_load`` per version, so a request that ranks
        #: many candidates computes each load once per probe epoch instead
        #: of once per comparison.
        self.load_version = 0

        self._change_event: Event = env.event()
        self._process = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_local_replica(self, replica: ReplicaServer) -> None:
        self._local_replicas[replica.name] = replica
        self._dispatched_since_probe.setdefault(replica.name, 0)
        self.load_version += 1
        # Seed with an optimistic probe so the system can route before the
        # first heartbeat completes.
        self.replica_probes[replica.name] = ReplicaProbe(
            replica_name=replica.name,
            healthy=replica.healthy,
            num_pending=0,
            num_running=0,
            num_outstanding=0,
            memory_utilization=0.0,
            probe_time=self.env.now,
        )

    def remove_local_replica(self, replica_name: str) -> None:
        self._local_replicas.pop(replica_name, None)
        self.replica_probes.pop(replica_name, None)
        self._dispatched_since_probe.pop(replica_name, None)
        self.load_version += 1

    def add_remote_balancer(self, balancer: "SkyWalkerBalancer") -> None:
        self._remote_balancers[balancer.name] = balancer
        self._forwarded_since_probe.setdefault(balancer.name, 0)
        # Seed from the peer's live state (mirroring add_local_replica): a
        # peer that is already failed when attached -- e.g. controller
        # failover re-wiring -- must not look like a forward target until the
        # first real probe lands.
        self.balancer_probes[balancer.name] = LoadBalancerProbe(
            balancer_name=balancer.name,
            healthy=balancer.healthy,
            num_available_replicas=balancer.num_available_replicas,
            queue_size=balancer.queue_size,
            probe_time=self.env.now,
        )

    def remove_remote_balancer(self, balancer_name: str) -> None:
        self._remote_balancers.pop(balancer_name, None)
        self.balancer_probes.pop(balancer_name, None)
        self._forwarded_since_probe.pop(balancer_name, None)

    def local_replicas(self) -> List[ReplicaServer]:
        return list(self._local_replicas.values())

    def remote_balancers(self) -> List["SkyWalkerBalancer"]:
        return list(self._remote_balancers.values())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._run())

    def _run(self):
        env = self.env
        while True:
            cycle_start = env.now
            # Probe remote balancers in parallel; each updates its entry when
            # its own round trip completes.
            for balancer in list(self._remote_balancers.values()):
                env.process(self._probe_balancer(balancer))
            # Probe local replicas: one intra-region round trip covers them
            # all (they are probed concurrently in the real system).
            if self._local_replicas:
                yield self.network.probe_delay(self.region, self.region)
                for replica in list(self._local_replicas.values()):
                    self._record_replica_probe(replica)
            # Wake any waiter at least once per cycle, even if the probe set
            # is empty, so the balancer's retry loop can never stall forever.
            self._notify_change()
            elapsed = env.now - cycle_start
            yield env.timeout(max(0.0, self.probe_interval_s - elapsed))

    def _probe_balancer(self, balancer: "SkyWalkerBalancer"):
        yield self.network.probe_delay(self.region, balancer.region)
        # A partitioned peer's probe never really comes back: record it as
        # unhealthy (with no spare replicas) so the peer stops being a
        # forward target until the link heals and a later probe lands.
        blocked = self.network.link_blocked(
            self.region, balancer.region
        ) or self.network.link_blocked(balancer.region, self.region)
        self.balancer_probes[balancer.name] = LoadBalancerProbe(
            balancer_name=balancer.name,
            healthy=balancer.healthy and not blocked,
            num_available_replicas=0 if blocked else balancer.num_available_replicas,
            queue_size=balancer.queue_size,
            probe_time=self.env.now,
        )
        self._forwarded_since_probe[balancer.name] = 0
        self._notify_change()

    def _record_replica_probe(self, replica: ReplicaServer) -> None:
        self.replica_probes[replica.name] = ReplicaProbe(
            replica_name=replica.name,
            healthy=replica.healthy,
            num_pending=replica.num_pending,
            num_running=replica.num_running,
            num_outstanding=replica.num_outstanding,
            memory_utilization=replica.memory_utilization,
            probe_time=self.env.now,
        )
        self._dispatched_since_probe[replica.name] = 0
        self.load_version += 1

    # ------------------------------------------------------------------
    # queries used by the balancer
    # ------------------------------------------------------------------
    def available_local_replicas(self) -> List[ReplicaServer]:
        """Local replicas the pushing policy allows us to push to."""
        available: List[ReplicaServer] = []
        for name, replica in self._local_replicas.items():
            probe = self.replica_probes.get(name)
            if probe is None or not replica.healthy:
                continue
            dispatched = self._dispatched_since_probe.get(name, 0)
            if self.pushing_policy.replica_available(probe, dispatched):
                available.append(replica)
        return available

    def available_remote_balancers(self) -> List["SkyWalkerBalancer"]:
        """Remote balancers with spare replicas and a short queue."""
        available: List["SkyWalkerBalancer"] = []
        for name, balancer in self._remote_balancers.items():
            probe = self.balancer_probes.get(name)
            if probe is None or not probe.healthy:
                continue
            forwarded = self._forwarded_since_probe.get(name, 0)
            if probe.num_available_replicas <= 0:
                continue
            if probe.queue_size + forwarded > self.remote_queue_buffer:
                continue
            available.append(balancer)
        return available

    def dispatched_since_probe(self, replica_name: str) -> int:
        """How many requests were pushed to a replica since its last probe.

        Public accessor for the load estimates the balancer and selection
        policies combine with the probed outstanding count.
        """
        return self._dispatched_since_probe.get(replica_name, 0)

    def note_dispatch(self, replica_name: str) -> None:
        """Record that a request was just pushed to a local replica."""
        self._dispatched_since_probe[replica_name] = (
            self._dispatched_since_probe.get(replica_name, 0) + 1
        )
        self.load_version += 1

    def note_forward(self, balancer_name: str) -> None:
        """Record that a request was just forwarded to a peer balancer."""
        self._forwarded_since_probe[balancer_name] = (
            self._forwarded_since_probe.get(balancer_name, 0) + 1
        )

    # ------------------------------------------------------------------
    # change notification (lets the balancer sleep while nothing is free)
    # ------------------------------------------------------------------
    def wait_for_change(self) -> Event:
        """An event that triggers the next time any probe result is updated."""
        return self._change_event

    def _notify_change(self) -> None:
        event, self._change_event = self._change_event, self.env.event()
        if not event.triggered:
            event.succeed()
