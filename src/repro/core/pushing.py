"""Pushing policies: when may a load balancer hand a request to a replica?

The paper contrasts three strategies (§3.3, Fig. 9):

* **Blind pushing (BP)** -- route every request to some replica immediately
  on arrival; the LB never queues.  This is what round-robin, least-load and
  the SGLang router baselines do.
* **Selective pushing by outstanding requests (SP-O)** -- push only to
  replicas whose outstanding-request count is below a fixed threshold;
  otherwise queue at the LB.
* **Selective pushing by pending requests (SP-P)** -- SkyWalker's policy:
  push only to replicas whose continuous batch can still admit work, i.e.
  replicas with **no pending request**.  This adapts automatically to how
  much memory the current requests consume.

Policies operate on :class:`ReplicaProbe` snapshots gathered by the
availability monitor; they never inspect the replica object directly, which
keeps the information model identical to the real system (probes are stale
by up to one probe interval plus an RTT).

Policies are resolved *by name* through a registry: the built-ins register
themselves via :func:`register_pushing_policy` and third parties add their
own the same way.  Experiment configs carry only the (picklable) policy
name; the actual policy object is instantiated wherever the system is built,
including inside sweep worker processes.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Tuple

from ._registry import NameRegistry

__all__ = [
    "ReplicaProbe",
    "PushingPolicy",
    "BlindPushing",
    "SelectivePushingOutstanding",
    "SelectivePushingPending",
    "register_pushing_policy",
    "unregister_pushing_policy",
    "registered_pushing_policies",
    "make_pushing_policy",
]

#: Factory taking policy-specific keyword arguments and returning a policy.
PushingPolicyFactory = Callable[..., "PushingPolicy"]


class ReplicaProbe(NamedTuple):
    """A point-in-time snapshot of one replica's observable load.

    A ``NamedTuple`` rather than a frozen dataclass: one is constructed per
    replica per probe cycle, and tuple construction is several times
    cheaper than ``object.__setattr__``-based frozen-dataclass init.
    """

    replica_name: str
    healthy: bool
    num_pending: int
    num_running: int
    num_outstanding: int
    memory_utilization: float
    probe_time: float

    @property
    def has_pending(self) -> bool:
        return self.num_pending > 0


class PushingPolicy:
    """Decides whether a replica may receive more work right now."""

    #: Blind policies dispatch immediately and never hold requests at the LB.
    blind: bool = False
    name: str = "abstract"

    def replica_available(self, probe: ReplicaProbe, dispatched_since_probe: int) -> bool:
        """Is the replica a valid push target given its last probe?

        ``dispatched_since_probe`` counts requests this balancer has already
        sent to the replica since the probe was taken; selective policies use
        it to avoid dumping an entire queue onto one replica inside a single
        probe interval (the optimistic-staleness guard).
        """
        raise NotImplementedError

    def pushed_prefix_tokens(self, prompt_tokens: int, resident_tokens: int) -> int:
        """KV tokens a push of this request must ship to its target.

        When the balancer models push transfer costs
        (``MemoryConfig.push_*``), this is what makes BP vs SP-O/SP-P costs
        size-dependent: a blind push cannot know what the target already
        holds, so it ships the whole prompt's KV; a selective, prefix-aware
        push ships only the suffix beyond the target's known-resident prefix
        (``resident_tokens``, from the balancer's affinity tree).
        """
        if self.blind:
            return prompt_tokens
        return max(0, prompt_tokens - resident_tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__}>"


# ----------------------------------------------------------------------
# the pushing-policy registry
# ----------------------------------------------------------------------
_PUSHING_POLICIES = NameRegistry("pushing policy", plural="policies", normalize=str.upper)


def register_pushing_policy(
    name: str, *, replace_existing: bool = False
) -> Callable[[PushingPolicyFactory], PushingPolicyFactory]:
    """Register a pushing-policy factory under ``name`` (case-insensitive).

    This is the same extension pattern as ``@register_system``: decorate a
    class (or any factory taking keyword arguments) and the name becomes
    resolvable everywhere a built-in policy name is -- ``SkyWalkerConfig``'s
    ``pushing`` field, the legacy shim, and :func:`make_pushing_policy`::

        @register_pushing_policy("SP-RANDOM")
        class RandomPushing(PushingPolicy):
            ...
    """
    return _PUSHING_POLICIES.register(name, replace_existing=replace_existing)


def unregister_pushing_policy(name: str) -> None:
    """Remove a registered policy (mainly for test cleanup)."""
    _PUSHING_POLICIES.unregister(name)


def registered_pushing_policies() -> Tuple[str, ...]:
    """Every pushing-policy name currently registered."""
    return _PUSHING_POLICIES.names()


@register_pushing_policy("BP")
class BlindPushing(PushingPolicy):
    """Route immediately, regardless of replica state (BP)."""

    blind = True
    name = "BP"

    def replica_available(self, probe: ReplicaProbe, dispatched_since_probe: int) -> bool:
        return probe.healthy


@register_pushing_policy("SP-O")
class SelectivePushingOutstanding(PushingPolicy):
    """Fixed cap on outstanding requests per replica (SP-O).

    The paper observes that the sustainable number of outstanding requests
    for Llama-3.1-8B on an L4 ranges from roughly 20 to 50 depending on
    request sizes, so any fixed threshold is wrong part of the time: too low
    wastes capacity, too high recreates blind pushing.
    """

    name = "SP-O"

    def __init__(self, max_outstanding: int = 24) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        self.max_outstanding = max_outstanding

    def replica_available(self, probe: ReplicaProbe, dispatched_since_probe: int) -> bool:
        if not probe.healthy:
            return False
        return probe.num_outstanding + dispatched_since_probe < self.max_outstanding

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<SelectivePushingOutstanding max={self.max_outstanding}>"


@register_pushing_policy("SP-P")
class SelectivePushingPending(PushingPolicy):
    """SkyWalker's policy: a replica is available iff it has no pending
    request (its continuous batch is not full), SP-P.

    Parameters
    ----------
    pending_slack:
        How many probed pending requests are still considered "not full"
        (0 = the paper's definition: any pending request marks the replica
        full).
    max_dispatch_per_probe:
        Staleness guard: at most this many requests may be pushed to one
        replica between two probes of it.  This only bounds how much a stale
        "available" verdict can be acted on within one probe interval; it
        does not change the pending-request semantics.
    """

    name = "SP-P"

    def __init__(self, pending_slack: int = 0, max_dispatch_per_probe: int = 16) -> None:
        if pending_slack < 0:
            raise ValueError("pending_slack must be non-negative")
        if max_dispatch_per_probe < 1:
            raise ValueError("max_dispatch_per_probe must be at least 1")
        self.pending_slack = pending_slack
        self.max_dispatch_per_probe = max_dispatch_per_probe

    def replica_available(self, probe: ReplicaProbe, dispatched_since_probe: int) -> bool:
        if not probe.healthy:
            return False
        if probe.num_pending > self.pending_slack:
            return False
        return dispatched_since_probe < self.max_dispatch_per_probe

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SelectivePushingPending slack={self.pending_slack} "
            f"max_dispatch={self.max_dispatch_per_probe}>"
        )


def make_pushing_policy(name: str, **kwargs) -> PushingPolicy:
    """Instantiate a registered pushing policy by name (``"BP"``, ``"SP-O"``,
    ``"SP-P"``, or any name added via :func:`register_pushing_policy`)."""
    return _PUSHING_POLICIES.make(name, **kwargs)
