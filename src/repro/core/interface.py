"""The unified load-balancer interface shared by every balancer family.

Historically each balancer family -- the centralized §5.1 baselines, the
GKE-Gateway baseline and SkyWalker itself -- re-implemented the same
plumbing: an inbox, health state, replica registration, outstanding-request
accounting and the final "stamp the request and hand it to the network"
dispatch step.  This module extracts that plumbing into two pieces:

* :class:`Balancer` -- a :class:`typing.Protocol` describing what the rest
  of the stack (frontend, controller, experiment runner, registry) may rely
  on: lifecycle (``start``/``stop``), wiring (``add_replica``,
  ``submit``), health and queue observability.
* :class:`BalancerBase` -- a concrete base class implementing the shared
  machinery, including the common ``_dispatch`` path and FIFO parking for
  the no-healthy-replica case (requests wait in arrival order and drain as
  soon as a replica recovers instead of being re-queued behind newer
  arrivals).

Policy decisions (which replica, which region, when to push) stay in the
subclasses and their plug-in policy objects.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Protocol, runtime_checkable

from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment, Event, Interrupt, Store
from ..workloads.request import Request, RequestStatus

__all__ = ["Balancer", "BalancerBase"]


@runtime_checkable
class Balancer(Protocol):
    """Anything the stack can treat as a load balancer.

    The frontend needs ``name``/``region``/``inbox`` to deliver requests,
    the controller needs ``healthy`` and the lifecycle methods, and the
    registry builders need ``add_replica``/``start``.
    """

    name: str
    region: str
    healthy: bool

    @property
    def inbox(self) -> Store:  # pragma: no cover - protocol definition only
        ...

    @property
    def queue_size(self) -> int:  # pragma: no cover - protocol definition only
        ...

    def add_replica(self, replica: ReplicaServer) -> None:  # pragma: no cover
        ...

    def submit(self, request: Request):  # pragma: no cover
        ...

    def healthy_replicas(self) -> List[ReplicaServer]:  # pragma: no cover
        ...

    def start(self) -> None:  # pragma: no cover
        ...

    def stop(self) -> None:  # pragma: no cover
        ...

    def fail(self) -> List[Request]:  # pragma: no cover
        ...

    def recover(self) -> None:  # pragma: no cover
        ...


class BalancerBase:
    """Shared state and behaviour for every balancer implementation.

    Subclasses provide a serving loop (the default one calls
    :meth:`select_replica`) and may hook :meth:`_register_replica` (extra
    per-replica wiring) and :meth:`_note_dispatch` (routing-state updates on
    the common dispatch path).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        network: Network,
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.network = network
        self.inbox: Store = Store(env)
        self.healthy = True
        self._replicas: Dict[str, ReplicaServer] = {}
        self.outstanding: Dict[str, int] = {}
        self._process = None
        #: Requests accepted while no replica was healthy, in arrival order.
        self._parked: Deque[Request] = deque()
        #: Requests left behind by a failure, pending re-routing (by the
        #: controller for SkyWalker systems, by the fault injector
        #: otherwise).
        self.stranded: List[Request] = []
        self._replica_available_event: Optional[Event] = None
        #: Optional :class:`~repro.mem.TransferModel` for pushed KV
        #: prefixes.  When set (via ``MemoryConfig.push_*``), every dispatch
        #: serialises the payload's transfer time on top of the link delay:
        #: blind pushes ship the whole prompt's KV, prefix-aware selective
        #: pushes only the suffix the target is not known to hold.  ``None``
        #: (default) keeps dispatch latency payload-independent.
        self.push_transfer = None

        # Statistics.
        self.received_requests = 0
        self.dispatched_requests = 0
        self.pushed_prefix_tokens = 0
        self.pushed_prefix_bytes = 0
        self.push_transfer_s = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_replica(self, replica: ReplicaServer) -> None:
        if replica.name in self._replicas:
            return
        self._replicas[replica.name] = replica
        self.outstanding[replica.name] = 0
        replica.add_completion_listener(self._on_replica_complete)
        replica.add_health_listener(self._on_replica_health)
        self._register_replica(replica)
        if replica.healthy:
            self._signal_replica_available()

    def _register_replica(self, replica: ReplicaServer) -> None:
        """Subclass hook: extra wiring when a replica is attached."""

    def replicas(self) -> List[ReplicaServer]:
        return list(self._replicas.values())

    def healthy_replicas(self) -> List[ReplicaServer]:
        return [replica for replica in self._replicas.values() if replica.healthy]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._serve())

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("balancer-stop")
        self._process = None

    def submit(self, request: Request):
        """Hand a request to this balancer (returns the store-put event)."""
        return self.inbox.put(request)

    # ------------------------------------------------------------------
    # failure handling (used by the controller and the fault injector)
    # ------------------------------------------------------------------
    def _collect_stranded(self) -> List[Request]:
        """Pull every not-yet-dispatched request out of this balancer's
        buffers (subclasses with extra queues extend this)."""
        stranded: List[Request] = list(self._parked)
        self._parked.clear()
        while self.inbox.items:
            stranded.append(self.inbox.items.popleft())
        return stranded

    def _restore_stranded(self, stranded: List[Request]) -> None:
        """Put untaken stranded requests back at the head of the queue
        (subclasses with extra queues override to match their buffer)."""
        self._parked.extendleft(reversed(stranded))

    def fail(self) -> List[Request]:
        """Crash this balancer, returning the requests stuck in its queues.

        The stranded requests are also kept in :attr:`stranded` so whoever
        detects the failure later (the controller via health probing, or
        the fault injector) can re-route them via :meth:`take_stranded`.
        The serving loop's pending ``inbox.get()`` is cancelled explicitly:
        an abandoned getter would otherwise swallow the first request
        delivered to the dead balancer (clients keep sending during an
        outage -- stale DNS -- and those requests must survive in the inbox
        until recovery).
        """
        if not self.healthy:
            return []
        self.healthy = False
        stranded = self._collect_stranded()
        process = self._process
        if process is not None and process.is_alive:
            target = process.target
            process.interrupt("balancer-failure")
            if target is not None:
                self.inbox.cancel(target)
        self._process = None
        self.stranded = list(stranded)
        return stranded

    def take_stranded(self) -> List[Request]:
        """Hand over (and clear) the requests stranded by a failure."""
        stranded = self.stranded
        self.stranded = []
        return list(stranded)

    def recover(self) -> None:
        """Restart a failed balancer's serving loop.

        Stranded requests nobody collected (no controller and no injector
        re-dispatch, e.g. a recovery racing failure detection) are put back
        at the head of the queue so they drain first, in arrival order.
        """
        if self.healthy:
            return
        self.healthy = True
        if self.stranded:
            self._restore_stranded(self.stranded)
            self.stranded = []
        self._process = self.env.process(self._serve())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def queue_size(self) -> int:
        return len(self.inbox.items) + len(self._parked)

    def _on_replica_complete(self, request: Request) -> None:
        name = request.replica_name
        if name in self.outstanding and self.outstanding[name] > 0:
            self.outstanding[name] -= 1

    # ------------------------------------------------------------------
    # no-healthy-replica parking
    # ------------------------------------------------------------------
    def _on_replica_health(self, replica: ReplicaServer) -> None:
        if replica.healthy:
            self._signal_replica_available()

    def _signal_replica_available(self) -> None:
        event = self._replica_available_event
        if event is not None and not event.triggered:
            event.succeed()

    def _wait_for_replica(self) -> Event:
        """An event triggered the next time a replica becomes available."""
        if self._replica_available_event is None or self._replica_available_event.triggered:
            self._replica_available_event = self.env.event()
        return self._replica_available_event

    def _park(self, request: Request) -> None:
        self._parked.append(request)

    # ------------------------------------------------------------------
    # serving loop
    # ------------------------------------------------------------------
    def _accept(self, request: Request) -> None:
        """Bookkeeping common to every balancer when a request arrives."""
        self.received_requests += 1
        if request.lb_arrival_time is None:
            request.lb_arrival_time = self.env.now
        request.status = RequestStatus.QUEUED_AT_LB
        if request.ingress_region is None:
            request.ingress_region = self.region

    def select_replica(
        self, request: Request, candidates: List[ReplicaServer]
    ) -> Optional[ReplicaServer]:
        """Pick the replica this request should run on (policy hook)."""
        raise NotImplementedError

    def _serve(self):
        """Default serving loop: accept, select, dispatch.

        When no replica can take a request it is *parked* (in FIFO order)
        rather than re-queued behind newer arrivals, and the loop sleeps on
        a health-change event instead of busy-polling.  Parked requests
        drain before anything still sitting in the inbox, preserving
        arrival order across a full outage.
        """
        try:
            while True:
                if self._parked and self.healthy_replicas():
                    request = self._parked.popleft()
                else:
                    request = yield self.inbox.get()
                    self._accept(request)
                candidates = self.healthy_replicas()
                replica = self.select_replica(request, candidates) if candidates else None
                if replica is None:
                    self._park(request)
                    yield self._wait_for_replica()
                    continue
                self._dispatch(request, replica)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # the common dispatch path
    # ------------------------------------------------------------------
    def _dispatch(self, request: Request, replica: ReplicaServer) -> None:
        """Stamp routing metadata on the request and send it to ``replica``."""
        request.lb_dispatch_time = self.env.now
        request.serving_region = replica.region
        request.replica_name = replica.name
        request.status = RequestStatus.PENDING_AT_REPLICA
        request.response_network_delay = self.network.topology.one_way(
            replica.region, request.region
        )
        # Payload cost of the push, computed *before* _note_dispatch records
        # this prompt in the routing trees (else the request would always
        # appear fully resident on its own target).
        contended = self.network.contention_enabled
        extra_delay = 0.0
        pushed = 0
        if self.push_transfer is not None or contended:
            pushed = self._push_payload_tokens(request, replica)
        if self.push_transfer is not None and pushed > 0:
            extra_delay = self.push_transfer.delay_s(pushed)
            self.pushed_prefix_tokens += pushed
            self.pushed_prefix_bytes += self.push_transfer.bytes_for(pushed)
            self.push_transfer_s += extra_delay
        self.outstanding[replica.name] = self.outstanding.get(replica.name, 0) + 1
        self._note_dispatch(request, replica)
        if contended:
            # Contended WAN: the dispatch carries its wire size (request
            # plus any pushed KV prefix) and originates at the request's
            # home region, so the payload crosses the shared cross-region
            # edges exactly once even after LB-to-LB forwards.
            size_bytes = self.network.request_wire_bytes(
                request
            ) + self.network.push_wire_bytes(pushed)
            self.network.deliver(
                request,
                request.region,
                replica.region,
                replica.inbox,
                extra_delay=extra_delay,
                size_bytes=size_bytes,
            )
        else:
            self.network.deliver(
                request, self.region, replica.region, replica.inbox, extra_delay=extra_delay
            )
        self.dispatched_requests += 1

    def _push_payload_tokens(self, request: Request, replica: ReplicaServer) -> int:
        """KV tokens that must ship with this push (Fig. 6 cost model).

        A blind push (BP, and any balancer without a pushing policy) cannot
        know what the target holds, so it ships the whole prompt's KV; a
        selective, prefix-aware push ships only the suffix beyond what
        :meth:`_known_prefix_tokens` says is already resident.
        """
        policy = getattr(self, "pushing_policy", None)
        if policy is None:
            return request.prompt_len
        return policy.pushed_prefix_tokens(
            request.prompt_len, self._known_prefix_tokens(request, replica)
        )

    def _known_prefix_tokens(self, request: Request, replica: ReplicaServer) -> int:
        """Tokens of this prompt the balancer believes ``replica`` holds
        (subclasses with prefix-affinity state override)."""
        return 0

    def _note_dispatch(self, request: Request, replica: ReplicaServer) -> None:
        """Subclass hook: update routing state on the dispatch path."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name} replicas={len(self._replicas)}>"
