"""The load balancer's prefix tree (§3.2, "SkyWalker with regional snapshot").

This is the *router-side* structure, distinct from the replica's KV radix
cache: it does not hold any KV memory, it records which load-balancing
**targets** have previously been sent requests with a given prefix.  Each
node stores the set of targets associated with the prefix spelled by the
path from the root; because a target is recorded on *every* node along the
inserted path, the target set of a child is always a subset of its parent's,
which is what makes the early-terminating traversal in
:meth:`PrefixTree.best_target` correct.

Memory is bounded: the tree enforces ``max_tokens`` and evicts the
earliest-inserted paths first, as described in the paper.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar

__all__ = ["PrefixTree", "PrefixMatch"]

T = TypeVar("T", bound=Hashable)


class _TrieNode(Generic[T]):
    __slots__ = ("key", "parent", "children", "targets", "insert_seq")

    def __init__(self, key: Tuple[int, ...] = (), parent: Optional["_TrieNode[T]"] = None) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "_TrieNode[T]"] = {}
        self.targets: Set[T] = set()
        #: Sequence number of the most recent insert that touched this node;
        #: eviction removes the leaves with the smallest value first.
        self.insert_seq = 0

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def num_tokens(self) -> int:
        return len(self.key)


class PrefixMatch(Generic[T]):
    """Outcome of a :meth:`PrefixTree.best_target` lookup."""

    def __init__(self, target: Optional[T], matched_tokens: int, prompt_tokens: int) -> None:
        self.target = target
        self.matched_tokens = matched_tokens
        self.prompt_tokens = prompt_tokens

    @property
    def hit_ratio(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.matched_tokens / self.prompt_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<PrefixMatch target={self.target!r} matched={self.matched_tokens}/{self.prompt_tokens}>"


def _common_prefix_len(a: Sequence[int], b: Sequence[int]) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class PrefixTree(Generic[T]):
    """Compressed trie mapping token prefixes to sets of routing targets."""

    def __init__(self, max_tokens: float = 200_000) -> None:
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.max_tokens = max_tokens
        self.root: _TrieNode[T] = _TrieNode()
        self._total_tokens = 0
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    def clear(self) -> None:
        """Drop every recorded prefix (all targets, all nodes)."""
        self.root = _TrieNode()
        self._total_tokens = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, tokens: Sequence[int], target: T) -> None:
        """Record that ``target`` was chosen for a request with this prompt."""
        tokens = tuple(tokens)
        seq = next(self._seq)
        node = self.root
        node.targets.add(target)
        idx = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                child = _TrieNode(key=tokens[idx:], parent=node)
                node.children[tokens[idx]] = child
                self._total_tokens += child.num_tokens
                child.targets.add(target)
                child.insert_seq = seq
                break
            overlap = _common_prefix_len(child.key, tokens[idx:])
            if overlap < len(child.key):
                child = self._split(child, overlap)
            child.targets.add(target)
            child.insert_seq = seq
            node = child
            idx += overlap
        self._enforce_capacity()

    def _split(self, node: _TrieNode[T], offset: int) -> _TrieNode[T]:
        """Split ``node`` so its first ``offset`` tokens become a new parent.

        Returns the new upper node (which carries the shared prefix).
        """
        parent = node.parent
        assert parent is not None and 0 < offset < len(node.key)
        upper: _TrieNode[T] = _TrieNode(key=node.key[:offset], parent=parent)
        upper.targets = set(node.targets)
        upper.insert_seq = node.insert_seq
        parent.children[upper.key[0]] = upper
        node.key = node.key[offset:]
        node.parent = upper
        upper.children = {node.key[0]: node}
        return upper

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def best_target(
        self,
        tokens: Sequence[int],
        available: Iterable[T],
    ) -> PrefixMatch[T]:
        """The *available* target with the longest matching prefix.

        The traversal stops early as soon as the current node has no
        available target, because target sets only shrink down the tree
        (Listing 1, line 21 and the §3.2 discussion).
        """
        available_set = set(available)
        best_target: Optional[T] = None
        best_depth = 0
        matched = 0
        node = self.root
        idx = 0
        n = len(tokens)
        # A target is only returned for a non-empty prefix match; with zero
        # overlap the caller falls back to its load-balancing tie-breaker.
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            overlap = _common_prefix_len(child.key, tokens[idx:])
            if overlap == 0:
                break
            reachable = child.targets & available_set
            if not reachable:
                # No available target deeper down this path: terminate early.
                break
            matched = idx + overlap
            best_target = min(reachable, key=repr)
            best_depth = matched
            if overlap < len(child.key):
                break
            node = child
            idx += overlap
        if best_target is None:
            return PrefixMatch(None, 0, n)
        return PrefixMatch(best_target, best_depth, n)

    def match_length(self, tokens: Sequence[int], target: Optional[T] = None) -> int:
        """Longest prefix of ``tokens`` recorded in the tree (optionally for
        one specific target); used by tie-breaking and by tests."""
        node = self.root
        idx = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            overlap = _common_prefix_len(child.key, tokens[idx:])
            if overlap == 0:
                break
            if target is not None and target not in child.targets:
                break
            idx += overlap
            if overlap < len(child.key):
                break
            node = child
        return idx

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def remove_target(self, target: T) -> None:
        """Erase every reference to ``target`` (replica/LB decommissioned)."""
        for node in self._iter_nodes():
            node.targets.discard(target)
        self._prune_empty()

    def _prune_empty(self) -> None:
        removed = True
        while removed:
            removed = False
            for node in list(self._iter_nodes()):
                if node.is_root or node.children or node.targets:
                    continue
                parent = node.parent
                assert parent is not None
                del parent.children[node.key[0]]
                self._total_tokens -= node.num_tokens
                removed = True

    def _enforce_capacity(self) -> None:
        while self._total_tokens > self.max_tokens:
            victim = self._oldest_leaf()
            if victim is None:
                return
            parent = victim.parent
            assert parent is not None
            del parent.children[victim.key[0]]
            self._total_tokens -= victim.num_tokens

    def _oldest_leaf(self) -> Optional[_TrieNode[T]]:
        best: Optional[_TrieNode[T]] = None
        for node in self._iter_nodes():
            if node.is_root or node.children:
                continue
            if best is None or node.insert_seq < best.insert_seq:
                best = node
        return best

    def _iter_nodes(self) -> Iterable[_TrieNode[T]]:
        stack: List[_TrieNode[T]] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural checks used by the property-based tests."""
        counted = 0
        for node in self._iter_nodes():
            if node.is_root:
                continue
            counted += node.num_tokens
            assert node.parent is not None
            if not node.targets.issubset(node.parent.targets) and not node.parent.is_root:
                raise AssertionError("child target set is not a subset of its parent's")
        if counted != self._total_tokens:
            raise AssertionError(
                f"token accounting mismatch: counted {counted}, recorded {self._total_tokens}"
            )
