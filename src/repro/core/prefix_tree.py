"""The load balancer's prefix tree (§3.2, "SkyWalker with regional snapshot").

This is the *router-side* structure, distinct from the replica's KV radix
cache: it does not hold any KV memory, it records which load-balancing
**targets** have previously been sent requests with a given prefix.  Each
node stores the targets associated with the prefix spelled by the path from
the root; because a target is recorded on *every* node along the inserted
path, the target set of a child is always a subset of its parent's, which
is what makes the early-terminating traversal in
:meth:`PrefixTree.best_target` correct.

Memory is bounded: the tree enforces ``max_tokens`` and evicts the
earliest-inserted paths first, as described in the paper.

Hot-path design (the per-request costs this module is built around):

* **Eviction is O(log n)** via a lazy min-heap over leaves keyed by
  ``insert_seq``.  Heap entries are never removed eagerly; an entry is
  simply skipped at pop time when its node has since been touched, grown
  children, or been detached.  One insert assigns a single sequence number
  to every node on its path, and two leaves can never share a sequence
  number (nodes sharing one are ancestor/descendant by construction), so
  the heap's pop order is exactly the old full-scan "oldest leaf first"
  order.
* **Lookups are allocation-free**: the traversal indexes into the caller's
  token sequence with an offset instead of slicing suffix tuples, and the
  availability set is used as-is when the caller already holds a set (or a
  dict keys view).
* **Tie-breaking is O(1)-deterministic**: each node maps every target to
  the sequence number of the last insert that recorded it there, and
  :meth:`best_target` picks the available target with the most recent
  sequence number.  Sequence numbers are unique per insert, so the choice
  never depends on iteration order or on ``repr`` of the targets (the old
  ``min(reachable, key=repr)`` ordered ``"r10"`` before ``"r9"``).
* **Target removal is a single bottom-up pass** instead of repeated
  full-tree prune sweeps.
"""

from __future__ import annotations

import itertools
from collections.abc import Set as _AbstractSet
from heapq import heapify, heappop, heappush
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = ["PrefixTree", "PrefixMatch"]

T = TypeVar("T", bound=Hashable)


class _TrieNode(Generic[T]):
    __slots__ = ("key", "parent", "children", "targets", "insert_seq")

    def __init__(self, key: Tuple[int, ...] = (), parent: Optional["_TrieNode[T]"] = None) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "_TrieNode[T]"] = {}
        #: target -> sequence number of the last insert that recorded the
        #: target on this node (the deterministic tie-break key).
        self.targets: Dict[T, int] = {}
        #: Sequence number of the most recent insert that touched this node;
        #: eviction removes the leaves with the smallest value first.
        self.insert_seq = 0

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def num_tokens(self) -> int:
        return len(self.key)


class PrefixMatch(Generic[T]):
    """Outcome of a :meth:`PrefixTree.best_target` lookup."""

    __slots__ = ("target", "matched_tokens", "prompt_tokens")

    def __init__(self, target: Optional[T], matched_tokens: int, prompt_tokens: int) -> None:
        self.target = target
        self.matched_tokens = matched_tokens
        self.prompt_tokens = prompt_tokens

    @property
    def hit_ratio(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.matched_tokens / self.prompt_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<PrefixMatch target={self.target!r} matched={self.matched_tokens}/{self.prompt_tokens}>"


class PrefixTree(Generic[T]):
    """Compressed trie mapping token prefixes to routing targets."""

    def __init__(self, max_tokens: float = 200_000) -> None:
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.max_tokens = max_tokens
        self.root: _TrieNode[T] = _TrieNode()
        self._total_tokens = 0
        self._node_count = 0
        self._seq = itertools.count(1)
        #: Lazy eviction heap: ``(insert_seq, entry_id, node)``.  Entries go
        #: stale instead of being removed; :meth:`_pop_oldest_leaf` validates.
        self._leaf_heap: List[Tuple[int, int, _TrieNode[T]]] = []
        self._entry_ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def node_count(self) -> int:
        """Number of non-root nodes currently in the tree."""
        return self._node_count

    def __len__(self) -> int:
        return self._node_count

    def clear(self) -> None:
        """Drop every recorded prefix (all targets, all nodes)."""
        self.root = _TrieNode()
        self._total_tokens = 0
        self._node_count = 0
        self._leaf_heap = []

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, tokens: Sequence[int], target: T) -> None:
        """Record that ``target`` was chosen for a request with this prompt."""
        tokens = tuple(tokens)
        seq = next(self._seq)
        node = self.root
        node.targets[target] = seq
        idx = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                child = _TrieNode(key=tokens[idx:], parent=node)
                node.children[tokens[idx]] = child
                self._total_tokens += n - idx
                self._node_count += 1
                child.targets[target] = seq
                child.insert_seq = seq
                self._push_leaf_entry(seq, child)
                node = None  # terminal already recorded in the heap
                break
            key = child.key
            klen = len(key)
            # Full-edge matches dominate repeat prefixes; compare the whole
            # edge at C speed before falling back to the scalar walk.
            if klen <= n - idx and tokens[idx : idx + klen] == key:
                overlap = klen
            else:
                limit = min(klen, n - idx)
                overlap = 0
                while overlap < limit and key[overlap] == tokens[idx + overlap]:
                    overlap += 1
            if overlap < klen:
                child = self._split(child, overlap)
            child.targets[target] = seq
            child.insert_seq = seq
            node = child
            idx += overlap
        if node is not None and not node.children and node.parent is not None:
            # The insert terminated on an existing node that is (still) a
            # leaf: its eviction key changed, so record a fresh heap entry.
            self._push_leaf_entry(seq, node)
        self._enforce_capacity()

    def _push_leaf_entry(self, seq: int, node: _TrieNode[T]) -> None:
        heap = self._leaf_heap
        heappush(heap, (seq, next(self._entry_ids), node))
        # Without capacity pressure nothing ever pops, so stale entries
        # would otherwise accumulate (and pin detached nodes) for the whole
        # run; compact once the heap clearly outgrows the live tree.
        if len(heap) > 64 and len(heap) > 4 * self._node_count:
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop stale entries, keeping the first-popping entry per leaf."""
        live: Dict[int, Tuple[int, int, _TrieNode[T]]] = {}
        for entry in self._leaf_heap:
            seq, _, node = entry
            if (
                seq == node.insert_seq
                and not node.children
                and node.parent is not None
                and node.parent.children.get(node.key[0]) is node
            ):
                previous = live.get(id(node))
                if previous is None or entry < previous:
                    live[id(node)] = entry
        self._leaf_heap = list(live.values())
        heapify(self._leaf_heap)

    def _split(self, node: _TrieNode[T], offset: int) -> _TrieNode[T]:
        """Split ``node`` so its first ``offset`` tokens become a new parent.

        Returns the new upper node (which carries the shared prefix).
        """
        parent = node.parent
        assert parent is not None and 0 < offset < len(node.key)
        upper: _TrieNode[T] = _TrieNode(key=node.key[:offset], parent=parent)
        upper.targets = dict(node.targets)
        upper.insert_seq = node.insert_seq
        parent.children[upper.key[0]] = upper
        node.key = node.key[offset:]
        node.parent = upper
        upper.children = {node.key[0]: node}
        self._node_count += 1
        return upper

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def best_target(
        self,
        tokens: Sequence[int],
        available: Iterable[T],
    ) -> PrefixMatch[T]:
        """The *available* target with the longest matching prefix.

        The traversal stops early as soon as the current node has no
        available target, because target sets only shrink down the tree
        (Listing 1, line 21 and the §3.2 discussion).  Among the targets
        recorded on the deepest matched node, the one recorded by the most
        recent insert wins — a deterministic O(1)-per-level tie-break.

        ``available`` is used as-is when it is already a set (or a dict
        keys view); pass one to keep the lookup allocation-free.
        """
        available_set = available if isinstance(available, _AbstractSet) else set(available)
        best_target: Optional[T] = None
        matched = 0
        node = self.root
        idx = 0
        n = len(tokens)
        # A target is only returned for a non-empty prefix match; with zero
        # overlap the caller falls back to its load-balancing tie-breaker.
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            key = child.key
            limit = min(len(key), n - idx)
            overlap = 0
            while overlap < limit and key[overlap] == tokens[idx + overlap]:
                overlap += 1
            if overlap == 0:
                break
            reachable = self._freshest_available(child.targets, available_set)
            if reachable is None:
                # No available target deeper down this path: terminate early.
                break
            matched = idx + overlap
            best_target = reachable
            if overlap < len(key):
                break
            node = child
            idx += overlap
        if best_target is None:
            return PrefixMatch(None, 0, n)
        return PrefixMatch(best_target, matched, n)

    @staticmethod
    def _freshest_available(targets: Dict[T, int], available) -> Optional[T]:
        """The available target most recently recorded on a node, iterating
        over whichever of the two collections is smaller."""
        best: Optional[T] = None
        best_seq = -1
        if len(targets) <= len(available):
            for target, seq in targets.items():
                if seq > best_seq and target in available:
                    best = target
                    best_seq = seq
        else:
            for target in available:
                seq = targets.get(target)
                if seq is not None and seq > best_seq:
                    best = target
                    best_seq = seq
        return best

    def match_length(self, tokens: Sequence[int], target: Optional[T] = None) -> int:
        """Longest prefix of ``tokens`` recorded in the tree (optionally for
        one specific target); used by tie-breaking and by tests."""
        node = self.root
        idx = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            key = child.key
            limit = min(len(key), n - idx)
            overlap = 0
            while overlap < limit and key[overlap] == tokens[idx + overlap]:
                overlap += 1
            if overlap == 0:
                break
            if target is not None and target not in child.targets:
                break
            idx += overlap
            if overlap < len(key):
                break
            node = child
        return idx

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def remove_target(self, target: T) -> None:
        """Erase every reference to ``target`` (replica/LB decommissioned).

        A single bottom-up pass: children are visited before their parents
        (reversed pre-order), so a node emptied by the removal is pruned
        before its parent is examined and cascading prunes need no repeated
        sweeps.
        """
        order: List[_TrieNode[T]] = []
        stack: List[_TrieNode[T]] = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children.values())
        heap = self._leaf_heap
        entry_ids = self._entry_ids
        promoted: Dict[int, _TrieNode[T]] = {}
        for node in reversed(order):
            node.targets.pop(target, None)
            if node.parent is None:
                continue
            if not node.children and not node.targets:
                del node.parent.children[node.key[0]]
                self._total_tokens -= len(node.key)
                self._node_count -= 1
                promoted[id(node.parent)] = node.parent
        # Surviving leaves keep their valid heap entries (removing a target
        # changes neither insert_seq nor attachment); only nodes *promoted*
        # to leaves by the pruning need fresh entries.  Promoted parents may
        # themselves have been pruned later in the pass, so re-check.
        for parent in promoted.values():
            if (
                parent.parent is not None
                and not parent.children
                and parent.parent.children.get(parent.key[0]) is parent
            ):
                heappush(heap, (parent.insert_seq, next(entry_ids), parent))
        if len(heap) > 64 and len(heap) > 4 * self._node_count:
            self._compact_heap()

    def _enforce_capacity(self) -> None:
        while self._total_tokens > self.max_tokens:
            victim = self._pop_oldest_leaf()
            if victim is None:
                return
            parent = victim.parent
            assert parent is not None
            del parent.children[victim.key[0]]
            self._total_tokens -= len(victim.key)
            self._node_count -= 1
            if parent.parent is not None and not parent.children:
                # Raw push: eviction pops keep the heap clean on this path,
                # and the compaction trigger would thrash as the tree drains.
                heappush(
                    self._leaf_heap,
                    (parent.insert_seq, next(self._entry_ids), parent),
                )

    def _pop_oldest_leaf(self) -> Optional[_TrieNode[T]]:
        """Pop the attached leaf with the smallest ``insert_seq``.

        Stale entries (node re-touched, grew children, or already detached)
        are discarded as they surface; amortised over the pushes that
        created them this is O(log n) per eviction.
        """
        heap = self._leaf_heap
        while heap:
            seq, _, node = heappop(heap)
            if (
                seq == node.insert_seq
                and not node.children
                and node.parent is not None
                and node.parent.children.get(node.key[0]) is node
            ):
                return node
        return None

    def _iter_nodes(self) -> Iterable[_TrieNode[T]]:
        stack: List[_TrieNode[T]] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural checks used by the property-based tests."""
        counted_tokens = 0
        counted_nodes = 0
        leaves: List[_TrieNode[T]] = []
        for node in self._iter_nodes():
            if node.is_root:
                continue
            counted_tokens += node.num_tokens
            counted_nodes += 1
            assert node.parent is not None
            if not node.parent.is_root:
                if not set(node.targets).issubset(node.parent.targets):
                    raise AssertionError("child target set is not a subset of its parent's")
                if node.insert_seq > node.parent.insert_seq:
                    raise AssertionError("child was inserted after its parent's last touch")
            if not node.children:
                leaves.append(node)
        if counted_tokens != self._total_tokens:
            raise AssertionError(
                f"token accounting mismatch: counted {counted_tokens}, recorded {self._total_tokens}"
            )
        if counted_nodes != self._node_count:
            raise AssertionError(
                f"node accounting mismatch: counted {counted_nodes}, recorded {self._node_count}"
            )
        visible = {
            id(node)
            for seq, _, node in self._leaf_heap
            if seq == node.insert_seq
            and not node.children
            and node.parent is not None
            and node.parent.children.get(node.key[0]) is node
        }
        for leaf in leaves:
            if id(leaf) not in visible:
                raise AssertionError("leaf missing from the eviction heap")
