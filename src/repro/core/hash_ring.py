"""Ring-based consistent hashing (Karger et al. / Chord style, §3.2).

SkyWalker-CH hashes a user-provided key (user id, session id) onto a ring of
virtual nodes; each virtual node maps to a load-balancing target (a replica,
or a remote load balancer in the upper routing layer).  Two extensions over
textbook consistent hashing are implemented exactly as the paper describes:

* hashing happens at **both** layers of the two-layer design, and
* virtual nodes whose target is currently unavailable are **skipped**, with
  the lookup continuing clockwise around the ring (Listing 1, line 26).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Set, TypeVar

__all__ = ["ConsistentHashRing"]

T = TypeVar("T", bound=Hashable)


def _hash64(value: str) -> int:
    """Stable 64-bit hash (md5-based so results do not depend on PYTHONHASHSEED)."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing(Generic[T]):
    """A consistent-hash ring with virtual nodes.

    Parameters
    ----------
    virtual_nodes:
        Number of ring positions per target.  More virtual nodes give a more
        uniform key distribution at the cost of a larger ring.
    """

    def __init__(self, targets: Iterable[T] = (), *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        self._ring: List[int] = []
        self._owner: Dict[int, T] = {}
        self._targets: Set[T] = set()
        for target in targets:
            self.add_target(target)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._targets)

    def __contains__(self, target: T) -> bool:
        return target in self._targets

    @property
    def targets(self) -> Set[T]:
        return set(self._targets)

    def add_target(self, target: T) -> None:
        """Add ``target`` with ``virtual_nodes`` positions on the ring."""
        if target in self._targets:
            return
        self._targets.add(target)
        for index in range(self.virtual_nodes):
            position = _hash64(f"{target!r}#{index}")
            # Resolve the (extremely unlikely) collision deterministically.
            while position in self._owner:
                position = (position + 1) % (1 << 64)
            self._owner[position] = target
            bisect.insort(self._ring, position)

    def remove_target(self, target: T) -> None:
        """Remove every virtual node belonging to ``target``."""
        if target not in self._targets:
            return
        self._targets.discard(target)
        positions = [pos for pos, owner in self._owner.items() if owner == target]
        for position in positions:
            del self._owner[position]
            index = bisect.bisect_left(self._ring, position)
            del self._ring[index]

    # ------------------------------------------------------------------
    def lookup(self, key: str, available: Optional[Iterable[T]] = None) -> Optional[T]:
        """Map ``key`` to a target, skipping unavailable virtual nodes.

        ``available`` restricts the result to a subset of targets (the
        candidate set *C* in Algorithm 1); when omitted every target is
        eligible.  Returns ``None`` only when no eligible target exists.
        """
        if not self._ring:
            return None
        allowed: Optional[Set[T]] = None
        if available is not None:
            allowed = set(available) & self._targets
            if not allowed:
                return None
        start = bisect.bisect_left(self._ring, _hash64(key)) % len(self._ring)
        for offset in range(len(self._ring)):
            position = self._ring[(start + offset) % len(self._ring)]
            target = self._owner[position]
            if allowed is None or target in allowed:
                return target
        return None

    def key_distribution(self, keys: Sequence[str]) -> Dict[T, int]:
        """How many of ``keys`` map to each target (useful for balance tests)."""
        counts: Dict[T, int] = {target: 0 for target in self._targets}
        for key in keys:
            target = self.lookup(key)
            if target is not None:
                counts[target] += 1
        return counts
