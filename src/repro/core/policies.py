"""Customisable routing constraints (§4.1 "Customized routing policy", §7).

SkyWalker lets operators restrict which regions may serve which traffic.
The canonical example is GDPR: requests originating in GDPR regions must not
be offloaded outside GDPR scope, while non-GDPR traffic may be offloaded
anywhere (including into GDPR regions when those are underutilised).
Amazon-Bedrock-style "same continent only" offloading is provided as well,
both for comparison experiments and as another example policy.

Constraints are resolvable *by name* through a registry: ``"gdpr"``,
``"continent"`` and ``"allow-all"`` are built in, and operators register
their own factories via :func:`register_constraint`.  Experiment configs
carry only the (picklable) constraint name; the constraint object itself is
instantiated against the run's topology wherever the system is built,
including inside sweep worker processes.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..network import NetworkTopology
from ..workloads.request import Request
from ._registry import NameRegistry

__all__ = [
    "RoutingConstraint",
    "AllowAll",
    "GDPRConstraint",
    "SameContinentConstraint",
    "DenyRegions",
    "CompositeConstraint",
    "register_constraint",
    "unregister_constraint",
    "registered_constraints",
    "make_constraint",
]

#: Factory taking the run's network topology and returning a constraint.
ConstraintFactory = Callable[[NetworkTopology], "RoutingConstraint"]


class RoutingConstraint:
    """Decides whether a request may be offloaded from one region to another."""

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        raise NotImplementedError

    def filter_regions(
        self, request: Request, src_region: str, candidates: Iterable[str]
    ) -> List[str]:
        return [dst for dst in candidates if self.allows(request, src_region, dst)]


class AllowAll(RoutingConstraint):
    """No restrictions: any region may serve any request."""

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        return True


class GDPRConstraint(RoutingConstraint):
    """GDPR data-residency: GDPR-origin traffic stays in GDPR regions."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        return self.topology.gdpr_compatible(src_region, dst_region)


class SameContinentConstraint(RoutingConstraint):
    """Bedrock-style offloading limited to the originating continent."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        return self.topology.same_continent(src_region, dst_region)


class DenyRegions(RoutingConstraint):
    """Never offload to an explicit deny-list of regions."""

    def __init__(self, denied: Iterable[str]) -> None:
        self.denied = set(denied)

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        return dst_region not in self.denied


class CompositeConstraint(RoutingConstraint):
    """All member constraints must allow the offload."""

    def __init__(self, constraints: Iterable[RoutingConstraint]) -> None:
        self.constraints = list(constraints)

    def allows(self, request: Request, src_region: str, dst_region: str) -> bool:
        return all(c.allows(request, src_region, dst_region) for c in self.constraints)


# ----------------------------------------------------------------------
# the constraint registry
# ----------------------------------------------------------------------
_CONSTRAINTS = NameRegistry("constraint", plural="constraints")


def register_constraint(
    name: str, *, replace_existing: bool = False
) -> Callable[[ConstraintFactory], ConstraintFactory]:
    """Register a constraint factory under ``name`` (case-insensitive).

    The factory receives the run's :class:`NetworkTopology` and returns a
    :class:`RoutingConstraint`.  After registration the name is accepted
    everywhere a built-in one is (``SkyWalkerConfig.constraint``, the legacy
    shim, :func:`make_constraint`)::

        @register_constraint("us-only")
        def _us_only(topology):
            return DenyRegions({"eu", "asia"})
    """
    return _CONSTRAINTS.register(name, replace_existing=replace_existing)


def unregister_constraint(name: str) -> None:
    """Remove a registered constraint (mainly for test cleanup)."""
    _CONSTRAINTS.unregister(name)


def registered_constraints() -> Tuple[str, ...]:
    """Every constraint name currently registered."""
    return _CONSTRAINTS.names()


def make_constraint(name: str, topology: NetworkTopology) -> RoutingConstraint:
    """Instantiate a registered routing constraint by name."""
    return _CONSTRAINTS.make(name, topology)


def _make_allow_all(topology: NetworkTopology) -> AllowAll:
    """Module-level factory so 'allow-all' pickles by reference (spawn)."""
    return AllowAll()


register_constraint("allow-all")(_make_allow_all)
register_constraint("gdpr")(GDPRConstraint)
register_constraint("continent")(SameContinentConstraint)
