"""The centralized service controller (§4.2).

The controller is SkyWalker's management plane: it periodically probes the
health of every load balancer and replica, reconfigures the system when a
load balancer dies (re-assigning its replicas to the geographically closest
healthy balancer and re-pointing DNS), initiates recovery in the background,
and transfers the replicas back once the failed balancer returns.

The controller is intentionally *not* on the data path -- requests never
pass through it -- so its own failure only delays reconfiguration.  Its
state can be rebuilt from the balancers at any time, which is what
:meth:`ServiceController.rebuild_state` models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.client import Frontend
from ..network import Network
from ..replica import ReplicaServer
from ..sim import Environment
from ..workloads.request import Request
from .balancer import SkyWalkerBalancer

__all__ = ["ServiceController", "FailoverRecord"]


@dataclass
class FailoverRecord:
    """Bookkeeping for one balancer failure being handled."""

    failed_balancer: str
    takeover_balancer: str
    replica_names: List[str] = field(default_factory=list)
    failed_at: float = 0.0
    recovered_at: Optional[float] = None


class ServiceController:
    """Health monitoring, fail-over and recovery orchestration."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        frontend: Frontend,
        *,
        health_probe_interval_s: float = 0.5,
        recovery_time_s: float = 10.0,
    ) -> None:
        self.env = env
        self.network = network
        self.frontend = frontend
        self.health_probe_interval_s = health_probe_interval_s
        self.recovery_time_s = recovery_time_s
        self.balancers: Dict[str, SkyWalkerBalancer] = {}
        self.failovers: List[FailoverRecord] = []
        self._active_failovers: Dict[str, FailoverRecord] = {}
        self._process = None

    # ------------------------------------------------------------------
    def register_balancer(self, balancer: SkyWalkerBalancer) -> None:
        self.balancers[balancer.name] = balancer

    def start(self) -> None:
        if self._process is None:
            self._process = self.env.process(self._run())

    def rebuild_state(self) -> Dict[str, List[str]]:
        """Recompute the replica ownership map from the balancers themselves
        (controller crash recovery: its state is soft)."""
        return {
            name: [replica.name for replica in balancer.local_replicas()]
            for name, balancer in self.balancers.items()
        }

    # ------------------------------------------------------------------
    def _run(self):
        env = self.env
        while True:
            yield env.timeout(self.health_probe_interval_s)
            for balancer in list(self.balancers.values()):
                if not balancer.healthy and balancer.name not in self._active_failovers:
                    self._handle_balancer_failure(balancer)

    # ------------------------------------------------------------------
    def _nearest_healthy_balancer(self, region: str, exclude: str) -> Optional[SkyWalkerBalancer]:
        best: Optional[SkyWalkerBalancer] = None
        best_latency = float("inf")
        for balancer in self.balancers.values():
            if balancer.name == exclude or not balancer.healthy:
                continue
            latency = self.network.topology.one_way(region, balancer.region)
            if latency < best_latency:
                best, best_latency = balancer, latency
        return best

    def _handle_balancer_failure(self, failed: SkyWalkerBalancer) -> None:
        """Reassign the failed balancer's replicas and stranded requests."""
        takeover = self._nearest_healthy_balancer(failed.region, exclude=failed.name)
        failed.fail()  # idempotent if the failure was injected externally
        stranded = failed.take_stranded()
        self.frontend.set_health(failed.name, False)
        record = FailoverRecord(
            failed_balancer=failed.name,
            takeover_balancer=takeover.name if takeover else "",
            failed_at=self.env.now,
        )
        if takeover is not None:
            for replica in failed.local_replicas():
                record.replica_names.append(replica.name)
                takeover.add_replica(replica)
            for request in stranded:
                # Stranded requests are re-routed through the takeover
                # balancer; the extra hop is visible in their latency.
                self.network.deliver(
                    request, failed.region, takeover.region, takeover.inbox
                )
        self.failovers.append(record)
        self._active_failovers[failed.name] = record
        self.env.process(self._recover_later(failed, takeover, record))

    def _recover_later(
        self,
        failed: SkyWalkerBalancer,
        takeover: Optional[SkyWalkerBalancer],
        record: FailoverRecord,
    ):
        yield self.env.timeout(self.recovery_time_s)
        failed.recover()
        if takeover is not None:
            for replica_name in record.replica_names:
                replica = takeover.remove_replica(replica_name)
                if replica is not None:
                    failed.add_replica(replica)
        self.frontend.set_health(failed.name, True)
        record.recovered_at = self.env.now
        self._active_failovers.pop(failed.name, None)
