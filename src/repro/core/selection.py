"""Pluggable candidate-selection policies for the SkyWalker balancer.

SELECTCANDIDATE in Algorithm 1 is a policy decision that is orthogonal to
the rest of the balancer (availability monitoring, selective pushing,
cross-region forwarding, routing constraints).  This module turns it into a
plug-in: a :class:`SelectionPolicy` picks the local replica and the remote
peer for a request, reading the prefix trees / hash rings and the load
estimates the balancer maintains.

Two built-in policies mirror the paper's variants:

* :class:`PrefixTreeSelection` -- SkyWalker (``routing="prefix_tree"``)
* :class:`ConsistentHashSelection` -- SkyWalker-CH (``routing="consistent_hash"``)

Third-party systems can register their own policy (see the
``skywalker-hybrid`` system in :mod:`repro.experiments.hybrid`) without
touching the balancer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Tuple

from ..replica import ReplicaServer
from ..workloads.request import Request
from ._registry import NameRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .balancer import SkyWalkerBalancer

__all__ = [
    "SelectionPolicy",
    "PrefixTreeSelection",
    "ConsistentHashSelection",
    "register_selection_policy",
    "unregister_selection_policy",
    "registered_selection_policies",
    "make_selection_policy",
]

#: Factory taking policy-specific keyword arguments and returning a policy.
SelectionPolicyFactory = Callable[..., "SelectionPolicy"]


class SelectionPolicy:
    """Strategy object deciding *where* a request should go.

    Both methods receive the balancer so they can read its routing state
    (prefix trees, hash rings, availability monitor) -- the policy itself
    stays stateless and therefore shareable between balancers.
    """

    #: Routing-layer name advertised by the balancer (``balancer.routing``).
    routing = "custom"

    def select_replica(
        self, balancer: "SkyWalkerBalancer", request: Request, candidates: List[ReplicaServer]
    ) -> ReplicaServer:
        raise NotImplementedError

    def select_balancer(
        self,
        balancer: "SkyWalkerBalancer",
        request: Request,
        candidates: List["SkyWalkerBalancer"],
    ) -> "SkyWalkerBalancer":
        """Pick the remote peer to forward to; defaults to most free capacity."""
        return _most_free_capacity(balancer, candidates)

    #: Whether the balancer should maintain its prefix trees on the dispatch
    #: and forward paths (policies that never read them can skip the cost).
    maintains_prefix_trees = False


def _most_free_capacity(
    balancer: "SkyWalkerBalancer", candidates: List["SkyWalkerBalancer"]
) -> "SkyWalkerBalancer":
    """No affinity anywhere: prefer the peer with the most free capacity,
    breaking ties by proximity."""

    def free_capacity(peer: "SkyWalkerBalancer") -> tuple:
        probe = balancer.monitor.balancer_probes.get(peer.name)
        available = probe.num_available_replicas if probe else 0
        latency = balancer.network.topology.one_way(balancer.region, peer.region)
        return (-available, latency)

    return min(candidates, key=free_capacity)


# ----------------------------------------------------------------------
# the selection-policy registry
# ----------------------------------------------------------------------
_SELECTION_POLICIES = NameRegistry("routing policy", plural="policies")


def register_selection_policy(
    name: str, *, replace_existing: bool = False
) -> Callable[[SelectionPolicyFactory], SelectionPolicyFactory]:
    """Register a selection-policy factory under a routing-layer name.

    Same ``@register_*`` pattern as systems, pushing policies and routing
    constraints: decorate a class (or factory) and the name becomes valid
    as a balancer ``routing=...`` argument and for
    :func:`make_selection_policy`.
    """
    return _SELECTION_POLICIES.register(name, replace_existing=replace_existing)


def unregister_selection_policy(name: str) -> None:
    """Remove a registered policy (mainly for test cleanup)."""
    _SELECTION_POLICIES.unregister(name)


def registered_selection_policies() -> Tuple[str, ...]:
    """Every selection-policy name currently registered."""
    return _SELECTION_POLICIES.names()


@register_selection_policy("prefix_tree")
class PrefixTreeSelection(SelectionPolicy):
    """The full SkyWalker design: route to the best prefix match unless the
    match is weak or the preferred target is severely imbalanced (§3.2-3.3)."""

    routing = "prefix_tree"
    maintains_prefix_trees = True

    def select_replica(
        self, balancer: "SkyWalkerBalancer", request: Request, candidates: List[ReplicaServer]
    ) -> ReplicaServer:
        by_name = {replica.name: replica for replica in candidates}
        match = balancer.replica_trie.best_target(request.prompt_tokens, by_name.keys())
        if match.target is not None and match.hit_ratio >= balancer.prefix_match_threshold:
            preferred = by_name[match.target]
            if not balancer.severely_imbalanced(preferred, candidates):
                return preferred
        # Low prefix affinity (or a badly overloaded favourite): spread load
        # over the available replicas instead.
        return balancer.least_loaded(candidates)

    def select_balancer(
        self,
        balancer: "SkyWalkerBalancer",
        request: Request,
        candidates: List["SkyWalkerBalancer"],
    ) -> "SkyWalkerBalancer":
        by_name = {peer.name: peer for peer in candidates}
        match = balancer.snapshot_trie.best_target(request.prompt_tokens, by_name.keys())
        if match.target is not None and match.hit_ratio >= balancer.prefix_match_threshold:
            return by_name[match.target]
        return _most_free_capacity(balancer, candidates)


@register_selection_policy("consistent_hash")
class ConsistentHashSelection(SelectionPolicy):
    """SkyWalker-CH: two-layer consistent hashing on a workload identity key."""

    routing = "consistent_hash"

    def select_replica(
        self, balancer: "SkyWalkerBalancer", request: Request, candidates: List[ReplicaServer]
    ) -> ReplicaServer:
        by_name = {replica.name: replica for replica in candidates}
        chosen = balancer.replica_ring.lookup(balancer.hash_key_fn(request), by_name.keys())
        if chosen is not None:
            return by_name[chosen]
        return balancer.least_loaded(candidates)

    def select_balancer(
        self,
        balancer: "SkyWalkerBalancer",
        request: Request,
        candidates: List["SkyWalkerBalancer"],
    ) -> "SkyWalkerBalancer":
        by_name = {peer.name: peer for peer in candidates}
        chosen = balancer.balancer_ring.lookup(balancer.hash_key_fn(request), by_name.keys())
        if chosen is not None:
            return by_name[chosen]
        return _most_free_capacity(balancer, candidates)


def make_selection_policy(routing: str, **kwargs) -> SelectionPolicy:
    """Instantiate the registered policy for a routing-layer name."""
    return _SELECTION_POLICIES.make(routing, **kwargs)
