"""The analysis engine: module parsing, rule registry, suppressions.

The engine is deliberately stdlib-only (``ast`` + ``re``): it parses every
Python file once into a :class:`ModuleInfo` (source, tree, parent links, an
import-alias map and the ``# repro: allow(...)`` suppression table) and
hands the modules to every registered :class:`LintRule`.

Rules register through the same :class:`~repro._registry.NameRegistry`
machinery as every other plug-in point in this codebase -- the linter
dogfoods the registry contract it enforces.  A rule checks either single
modules (:meth:`LintRule.check_module`) or the whole project at once
(:meth:`LintRule.check_project`, e.g. cross-file duplicate registration
names).

Suppressions: a finding is dropped when the physical line it points at, or
the line directly above it, carries ``# repro: allow(<rule>)`` (several
rules may be listed, comma-separated).  Suppressed findings are still
counted in the report so a suppression-heavy file remains visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from .._registry import NameRegistry
from .findings import ERROR, Finding

__all__ = [
    "ModuleInfo",
    "ProjectInfo",
    "LintRule",
    "LintReport",
    "register_lint_rule",
    "registered_lint_rules",
    "default_rules",
    "iter_python_files",
    "parse_module",
    "lint_modules",
    "lint_paths",
    "lint_source",
]

#: Pseudo-rule name used for files the engine cannot parse at all.
SYNTAX_ERROR_RULE = "syntax-error"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([\w\-\s,]*?)\s*\)")


def _suppression_table(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """1-based line -> rule names allowed on (or just below) that line."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        if names:
            table[lineno] = names
    return table


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted origin for every import binding.

    ``import random`` maps ``random -> random``; ``import a.b as c`` maps
    ``c -> a.b``; ``from time import time as now`` maps ``now ->
    time.time``.  Relative imports keep their leading dots, so rules that
    match on the final segments work regardless of package depth.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                origin = f"{prefix}.{alias.name}" if prefix else alias.name
                imports[alias.asname or alias.name] = origin
    return imports


class ModuleInfo:
    """One parsed source file plus the per-file indexes the rules share."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.imports = _import_map(tree)
        self.suppressions = _suppression_table(self.lines)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[Tuple[ast.AST, ast.AST]]:
        """(parent, child) pairs climbing from ``node`` to the module."""
        child = node
        parent = self._parents.get(child)
        while parent is not None:
            yield parent, child
            child, parent = parent, self._parents.get(parent)

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Names resolve through the import map, so ``rnd.random`` with
        ``import random as rnd`` yields ``random.random``.  Unimported bare
        names resolve to themselves (how builtins like ``hash`` appear).
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def is_suppressed(self, finding: Finding) -> bool:
        for lineno in (finding.line, finding.line - 1):
            allowed = self.suppressions.get(lineno)
            if allowed and finding.rule in allowed:
                return True
        return False


@dataclass
class ProjectInfo:
    """Every successfully parsed module of one lint invocation."""

    modules: List[ModuleInfo] = field(default_factory=list)

    def by_relpath(self) -> Dict[str, ModuleInfo]:
        return {module.relpath: module for module in self.modules}


class LintRule:
    """Base class for every lint rule.

    Subclasses set :attr:`name` (kebab-case, also the suppression token),
    :attr:`severity`, :attr:`family` (``"determinism"`` or ``"registry"``)
    and :attr:`description`, then implement :meth:`check_module` and/or
    :meth:`check_project`.
    """

    name: str = ""
    severity: str = ERROR
    family: str = ""
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectInfo) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------
    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            severity=self.severity,
            message=message,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# the rule registry
# ----------------------------------------------------------------------
_RULES = NameRegistry("lint rule", plural="rules")


def register_lint_rule(cls):
    """Class decorator registering a :class:`LintRule` under ``cls.name``."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"lint rule {cls!r} must define a non-empty name")
    _RULES.register(cls.name)(cls)
    return cls


def registered_lint_rules() -> Tuple[str, ...]:
    """Every registered rule name, sorted (built-ins load on first use)."""
    _ensure_builtins()
    return _RULES.names()


def default_rules() -> List[LintRule]:
    """One instance of every registered rule, in sorted-name order."""
    _ensure_builtins()
    return [_RULES.make(name) for name in _RULES.names()]


def rule_catalog() -> Dict[str, Dict[str, str]]:
    """Rule metadata keyed by name (for ``--list-rules`` and JSON output)."""
    return {
        rule.name: {
            "severity": rule.severity,
            "family": rule.family,
            "description": rule.description,
        }
        for rule in default_rules()
    }


def _ensure_builtins() -> None:
    """Import the modules that register the built-in rules (deferred so
    module import order never matters, mirroring the system registry)."""
    from . import determinism, registry_rules  # noqa: F401  (side effect)


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run (before any baseline is applied)."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (files pass through), sorted.

    Hidden directories and ``__pycache__`` are skipped.  A missing path is
    an error: a CI job silently linting nothing must not look green.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(part.startswith(".") or part == "__pycache__" for part in parts):
                    continue
                files.append(candidate)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    # De-duplicate while preserving the sorted-per-argument order.
    unique: List[Path] = []
    seen = set()
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _relpath(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def parse_module(
    source: str, relpath: str
) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    """Parse one file; returns ``(module, None)`` or ``(None, finding)``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return None, Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=exc.offset or 1,
            rule=SYNTAX_ERROR_RULE,
            severity=ERROR,
            message=f"file does not parse: {exc.msg}",
        )
    return ModuleInfo(relpath, source, tree), None


def lint_modules(
    modules: Sequence[ModuleInfo], rules: Optional[Sequence[LintRule]] = None
) -> LintReport:
    """Run ``rules`` (default: all registered) over parsed modules."""
    if rules is None:
        rules = default_rules()
    project = ProjectInfo(list(modules))
    raw: List[Finding] = []
    for rule in rules:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))
    by_path = project.by_relpath()
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed.append(finding)
        else:
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda f: f.sort_key)
    return LintReport(findings=findings, suppressed=suppressed, files=len(modules))


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    root: Optional[Union[str, Path]] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``root`` (default: the current working directory) is what finding paths
    -- and hence baseline keys -- are made relative to; run from the repo
    root so the committed baseline matches.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    modules: List[ModuleInfo] = []
    parse_failures: List[Finding] = []
    for path in iter_python_files(paths):
        relpath = _relpath(path, root_path)
        module, failure = parse_module(path.read_text(encoding="utf-8"), relpath)
        if failure is not None:
            parse_failures.append(failure)
        else:
            assert module is not None
            modules.append(module)
    report = lint_modules(modules, rules)
    report.findings = sorted(
        report.findings + parse_failures, key=lambda f: f.sort_key
    )
    report.files += len(parse_failures)
    return report


def lint_source(
    source: str,
    path: str = "<snippet>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory source string (tests, doc snippets, REPL).

    Runs the same rules as :func:`lint_paths`, with ``path`` standing in
    for the file location (path-scoped rules such as ``environ-read`` key
    off it).
    """
    module, failure = parse_module(source, path)
    if failure is not None:
        return [failure]
    assert module is not None
    return lint_modules([module], rules).findings
