"""Grandfathered-finding baseline: the shrink-only ratchet.

The committed ``.repro-lint-baseline.json`` maps line-independent finding
keys (``path::rule::message``) to occurrence counts.  CI fails on any
finding not covered by the baseline ("new"), and the baseline unit test
fails on any baseline entry no longer matched by a real finding ("stale"),
so the file can only ever shrink -- fix a grandfathered finding and the
test forces you to delete its entry.

Matching is deterministic: findings sharing a key are sorted by line and
the first ``count`` occurrences are the baselined ones; any excess is new.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "baseline_from_findings",
    "split_findings",
]

BASELINE_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Key -> count from a baseline file; missing file means empty."""
    file_path = Path(path)
    if not file_path.exists():
        return {}
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"malformed baseline file: {file_path}")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {file_path} has version {version!r}; this tool "
            f"reads version {BASELINE_VERSION}"
        )
    findings = payload["findings"]
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline file: {file_path}")
    out: Dict[str, int] = {}
    for key, count in findings.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise ValueError(f"malformed baseline entry {key!r}: {count!r}")
        out[key] = count
    return out


def save_baseline(path: Union[str, Path], baseline: Dict[str, int]) -> None:
    """Write a baseline file (sorted keys, stable formatting, no churn)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(baseline.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def baseline_from_findings(findings: Sequence[Finding]) -> Dict[str, int]:
    """The baseline that would grandfather exactly ``findings``."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    return counts


def split_findings(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Partition findings against a baseline.

    Returns ``(new, baselined, stale_keys)``: findings the baseline does
    not cover, findings it grandfathers, and baseline keys with a higher
    count than reality (including keys matching nothing at all) -- the
    shrink signal.
    """
    by_key: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_key.setdefault(finding.baseline_key, []).append(finding)

    new: List[Finding] = []
    baselined: List[Finding] = []
    for key, group in by_key.items():
        group.sort(key=lambda f: f.sort_key)
        allowance = baseline.get(key, 0)
        baselined.extend(group[:allowance])
        new.extend(group[allowance:])

    stale = sorted(
        key
        for key, allowance in baseline.items()
        if allowance > len(by_key.get(key, []))
    )
    new.sort(key=lambda f: f.sort_key)
    baselined.sort(key=lambda f: f.sort_key)
    return new, baselined, stale
