"""Determinism rules: the hazards that break bit-identical replay.

Every result in this repo is defended by bit-identity tests (golden traces,
serial ``==`` ``workers=N``, committed figure artifacts), and each rule here
encodes one way that contract has been -- or could be -- broken silently:

``unseeded-random``
    Module-level :mod:`random` functions draw from the process-global RNG,
    whose state depends on everything that ran before; ``random.Random()``
    with no seed is seeded from the OS.  Simulation code must thread an
    explicitly seeded ``random.Random(seed)``.
``wall-clock``
    ``time.time()`` / ``datetime.now()`` read the host clock; two runs of
    the same seed then diverge.  ``time.perf_counter()`` is allowed -- the
    house style uses it for wall-clock *telemetry* that is excluded from
    result identity (``RunMetrics.wall_clock_s``).
``unsorted-set-iteration``
    Set iteration order follows the per-process string-hash salt.  Feeding
    a set into an order-sensitive sink (``for``, ``list()``, ``tuple()``,
    ``enumerate()``, ``iter()``, ``.join()``, non-set comprehensions)
    without ``sorted()`` makes results differ across processes -- the
    exact hazard class behind PR 2's salted workload seeds.  Order-neutral
    consumers (``sorted``/``min``/``max``/``sum``/``len``/``any``/``all``/
    set-to-set operations) are fine.
``builtin-hash``
    Builtin ``hash()`` on ``str``/``bytes`` is salted per process
    (PYTHONHASHSEED); the house rule is ``zlib.crc32`` for stable hashing
    (see the wildchat/skewed workload builders).
``id-ordering``
    ``id()`` values are allocation addresses: using them as a sort key or
    comparing them for order is nondeterministic across runs.  Using
    ``id()`` as a *dict/set key* for object identity is fine and common.
``environ-read``
    ``os.environ`` reads make behaviour depend on ambient shell state.
    They are the sanctioned knob surface in ``experiments/`` and
    ``benchmarks/`` (the ``REPRO_BENCH_*`` family) and forbidden in the
    simulation core.
``fault-applier-rng``
    Fault appliers (functions decorated with ``@register_fault(...)``)
    must not draw randomness from the global :mod:`random` module or from
    another component's RNG stream (``something.rng`` / ``something._rng``)
    -- either breaks the rule that stochastic fault timing lives in a
    process-owned seeded ``random.Random`` compiled *before* the run
    (``RenewalFaultProcess``), and stealing a component's stream perturbs
    the draws fault-free traffic would have made.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from .engine import LintRule, ModuleInfo, register_lint_rule
from .findings import ERROR, Finding, WARNING

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "UnsortedSetIterationRule",
    "BuiltinHashRule",
    "IdOrderingRule",
    "EnvironReadRule",
    "FaultApplierRngRule",
]

#: random-module functions that consume the hidden process-global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_builtin_name(module: ModuleInfo, node: ast.AST, name: str) -> bool:
    """Is ``node`` the builtin ``name`` (not shadowed by an import)?"""
    return (
        isinstance(node, ast.Name)
        and node.id == name
        and name not in module.imports
    )


@register_lint_rule
class UnseededRandomRule(LintRule):
    name = "unseeded-random"
    severity = ERROR
    family = "determinism"
    description = (
        "module-level random.* calls and seedless random.Random() use the "
        "process-global RNG; thread an explicit random.Random(seed)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.qualname(node.func)
            if qual is None or not qual.startswith("random."):
                continue
            func = qual[len("random."):]
            if func == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed is OS-seeded; pass an "
                    "explicit seed",
                )
            elif func in _GLOBAL_RNG_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"random.{func}() draws from the process-global RNG; "
                    "thread a seeded random.Random through instead",
                )


@register_lint_rule
class WallClockRule(LintRule):
    name = "wall-clock"
    severity = ERROR
    family = "determinism"
    description = (
        "time.time()/datetime.now() read the host clock; simulation code "
        "must use the simulated clock (time.perf_counter is allowed for "
        "telemetry excluded from result identity)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.qualname(node.func)
            if qual in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{qual}() reads the host clock; use the simulation "
                    "clock (env.now) or perf_counter-based telemetry",
                )


@register_lint_rule
class BuiltinHashRule(LintRule):
    name = "builtin-hash"
    severity = ERROR
    family = "determinism"
    description = (
        "builtin hash() is salted per process (PYTHONHASHSEED); use "
        "zlib.crc32 for stable hashing"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_builtin_name(
                module, node.func, "hash"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is salted per process; derive stable "
                    "values with zlib.crc32 (the house rule)",
                )


@register_lint_rule
class IdOrderingRule(LintRule):
    name = "id-ordering"
    severity = ERROR
    family = "determinism"
    description = (
        "id() values are allocation addresses; ordering by them is "
        "nondeterministic (identity keying in dicts/sets is fine)"
    )

    _ORDER_FUNCS = frozenset({"sorted", "min", "max"})

    def _key_is_id(self, module: ModuleInfo, value: ast.AST) -> bool:
        if _is_builtin_name(module, value, "id"):
            return True
        if isinstance(value, ast.Lambda) and isinstance(value.body, ast.Call):
            return _is_builtin_name(module, value.body.func, "id")
        return False

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qual = module.qualname(node.func)
                is_order_call = qual in self._ORDER_FUNCS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if is_order_call:
                    for keyword in node.keywords:
                        if keyword.arg == "key" and self._key_is_id(
                            module, keyword.value
                        ):
                            yield self.finding(
                                module,
                                node,
                                "ordering by id() depends on allocation "
                                "addresses; sort by a stable key",
                            )
            elif isinstance(node, ast.Compare):
                ordered_ops = any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                )
                if not ordered_ops:
                    continue
                sides = [node.left, *node.comparators]
                if any(
                    isinstance(side, ast.Call)
                    and _is_builtin_name(module, side.func, "id")
                    for side in sides
                ):
                    yield self.finding(
                        module,
                        node,
                        "comparing id() values orders by allocation "
                        "address; compare a stable key",
                    )


@register_lint_rule
class EnvironReadRule(LintRule):
    name = "environ-read"
    severity = WARNING
    family = "determinism"
    description = (
        "os.environ reads outside experiments/ and benchmarks/ make core "
        "behaviour depend on ambient shell state"
    )

    #: Path components under which env knobs are the sanctioned interface.
    _ALLOWED_PARTS = frozenset({"experiments", "benchmarks", "scripts"})

    def _allowed_path(self, relpath: str) -> bool:
        return bool(self._ALLOWED_PARTS.intersection(relpath.split("/")))

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if self._allowed_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            qual: Optional[str] = None
            if isinstance(node, ast.Attribute):
                qual = module.qualname(node)
                if qual != "os.environ":
                    continue
                what = "os.environ"
            elif isinstance(node, ast.Call):
                qual = module.qualname(node.func)
                if qual != "os.getenv":
                    continue
                what = "os.getenv()"
            else:
                continue
            yield self.finding(
                module,
                node,
                f"{what} read outside experiments/ and benchmarks/; pass "
                "configuration explicitly so runs are self-describing",
            )


@register_lint_rule
class FaultApplierRngRule(LintRule):
    name = "fault-applier-rng"
    severity = ERROR
    family = "determinism"
    description = (
        "fault appliers must not draw from the global random module or "
        "another component's RNG stream; stochastic fault timing belongs "
        "in a process-owned seeded random.Random compiled before the run"
    )

    #: Attribute names under which components conventionally hold their
    #: own seeded stream -- drawing through one from an applier steals
    #: draws from that component.
    _STREAM_ATTRS = frozenset({"rng", "_rng", "_fault_rng"})

    def _is_fault_applier(self, module: ModuleInfo, node: ast.AST) -> bool:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            qual = module.qualname(target)
            if qual is not None and qual.split(".")[-1] == "register_fault":
                return True
        return False

    def _check_applier(self, module: ModuleInfo, func: ast.AST) -> Iterable[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            qual = module.qualname(node.func)
            if qual is not None and qual.startswith("random."):
                drawn = qual[len("random."):]
                if drawn in _GLOBAL_RNG_FUNCS:
                    yield self.finding(
                        module,
                        node,
                        f"fault applier draws random.{drawn}() from the "
                        "process-global RNG; compile stochastic timing into "
                        "the schedule (RenewalFaultProcess) or own a seeded "
                        "random.Random",
                    )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _GLOBAL_RNG_FUNCS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in self._STREAM_ATTRS
            ):
                yield self.finding(
                    module,
                    node,
                    "fault applier draws from another component's RNG "
                    f"stream (.{node.func.value.attr}); that perturbs the "
                    "draws fault-free traffic would have made -- own a "
                    "seeded random.Random instead",
                )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if self._is_fault_applier(module, node):
                yield from self._check_applier(module, node)


@register_lint_rule
class UnsortedSetIterationRule(LintRule):
    name = "unsorted-set-iteration"
    severity = ERROR
    family = "determinism"
    description = (
        "iterating a set into an order-sensitive sink without sorted() "
        "leaks the per-process hash salt into results"
    )

    #: Call targets whose result does not depend on argument order.
    _ORDER_NEUTRAL = frozenset(
        {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
    )
    #: Call targets that materialise their argument's iteration order.
    _ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter"})
    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference"}
    )
    _SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    # -- what syntactically *is* a set? ---------------------------------
    def _is_set_expr(self, module: ModuleInfo, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            qual = module.qualname(node.func)
            if qual in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SET_METHODS
                and self._is_set_expr(module, node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_BINOPS):
            return self._is_set_expr(module, node.left) or self._is_set_expr(
                module, node.right
            )
        return False

    # -- is this use wrapped by an order-neutral consumer? ---------------
    def _order_neutralised(self, module: ModuleInfo, node: ast.AST) -> bool:
        for parent, child in module.ancestors(node):
            if isinstance(parent, ast.stmt):
                return False
            if isinstance(parent, ast.Call):
                qual = module.qualname(parent.func)
                in_args = child in parent.args or any(
                    kw.value is child for kw in parent.keywords
                )
                if qual in self._ORDER_NEUTRAL and in_args:
                    return True
        return False

    def _flag(self, module: ModuleInfo, node: ast.AST, sink: str) -> Finding:
        return self.finding(
            module,
            node,
            f"set iteration order is salted per process; wrap in sorted() "
            f"before feeding {sink}",
        )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and self._is_set_expr(module, node.iter):
                yield self._flag(module, node.iter, "a for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # A SetComp over a set is set-to-set: still unordered, fine.
                for generator in node.generators:
                    if self._is_set_expr(module, generator.iter) and not (
                        self._order_neutralised(module, node)
                    ):
                        yield self._flag(module, generator.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                qual = module.qualname(node.func)
                target: Optional[str] = None
                if qual in self._ORDER_SINKS:
                    target = f"{qual}()"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    target = "str.join()"
                if target is None or not node.args:
                    continue
                if self._is_set_expr(module, node.args[0]) and not (
                    self._order_neutralised(module, node)
                ):
                    yield self._flag(module, node.args[0], target)
            elif isinstance(node, ast.Starred) and self._is_set_expr(
                module, node.value
            ):
                parent = module.parent(node)
                if isinstance(parent, (ast.List, ast.Tuple, ast.Call)):
                    yield self._flag(module, node.value, "an unpacking")
