"""``python -m repro.lint``: the command-line front end.

Exit codes: 0 clean (every finding baselined or none at all), 1 at least
one non-baselined finding (or stale baseline entries under ``--strict``),
2 usage/environment error (missing path, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import (
    BASELINE_VERSION,
    baseline_from_findings,
    load_baseline,
    save_baseline,
    split_findings,
)
from .engine import LintReport, lint_paths, registered_lint_rules, rule_catalog
from .findings import Finding

__all__ = ["main", "build_parser", "report_payload"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Schema version of the JSON report (independent of the baseline file).
REPORT_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & registry static analysis for this repository. "
            "Lints the given files/directories and fails on any finding "
            "not grandfathered by the baseline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline JSON of grandfathered findings (omit for none)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write a baseline grandfathering every current finding, then exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--json-report",
        metavar="FILE",
        default=None,
        help="additionally write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="directory finding paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def report_payload(
    report: LintReport,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[str],
) -> Dict[str, object]:
    """The JSON report structure (stable schema, version-stamped)."""
    baselined_keys = {id(f) for f in baselined}

    def entry(finding: Finding) -> Dict[str, object]:
        payload = finding.to_dict()
        payload["baselined"] = id(finding) in baselined_keys
        return payload

    ordered = sorted(list(new) + list(baselined), key=lambda f: f.sort_key)
    return {
        "version": REPORT_VERSION,
        "baseline_version": BASELINE_VERSION,
        "summary": {
            "files": report.files,
            "findings": len(ordered),
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
            "stale_baseline_keys": len(stale),
            "by_rule": report.counts_by_rule,
        },
        "findings": [entry(finding) for finding in ordered],
        "stale_baseline_keys": list(stale),
        "rules": rule_catalog(),
    }


def _print_text(
    report: LintReport,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[str],
    out,
) -> None:
    for finding in new:
        print(finding.format(), file=out)
    if stale:
        print(file=out)
        print(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (fixed findings -- "
            "delete them from the baseline):",
            file=out,
        )
        for key in stale:
            print(f"  {key}", file=out)
    print(file=out)
    print(
        f"{report.files} files, {len(new)} new finding(s), "
        f"{len(baselined)} baselined, {len(report.suppressed)} suppressed",
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = sys.stdout if out is None else out
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalog = rule_catalog()
        if args.format == "json":
            print(json.dumps(catalog, indent=2), file=out)
        else:
            width = max(len(name) for name in registered_lint_rules())
            for name, meta in catalog.items():
                print(
                    f"{name:<{width}}  [{meta['severity']}] "
                    f"({meta['family']}) {meta['description']}",
                    file=out,
                )
        return EXIT_CLEAN

    try:
        report = lint_paths(args.paths, root=args.root)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        save_baseline(args.write_baseline, baseline_from_findings(report.findings))
        print(
            f"wrote baseline for {len(report.findings)} finding(s) to "
            f"{args.write_baseline}",
            file=out,
        )
        return EXIT_CLEAN

    baseline: Dict[str, int] = {}
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    new, baselined, stale = split_findings(report.findings, baseline)

    payload = report_payload(report, new, baselined, stale)
    if args.json_report:
        Path(args.json_report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(payload, indent=2), file=out)
    else:
        _print_text(report, new, baselined, stale, out)

    if new or (args.strict and stale):
        return EXIT_FINDINGS
    return EXIT_CLEAN
