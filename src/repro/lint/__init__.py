"""repro.lint: determinism & registry static analysis for this codebase.

A stdlib-``ast`` lint pass that turns the repository's reproducibility
contract (see ``docs/DETERMINISM.md``) into a CI gate.  Two rule families:

* **determinism** -- unseeded global RNG, wall-clock reads, salted builtin
  ``hash()`` (the house rule is ``zlib.crc32``), ``id()``-based ordering,
  iteration over set expressions feeding order-sensitive sinks, and
  ``os.environ`` reads outside the experiment/benchmark layers.
* **registry** -- spawn-safety of the plug-in registries: module-level
  factories only, frozen picklable spec dataclasses, unique names per
  registry family, registrations executed at import time.

Run ``python -m repro.lint src/ --baseline .repro-lint-baseline.json`` from
the repo root; suppress an individual finding with a
``# repro: allow(<rule>)`` comment on (or directly above) the line.
"""

from .baseline import (
    BASELINE_VERSION,
    baseline_from_findings,
    load_baseline,
    save_baseline,
    split_findings,
)
from .cli import main
from .engine import (
    LintReport,
    LintRule,
    ModuleInfo,
    ProjectInfo,
    default_rules,
    lint_paths,
    lint_source,
    register_lint_rule,
    registered_lint_rules,
    rule_catalog,
)
from .findings import ERROR, SEVERITIES, WARNING, Finding

__all__ = [
    "ERROR",
    "WARNING",
    "SEVERITIES",
    "Finding",
    "LintRule",
    "LintReport",
    "ModuleInfo",
    "ProjectInfo",
    "register_lint_rule",
    "registered_lint_rules",
    "default_rules",
    "rule_catalog",
    "lint_paths",
    "lint_source",
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "baseline_from_findings",
    "split_findings",
    "main",
]
