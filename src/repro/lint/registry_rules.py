"""Registry / spawn-safety rules: keep every plug-in point worker-safe.

Sweeps ship cells to worker processes as *data*: typed frozen specs that
carry registered names, resolved against the registries inside the worker.
On spawn/forkserver platforms the worker bootstrap re-imports every module
that registered a factory (:func:`repro.experiments.sweep.plugin_modules`).
That contract only holds when:

``registry-factory-module-level``
    Registered factories are module-level ``def``/``class`` objects.  A
    lambda or closure has no importable identity: it cannot be pickled by
    reference, and a spawn re-import will not recreate the same object.
``registry-frozen-spec``
    Config/spec dataclasses handed to a registry (``config=``/``spec=``,
    or subclasses of a ``*Spec``/``*Config`` base) are ``frozen=True`` and
    carry only picklable, value-semantics field types (scalars, tuples,
    frozensets, optionals, nested specs).
``registry-duplicate-name``
    A name is registered at most once per registry family (a second
    registration raises at import in whatever import order reveals it --
    this rule catches it before any import runs).
``registry-import-safe``
    Registrations execute at module import: a ``register_*`` call inside a
    function body or under ``if __name__ == "__main__":`` never re-runs
    when the worker bootstrap re-imports the module, so the plugin silently
    vanishes under spawn.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import LintRule, ModuleInfo, ProjectInfo, register_lint_rule
from .findings import ERROR, Finding

__all__ = [
    "ModuleLevelFactoryRule",
    "FrozenSpecRule",
    "DuplicateRegistrationRule",
    "ImportSafeRegistrationRule",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def register_family(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    """The registry family of a ``register_*(...)``-style call, or ``None``.

    Matches calls whose resolved final segment starts with ``register_``
    (``register_system``, ``repro.faults.register_fault``, ...) and
    ``<registry>.register(...)`` method calls.  The family string groups
    registrations that share one namespace.
    """
    if not isinstance(node, ast.Call):
        return None
    qual = module.qualname(node.func)
    if qual is None:
        return None
    head, _, last = qual.rpartition(".")
    if last.startswith("register_"):
        return last
    if last == "register" and head:
        # REGISTRY.register("name", ...): family is the registry object.
        return f"{head.rpartition('.')[2]}.register"
    return None


def literal_name(node: ast.Call) -> Optional[str]:
    """The literal string registered by this call, if statically known."""
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def has_true_keyword(node: ast.Call, name: str) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _is_register_decorator(module: ModuleInfo, decorator: ast.AST) -> bool:
    """Decorator forms: ``@register_x("name")`` or bare ``@register_x``."""
    if register_family(module, decorator) is not None:
        return True
    qual = module.qualname(decorator)
    return qual is not None and qual.rpartition(".")[2].startswith("register_")


def _dunder_main_guard(node: ast.AST) -> bool:
    """Is ``node`` an ``if __name__ == "__main__":`` statement?"""
    if not isinstance(node, ast.If) or not isinstance(node.test, ast.Compare):
        return False
    test = node.test
    sides = [test.left, *test.comparators]
    has_name = any(isinstance(s, ast.Name) and s.id == "__name__" for s in sides)
    has_main = any(
        isinstance(s, ast.Constant) and s.value == "__main__" for s in sides
    )
    return has_name and has_main


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@register_lint_rule
class ModuleLevelFactoryRule(LintRule):
    name = "registry-factory-module-level"
    severity = ERROR
    family = "registry"
    description = (
        "registered factories must be module-level defs/classes; lambdas "
        "and closures have no importable identity and break pickling and "
        "spawn re-import"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not any(
                    _is_register_decorator(module, dec) for dec in node.decorator_list
                ):
                    continue
                nested_in = self._enclosing_function(module, node)
                if nested_in is not None:
                    yield self.finding(
                        module,
                        node,
                        f"registered factory {node.name!r} is defined inside "
                        f"{nested_in!r}; factories must be module-level so "
                        "they pickle by reference and survive spawn "
                        "re-import",
                    )
            elif isinstance(node, ast.Call):
                # register_x("name")(lambda ...): the applied-call form.
                if register_family(module, node.func) is None:
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            module,
                            arg,
                            "lambda registered as a factory; use a "
                            "module-level def so the factory has an "
                            "importable identity",
                        )

    @staticmethod
    def _enclosing_function(
        module: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        for parent, _child in module.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return getattr(parent, "name", "<lambda>")
        return None


#: Field annotations accepted inside a registered spec dataclass.
_PICKLABLE_ATOMS = frozenset(
    {"str", "int", "float", "bool", "bytes", "None", "NoneType"}
)
_PICKLABLE_CONTAINERS = frozenset(
    {
        "Tuple", "tuple", "FrozenSet", "frozenset", "Optional", "Union",
        "Sequence", "Literal",
    }
)
_SPEC_SUFFIXES = ("Spec", "Config")


def _annotation_ok(module: ModuleInfo, node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        # String annotations and the `None` in Optional-style unions.
        if node.value is None or isinstance(node.value, (str, int, bool)):
            return True
        return node.value is Ellipsis
    if isinstance(node, (ast.Name, ast.Attribute)):
        qual = module.qualname(node) or ""
        last = qual.rpartition(".")[2]
        if last in _PICKLABLE_ATOMS or last in _PICKLABLE_CONTAINERS:
            return True
        return last.endswith(_SPEC_SUFFIXES)
    if isinstance(node, ast.Subscript):
        base_ok = False
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            base = (module.qualname(node.value) or "").rpartition(".")[2]
            base_ok = base in _PICKLABLE_CONTAINERS
        if not base_ok:
            return False
        inner = node.slice
        # py38's ast.Index disappeared in 3.9; this repo targets >=3.9.
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_ok(module, element) for element in elements)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: str | None.
        return _annotation_ok(module, node.left) and _annotation_ok(
            module, node.right
        )
    return False


@register_lint_rule
class FrozenSpecRule(LintRule):
    name = "registry-frozen-spec"
    severity = ERROR
    family = "registry"
    description = (
        "registered config/spec dataclasses must be frozen=True with "
        "picklable value-typed fields so specs ship to sweep workers "
        "unchanged"
    )

    def _registered_config_names(self, module: ModuleInfo) -> Set[str]:
        """Classes handed to a registry via ``config=`` / ``spec=``."""
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if register_family(module, node) is None:
                continue
            assert isinstance(node, ast.Call)
            for keyword in node.keywords:
                if keyword.arg in ("config", "spec"):
                    if isinstance(keyword.value, ast.Name):
                        names.add(keyword.value.id)
                    elif isinstance(keyword.value, ast.Attribute):
                        names.add(keyword.value.attr)
        return names

    @staticmethod
    def _dataclass_decorator(
        module: ModuleInfo, cls: ast.ClassDef
    ) -> Tuple[Optional[ast.AST], bool]:
        """(decorator node or None, frozen=True present)."""
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            qual = module.qualname(target) or ""
            if qual.rpartition(".")[2] != "dataclass":
                continue
            frozen = isinstance(decorator, ast.Call) and has_true_keyword(
                decorator, "frozen"
            )
            return decorator, frozen
        return None, False

    def _is_spec_class(
        self, module: ModuleInfo, cls: ast.ClassDef, registered: Set[str]
    ) -> bool:
        if cls.name in registered:
            return True
        for base in cls.bases:
            qual = module.qualname(base) or ""
            if qual.rpartition(".")[2].endswith(_SPEC_SUFFIXES):
                return True
        return False

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        registered = self._registered_config_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_spec_class(module, node, registered):
                continue
            decorator, frozen = self._dataclass_decorator(module, node)
            if decorator is None:
                # Registered non-dataclass configs are legal only if some
                # ancestor supplies the dataclass machinery; subclasses of
                # frozen bases without new fields need no decorator.
                if node.name in registered and not node.bases:
                    yield self.finding(
                        module,
                        node,
                        f"registered config {node.name!r} is not a "
                        "dataclass; specs must be frozen dataclasses",
                    )
                continue
            if not frozen:
                yield self.finding(
                    module,
                    node,
                    f"spec dataclass {node.name!r} must be "
                    "@dataclass(frozen=True): specs are value objects "
                    "shared across sweep workers",
                )
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                annotation = stmt.annotation
                # ClassVar carries class metadata, not instance state.
                if (
                    isinstance(annotation, ast.Subscript)
                    and (module.qualname(annotation.value) or "").endswith("ClassVar")
                ):
                    continue
                if not _annotation_ok(module, annotation):
                    rendered = ast.dump(annotation)
                    try:
                        rendered = ast.unparse(annotation)
                    except AttributeError:  # pragma: no cover - py<3.9
                        pass
                    yield self.finding(
                        module,
                        stmt,
                        f"spec field {stmt.target.id!r} of {node.name!r} "
                        f"has non-picklable/mutable annotation "
                        f"{rendered!r}; use scalars, tuples, frozensets "
                        "or nested specs",
                    )


@register_lint_rule
class DuplicateRegistrationRule(LintRule):
    name = "registry-duplicate-name"
    severity = ERROR
    family = "registry"
    description = (
        "a registered name must be unique within its registry family "
        "(duplicates raise at import, in import-order-dependent places)"
    )

    def check_project(self, project: ProjectInfo) -> Iterable[Finding]:
        sites: Dict[Tuple[str, str], List[Tuple[ModuleInfo, ast.Call]]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                family = register_family(module, node)
                if family is None:
                    continue
                assert isinstance(node, ast.Call)
                name = literal_name(node)
                if name is None or has_true_keyword(node, "replace_existing"):
                    continue
                sites.setdefault((family, name.casefold()), []).append(
                    (module, node)
                )
        for (family, name), occurrences in sorted(sites.items()):
            if len(occurrences) < 2:
                continue
            occurrences.sort(key=lambda pair: (pair[0].relpath, pair[1].lineno))
            first_module, first_node = occurrences[0]
            for module, node in occurrences[1:]:
                yield self.finding(
                    module,
                    node,
                    f"name {name!r} registered twice in family "
                    f"{family!r} (first at "
                    f"{first_module.relpath}:{first_node.lineno})",
                )


@register_lint_rule
class ImportSafeRegistrationRule(LintRule):
    name = "registry-import-safe"
    severity = ERROR
    family = "registry"
    description = (
        "registrations must execute at module import so the spawn-mode "
        "worker bootstrap (plugin_modules re-import) reproduces them"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            family = register_family(module, node)
            if family is None:
                continue
            assert isinstance(node, ast.Call)
            if literal_name(node) is None:
                # Dynamic names are the registry *implementation* (the
                # public register_x wrappers) or test scaffolding; the
                # static uniqueness/placement contract applies to concrete
                # registrations.
                continue
            where = self._non_import_context(module, node)
            if where is not None:
                yield self.finding(
                    module,
                    node,
                    f"registration of a {family} name happens {where}; it "
                    "will not re-run when a spawned worker re-imports the "
                    "module, so the plugin silently vanishes",
                )

    @staticmethod
    def _non_import_context(module: ModuleInfo, node: ast.AST) -> Optional[str]:
        for parent, child in module.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A decorator on a def executes at import time even though
                # its AST parent is the def itself; keep climbing.
                in_decorators = any(
                    child is d or any(child is sub for sub in ast.walk(d))
                    for d in parent.decorator_list
                )
                if in_decorators:
                    continue
                return f"inside function {parent.name!r}"
            if isinstance(parent, ast.Lambda):
                return "inside a lambda"
            if _dunder_main_guard(parent):
                return 'under if __name__ == "__main__"'
        return None
