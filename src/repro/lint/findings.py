"""Finding objects emitted by the lint rules.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen data so reports sort, compare and serialise trivially; the
:attr:`Finding.baseline_key` deliberately excludes the line number so that
grandfathered findings keep matching the committed baseline while unrelated
edits shift code up and down the file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ERROR", "WARNING", "SEVERITIES", "Finding"]

#: Per-rule severities.  Both gate the CI lint job (a non-baselined finding
#: of either severity fails the run); the split exists so reports can rank
#: hard determinism breaks above style-of-the-house advisories.
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Path as linted (repo-relative POSIX form for on-disk files).
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 1-based column of the offending node.
    col: int
    #: Registered rule name (also the token for ``# repro: allow(<rule>)``).
    rule: str
    severity: str
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.path}::{self.rule}::{self.message}"

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def format(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: [{self.severity}] {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
