"""Multi-seed aggregation: mean, stdev and 95% confidence intervals.

A single simulation run is a point estimate; the paper's claims (Fig. 8
throughput gains, Fig. 9 pushing ablations, Fig. 10 region-local latency)
only become *statistical* statements when every (workload, system) cell is
repeated across seeds.  This module turns the per-seed
:class:`~repro.metrics.collector.RunMetrics` of such a repetition into

* :class:`Statistic` -- mean, sample standard deviation and the half-width
  of the 95% confidence interval of one scalar metric,
* :class:`AggregateMetrics` -- all aggregated scalars of one
  (workload, system) cell, and
* :class:`SweepReport` -- a text-table / JSON report over every cell of a
  sweep.

Everything is stdlib-only.  The confidence interval uses the Student-t
distribution (the right choice for the small seed counts -- 3 to 10 --
these sweeps realistically run): ``ci95 = t_{0.975, n-1} * stdev /
sqrt(n)``.  Critical values come from an embedded table
(:func:`student_t_critical`); between tabulated degrees of freedom the
next *lower* entry is used, which rounds the interval conservatively wide.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (collector imports nothing from here)
    from .collector import RunMetrics

__all__ = [
    "AGGREGATED_METRICS",
    "RESILIENCE_AGGREGATED_METRICS",
    "AggregateMetrics",
    "Statistic",
    "SweepReport",
    "aggregate_cell",
    "paired_difference",
    "student_t_critical",
]

#: Two-sided 95% Student-t critical values, ``t_{0.975, df}``.  df -> value.
_T_TABLE_95: Tuple[Tuple[int, float], ...] = (
    (1, 12.706), (2, 4.303), (3, 3.182), (4, 2.776), (5, 2.571),
    (6, 2.447), (7, 2.365), (8, 2.306), (9, 2.262), (10, 2.228),
    (11, 2.201), (12, 2.179), (13, 2.160), (14, 2.145), (15, 2.131),
    (16, 2.120), (17, 2.110), (18, 2.101), (19, 2.093), (20, 2.086),
    (21, 2.080), (22, 2.074), (23, 2.069), (24, 2.064), (25, 2.060),
    (26, 2.056), (27, 2.052), (28, 2.048), (29, 2.045), (30, 2.042),
    (40, 2.021), (60, 2.000), (120, 1.980),
)


def student_t_critical(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Exact at tabulated df; elsewhere the next *lower* tabulated df is used
    (its critical value is larger, so derived intervals err on the wide
    side) -- including beyond df=120, where 1.980 applies rather than the
    normal quantile 1.960, again the conservative choice.
    """
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    value = _T_TABLE_95[0][1]
    for table_df, critical in _T_TABLE_95:
        if table_df > df:
            break
        value = critical
    return value


@dataclass(frozen=True)
class Statistic:
    """Mean / spread / confidence summary of one scalar across seeds.

    ``stdev`` and ``ci95`` are ``None`` when fewer than two samples exist
    (a sample standard deviation is undefined for n=1) -- callers can rely
    on "is this None" to distinguish a real interval from a degenerate one.
    ``ci95`` is the *half-width*: the interval is ``mean +/- ci95``.
    """

    n: int
    mean: float
    stdev: Optional[float]
    ci95: Optional[float]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Statistic":
        values = [float(v) for v in samples]
        if not values:
            raise ValueError("cannot aggregate an empty sample set")
        mean = sum(values) / len(values)
        if len(values) < 2:
            return cls(n=1, mean=mean, stdev=None, ci95=None)
        stdev = statistics.stdev(values)
        half_width = student_t_critical(len(values) - 1) * stdev / math.sqrt(len(values))
        return cls(n=len(values), mean=mean, stdev=stdev, ci95=half_width)

    @classmethod
    def paired_diff(cls, a: Sequence[float], b: Sequence[float]) -> "Statistic":
        """Statistic of the per-index differences ``a[i] - b[i]``.

        The right interval for same-seed system-vs-system comparisons:
        both systems replay identical traffic under each seed, so pairing
        by seed cancels the between-seed workload variance that would
        inflate an unpaired interval.  A claim like "SkyWalker beats the
        gateway" holds at the 95% level when ``ci_low > 0``.
        """
        left = [float(v) for v in a]
        right = [float(v) for v in b]
        if len(left) != len(right):
            raise ValueError(
                f"paired samples must have equal lengths, got {len(left)} and {len(right)}"
            )
        if not left:
            raise ValueError("cannot aggregate an empty sample set")
        return cls.from_samples([x - y for x, y in zip(left, right)])

    @property
    def ci_low(self) -> Optional[float]:
        return None if self.ci95 is None else self.mean - self.ci95

    @property
    def ci_high(self) -> Optional[float]:
        return None if self.ci95 is None else self.mean + self.ci95

    def to_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "mean": self.mean,
            "stdev": self.stdev,
            "ci95": self.ci95,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }

    def __str__(self) -> str:
        if self.ci95 is None:
            return f"{self.mean:.3f}"
        return f"{self.mean:.3f}±{self.ci95:.3f}"


def _latency_field(summary_name: str, stat_name: str) -> Callable[["RunMetrics"], float]:
    def extract(metrics: "RunMetrics") -> float:
        return getattr(getattr(metrics, summary_name), stat_name)

    return extract


def _scalar_field(name: str) -> Callable[["RunMetrics"], float]:
    def extract(metrics: "RunMetrics") -> float:
        return float(getattr(metrics, name))

    return extract


#: The scalar metrics aggregated across seeds, in report order.  Latency
#: distributions contribute their headline percentiles (aggregating a full
#: box plot across seeds would hide which percentile the CI belongs to).
AGGREGATED_METRICS: Dict[str, Callable[["RunMetrics"], float]] = {
    "throughput_tokens_per_s": _scalar_field("throughput_tokens_per_s"),
    "output_tokens_per_s": _scalar_field("output_tokens_per_s"),
    "requests_per_s": _scalar_field("requests_per_s"),
    "num_completed": _scalar_field("num_completed"),
    "cache_hit_rate": _scalar_field("cache_hit_rate"),
    "cross_region_fraction": _scalar_field("cross_region_fraction"),
    "forwarded_fraction": _scalar_field("forwarded_fraction"),
    "replica_load_imbalance": _scalar_field("replica_load_imbalance"),
    "ttft_mean": _latency_field("ttft", "mean"),
    "ttft_p50": _latency_field("ttft", "p50"),
    "ttft_p90": _latency_field("ttft", "p90"),
    "e2e_p50": _latency_field("e2e_latency", "p50"),
    "e2e_p90": _latency_field("e2e_latency", "p90"),
    "queueing_p50": _latency_field("queueing_delay", "p50"),
    "queueing_p90": _latency_field("queueing_delay", "p90"),
}


def _resilience_field(name: str) -> Callable[["RunMetrics"], Optional[float]]:
    def extract(metrics: "RunMetrics") -> Optional[float]:
        resilience = metrics.resilience
        if resilience is None:
            return None
        value = getattr(resilience, name)
        return None if value is None else float(value)

    return extract


#: Resilience scalars aggregated across seeds *when present on every run of
#: the cell*: fault-free runs have no resilience record, and e.g. a
#: degraded-mode TTFT is undefined for a seed where no request was sent
#: while degraded.  Such cells simply omit the stat -- existing reports
#: over fault-free sweeps are unchanged.
RESILIENCE_AGGREGATED_METRICS: Dict[str, Callable[["RunMetrics"], Optional[float]]] = {
    "resilience_mean_ttr_s": _resilience_field("mean_time_to_recovery_s"),
    "resilience_max_ttr_s": _resilience_field("max_time_to_recovery_s"),
    "resilience_goodput_during_outage_tokens_per_s": _resilience_field(
        "goodput_during_outage_tokens_per_s"
    ),
    "resilience_ttft_p90_during_s": _resilience_field("ttft_p90_during_s"),
    "resilience_goodput_degraded_tokens_per_s": _resilience_field(
        "goodput_while_degraded_tokens_per_s"
    ),
    "resilience_ttft_p90_degraded_s": _resilience_field("ttft_p90_degraded_s"),
    "resilience_failed_requests": _resilience_field("failed_requests"),
}


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean/stdev/95% CI of every scalar metric of one (workload, system)
    cell, aggregated over its per-seed :class:`RunMetrics`."""

    system: str
    workload: str
    seeds: Tuple[int, ...]
    stats: Dict[str, Statistic]

    @classmethod
    def from_runs(
        cls, runs: Sequence["RunMetrics"], *, seeds: Optional[Sequence[int]] = None
    ) -> "AggregateMetrics":
        """Aggregate one cell's per-seed runs.

        Every run must describe the same (workload, system) cell.  ``seeds``
        defaults to the ``seed`` recorded on each run by the sweep executor
        (empty when any run predates seed recording).
        """
        if not runs:
            raise ValueError("cannot aggregate an empty run list")
        cells = {(m.workload, m.system) for m in runs}
        if len(cells) > 1:
            raise ValueError(
                f"runs span multiple (workload, system) cells: {sorted(cells)}; "
                "aggregate one cell at a time"
            )
        if seeds is None:
            recorded = [m.seed for m in runs]
            seeds = tuple(recorded) if all(s is not None for s in recorded) else ()
        elif len(tuple(seeds)) != len(runs):
            raise ValueError("seeds and runs must have matching lengths")
        stats = {
            name: Statistic.from_samples([extract(m) for m in runs])
            for name, extract in AGGREGATED_METRICS.items()
        }
        for name, extract in RESILIENCE_AGGREGATED_METRICS.items():
            samples = [extract(m) for m in runs]
            if all(value is not None for value in samples):
                stats[name] = Statistic.from_samples(samples)
        return cls(
            system=runs[0].system,
            workload=runs[0].workload,
            seeds=tuple(seeds),
            stats=stats,
        )

    @property
    def num_seeds(self) -> int:
        return next(iter(self.stats.values())).n if self.stats else 0

    def stat(self, metric: str) -> Statistic:
        return self.stats[metric]

    def mean(self, metric: str) -> float:
        return self.stats[metric].mean

    def ci95(self, metric: str) -> Optional[float]:
        return self.stats[metric].ci95

    def to_dict(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "workload": self.workload,
            "seeds": list(self.seeds),
            "num_seeds": self.num_seeds,
            "metrics": {name: stat.to_dict() for name, stat in self.stats.items()},
        }

    def format_row(self) -> str:
        """One human-readable aggregate row, mirroring
        :meth:`RunMetrics.format_row` with ``mean±ci95`` entries."""
        tput = self.stats["throughput_tokens_per_s"]
        ttft = self.stats["ttft_p50"]
        hit = self.stats["cache_hit_rate"]
        ci = (lambda s: s.ci95 if s.ci95 is not None else 0.0)
        return (
            f"{self.system:<16} {self.workload:<12} "
            f"tput={tput.mean:8.1f}±{ci(tput):6.1f} tok/s  "
            f"ttft p50={ttft.mean:6.3f}±{ci(ttft):5.3f}s  "
            f"hit={hit.mean * 100:5.1f}±{ci(hit) * 100:4.1f}%  "
            f"seeds={self.num_seeds}"
        )


def paired_difference(
    runs_a: Dict[int, "RunMetrics"],
    runs_b: Dict[int, "RunMetrics"],
    metric: str = "throughput_tokens_per_s",
) -> Statistic:
    """Per-seed paired difference of one scalar metric between two cells.

    ``runs_a`` / ``runs_b`` are seed -> :class:`RunMetrics` maps of two
    systems from the *same* sweep (e.g. ``SweepResult.runs_for(...)``),
    so each seed pairs two runs that saw identical traffic.  Returns the
    :class:`Statistic` of ``metric(a) - metric(b)`` across seeds; the
    speedup claim "a beats b" holds at the 95% level when ``ci_low > 0``.
    """
    if metric in AGGREGATED_METRICS:
        extract = AGGREGATED_METRICS[metric]
    elif metric in RESILIENCE_AGGREGATED_METRICS:
        extract = RESILIENCE_AGGREGATED_METRICS[metric]
    else:
        raise ValueError(
            f"unknown metric {metric!r}; aggregated metrics: "
            f"{tuple(AGGREGATED_METRICS) + tuple(RESILIENCE_AGGREGATED_METRICS)}"
        )
    if set(runs_a) != set(runs_b):
        raise ValueError(
            f"paired runs must cover the same seeds; got {sorted(runs_a)} "
            f"vs {sorted(runs_b)}"
        )
    if not runs_a:
        raise ValueError("cannot pair empty run sets")
    seeds = list(runs_a)
    samples_a = [extract(runs_a[seed]) for seed in seeds]
    samples_b = [extract(runs_b[seed]) for seed in seeds]
    missing = [s for s, a, b in zip(seeds, samples_a, samples_b) if a is None or b is None]
    if missing:
        raise ValueError(
            f"metric {metric!r} is undefined for seeds {sorted(missing)} "
            "(no resilience record, or an empty phase)"
        )
    return Statistic.paired_diff(samples_a, samples_b)


def aggregate_cell(
    per_seed: Optional[Dict[int, "RunMetrics"]], base_run: "RunMetrics"
) -> AggregateMetrics:
    """Aggregate one result cell: its per-seed runs when present, else a
    degenerate (n=1, no interval) aggregate of the single base run.

    The shared fallback behind every result object's ``aggregate()``
    accessor, so report code never special-cases single-seed sweeps.
    """
    if per_seed:
        return AggregateMetrics.from_runs(list(per_seed.values()), seeds=list(per_seed))
    return AggregateMetrics.from_runs([base_run], seeds=())


@dataclass
class SweepReport:
    """Report over every aggregated cell of a multi-seed sweep.

    Built by :meth:`SweepResult.report` (and the figure-level result
    objects); offers the two output shapes benchmarks need: an aligned text
    table for logs and a JSON document for committed artifacts.
    """

    cells: List[AggregateMetrics] = field(default_factory=list)

    SCHEMA = "repro-sweep-report/1"

    def add(self, aggregate: AggregateMetrics) -> None:
        self.cells.append(aggregate)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.SCHEMA,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format_table(self) -> str:
        """Aligned text table: one row per (workload, system) cell.

        A cross-seed time-to-recovery column appears when any cell carries
        the ``resilience_mean_ttr_s`` aggregate (faulted multi-seed
        sweeps); fault-free sweeps keep the historical columns exactly.
        """
        with_ttr = any("resilience_mean_ttr_s" in cell.stats for cell in self.cells)
        header = (
            f"  {'workload':<16}{'system':<18}{'seeds':>6}"
            f"{'tput tok/s':>18}{'ttft p50 (s)':>16}{'hit rate':>14}"
        )
        if with_ttr:
            header += f"{'ttr (s)':>16}"
        lines = [header]

        def fmt(stat: Statistic, scale: float = 1.0, digits: int = 1) -> str:
            if stat.ci95 is None:
                return f"{stat.mean * scale:.{digits}f}"
            return f"{stat.mean * scale:.{digits}f}±{stat.ci95 * scale:.{digits}f}"

        for cell in self.cells:
            row = (
                f"  {cell.workload:<16}{cell.system:<18}{cell.num_seeds:>6}"
                f"{fmt(cell.stat('throughput_tokens_per_s')):>18}"
                f"{fmt(cell.stat('ttft_p50'), digits=3):>16}"
                f"{fmt(cell.stat('cache_hit_rate'), scale=100.0):>13}%"
            )
            if with_ttr:
                ttr = cell.stats.get("resilience_mean_ttr_s")
                row += f"{fmt(ttr, digits=2):>16}" if ttr is not None else f"{'-':>16}"
            lines.append(row)
        return "\n".join(lines)
