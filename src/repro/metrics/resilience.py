"""Resilience metrics: what happened to service quality under faults.

When an experiment runs with a fault schedule, the plain throughput/latency
aggregates of :class:`~repro.metrics.collector.RunMetrics` hide the story
that matters: how much goodput survived *during* the outage, how long
recovery took, how many requests were stranded or lost.  This module
computes that story from the raw ingredients -- the completed requests,
the injector's outage windows and a handful of counters -- into a
:class:`ResilienceMetrics` record attached to ``RunMetrics.resilience``.

Phases are defined by the overall outage span (first injection to last
recovery) and requests are classified by their **send time**: a request
sent during the outage that only completes after recovery still tells an
"outage experience" story, which is exactly what the per-phase p90 TTFT
captures (the §4.2 experiment's before/during/after comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..workloads.request import Request
from .summary import percentile

__all__ = ["ResilienceMetrics", "collect_resilience_metrics"]


@dataclass
class ResilienceMetrics:
    """Fault-run outcome of one experiment.

    ``None`` values mean "not applicable" (no outage window, or an empty
    phase) rather than zero, so report code can distinguish "perfect
    recovery" from "nothing ever failed".
    """

    #: Fault events injected (including recovery-type events).
    num_fault_events: int
    #: Balancer failovers handled (controller failovers when a controller
    #: ran, injected balancer failures otherwise).
    failover_count: int
    #: ``(start, end)`` of each outage, clipped to the run duration.
    outage_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Requests pulled out of dead balancers and re-routed.
    stranded_requests: int = 0
    #: Requests still queued/parked at balancers when the run ended.
    parked_requests: int = 0
    #: Requests aborted by crashes (reported to clients as failures).
    failed_requests: int = 0
    #: Messages dropped by network partitions.
    dropped_messages: int = 0
    #: Mean / max seconds from injection to recovery over closed windows.
    mean_time_to_recovery_s: Optional[float] = None
    max_time_to_recovery_s: Optional[float] = None
    #: Served tokens per second of requests *finishing* inside the outage
    #: span -- the "goodput during outage" of the §4.2 experiment.
    goodput_during_outage_tokens_per_s: Optional[float] = None
    #: Completed requests by send-time phase.
    completed_before: int = 0
    completed_during: int = 0
    completed_after: int = 0
    #: Client-perceived p90 TTFT by send-time phase.
    ttft_p90_before_s: Optional[float] = None
    ttft_p90_during_s: Optional[float] = None
    ttft_p90_after_s: Optional[float] = None
    #: ``(start, end)`` of each *gray* (degraded, slow-but-alive) window,
    #: clipped to the run.  Kept separate from outage windows: a degraded
    #: system still serves, so these windows report goodput and tail
    #: latency rather than downtime.
    degraded_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Completed requests sent while some degrade was active.
    completed_degraded: int = 0
    #: Served tokens per second of requests finishing inside degraded
    #: windows (degraded-mode goodput).
    goodput_while_degraded_tokens_per_s: Optional[float] = None
    #: Client-perceived p90 TTFT of requests sent while degraded.
    ttft_p90_degraded_s: Optional[float] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "num_fault_events": self.num_fault_events,
            "failover_count": self.failover_count,
            "outage_windows": [list(window) for window in self.outage_windows],
            "stranded_requests": self.stranded_requests,
            "parked_requests": self.parked_requests,
            "failed_requests": self.failed_requests,
            "dropped_messages": self.dropped_messages,
            "mean_time_to_recovery_s": self.mean_time_to_recovery_s,
            "max_time_to_recovery_s": self.max_time_to_recovery_s,
            "goodput_during_outage_tokens_per_s": self.goodput_during_outage_tokens_per_s,
            "completed_before": self.completed_before,
            "completed_during": self.completed_during,
            "completed_after": self.completed_after,
            "ttft_p90_before_s": self.ttft_p90_before_s,
            "ttft_p90_during_s": self.ttft_p90_during_s,
            "ttft_p90_after_s": self.ttft_p90_after_s,
            "degraded_windows": [list(window) for window in self.degraded_windows],
            "completed_degraded": self.completed_degraded,
            "goodput_while_degraded_tokens_per_s": self.goodput_while_degraded_tokens_per_s,
            "ttft_p90_degraded_s": self.ttft_p90_degraded_s,
        }

    def format_row(self) -> str:
        """One human-readable resilience row (used by the bench harness)."""

        def opt(value: Optional[float], fmt: str = "6.3f") -> str:
            return "     -" if value is None else format(value, fmt)

        row = (
            f"failovers={self.failover_count}  "
            f"ttr={opt(self.mean_time_to_recovery_s, '5.1f')}s  "
            f"outage goodput={opt(self.goodput_during_outage_tokens_per_s, '8.1f')} tok/s  "
            f"ttft p90 before/during/after="
            f"{opt(self.ttft_p90_before_s)}/{opt(self.ttft_p90_during_s)}/"
            f"{opt(self.ttft_p90_after_s)}s  "
            f"stranded={self.stranded_requests} parked={self.parked_requests} "
            f"failed={self.failed_requests}"
        )
        if self.degraded_windows:
            row += (
                f"  degraded: ttft p90={opt(self.ttft_p90_degraded_s)}s "
                f"goodput={opt(self.goodput_while_degraded_tokens_per_s, '8.1f')} tok/s "
                f"({len(self.degraded_windows)} windows)"
            )
        return row


def _p90(values: Sequence[float]) -> Optional[float]:
    return percentile(list(values), 90.0) if values else None


def _clip_windows(
    windows: Sequence[Tuple[float, float]], duration_s: float
) -> List[Tuple[float, float]]:
    return sorted(
        (max(0.0, start), min(duration_s, end))
        for start, end in windows
        if min(duration_s, end) > max(0.0, start)
    )


def collect_resilience_metrics(
    *,
    completed: Sequence[Request],
    duration_s: float,
    outage_windows: Sequence[Tuple[float, float]],
    num_fault_events: int,
    failover_count: int,
    degraded_windows: Sequence[Tuple[float, float]] = (),
    stranded_requests: int = 0,
    parked_requests: int = 0,
    failed_requests: int = 0,
    dropped_messages: int = 0,
) -> ResilienceMetrics:
    """Aggregate one faulted run into a :class:`ResilienceMetrics` record.

    ``outage_windows`` are ``(start, end)`` pairs in simulation seconds
    (already resolved by the injector; unrecovered outages end at
    ``duration_s``).  Windows are clipped to ``[0, duration_s]`` and the
    before/during/after phases span from the earliest start to the latest
    end.  ``degraded_windows`` are gray (slow-but-alive) periods: requests
    *sent* inside any of them feed the degraded-mode goodput and p90 TTFT,
    independently of the hard-outage phase classification.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    windows = _clip_windows(outage_windows, duration_s)
    gray = _clip_windows(degraded_windows, duration_s)

    metrics = ResilienceMetrics(
        num_fault_events=num_fault_events,
        failover_count=failover_count,
        outage_windows=list(windows),
        degraded_windows=list(gray),
        stranded_requests=stranded_requests,
        parked_requests=parked_requests,
        failed_requests=failed_requests,
        dropped_messages=dropped_messages,
    )

    recovery_times = [end - start for start, end in windows] + [
        end - start for start, end in gray
    ]
    if recovery_times:
        metrics.mean_time_to_recovery_s = sum(recovery_times) / len(recovery_times)
        metrics.max_time_to_recovery_s = max(recovery_times)

    if gray:
        degraded_ttfts: List[float] = []
        degraded_tokens = 0
        degraded_time = sum(end - start for start, end in gray)
        for request in completed:
            sent = request.sent_time if request.sent_time is not None else 0.0
            if any(start <= sent <= end for start, end in gray):
                metrics.completed_degraded += 1
                if request.ttft is not None:
                    degraded_ttfts.append(request.ttft)
            finish = request.finish_time
            if finish is not None and any(
                start <= finish <= end for start, end in gray
            ):
                degraded_tokens += request.prompt_len + request.generated_tokens
        if degraded_time > 0:
            metrics.goodput_while_degraded_tokens_per_s = (
                degraded_tokens / degraded_time
            )
        metrics.ttft_p90_degraded_s = _p90(degraded_ttfts)

    if not windows:
        metrics.completed_before = len(completed)
        return metrics

    span_start = windows[0][0]
    span_end = max(end for _, end in windows)

    before_ttfts: List[float] = []
    during_ttfts: List[float] = []
    after_ttfts: List[float] = []
    outage_tokens = 0
    for request in completed:
        sent = request.sent_time if request.sent_time is not None else 0.0
        if sent < span_start:
            metrics.completed_before += 1
            bucket = before_ttfts
        elif sent <= span_end:
            metrics.completed_during += 1
            bucket = during_ttfts
        else:
            metrics.completed_after += 1
            bucket = after_ttfts
        ttft = request.ttft
        if ttft is not None:
            bucket.append(ttft)
        finish = request.finish_time
        if finish is not None and span_start <= finish <= span_end:
            outage_tokens += request.prompt_len + request.generated_tokens

    if span_end > span_start:
        metrics.goodput_during_outage_tokens_per_s = outage_tokens / (span_end - span_start)
    metrics.ttft_p90_before_s = _p90(before_ttfts)
    metrics.ttft_p90_during_s = _p90(during_ttfts)
    metrics.ttft_p90_after_s = _p90(after_ttfts)
    return metrics
