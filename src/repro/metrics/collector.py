"""End-of-run metric aggregation.

:func:`collect_run_metrics` turns the raw artefacts of a simulation run --
the completed requests plus the deployment's counters -- into the numbers
the paper's evaluation reports: service throughput (tokens/s), TTFT and
end-to-end latency distributions, prefix-cache hit rate, load-imbalance
variance and cross-region traffic fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..cluster.deployment import Deployment
from ..workloads.request import Request
from .memory import MemoryMetrics
from .resilience import ResilienceMetrics
from .summary import LatencySummary

__all__ = ["RunMetrics", "collect_run_metrics"]


@dataclass
class RunMetrics:
    """Everything a benchmark needs to report about one run."""

    system: str
    workload: str
    duration_s: float
    num_completed: int
    num_issued: int

    #: Served tokens (prompt + generated of completed requests) per second;
    #: this is the "service throughput (token/s)" of Fig. 8.
    throughput_tokens_per_s: float
    #: Generated (output) tokens per second.
    output_tokens_per_s: float
    requests_per_s: float

    ttft: LatencySummary
    e2e_latency: LatencySummary
    queueing_delay: LatencySummary

    #: Fleet-wide token-level prefix cache hit rate.
    cache_hit_rate: float
    #: Fraction of completed requests served outside their origin region.
    cross_region_fraction: float
    #: Fraction of completed requests that were forwarded LB-to-LB.
    forwarded_fraction: float
    #: max/min ratio of per-replica completed-request counts (load imbalance).
    replica_load_imbalance: float
    #: max/min ratio of per-replica peak memory utilisation, when recorded.
    peak_memory_imbalance: Optional[float] = None

    per_replica_completed: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    #: Host wall-clock seconds the cell took to simulate (set by the sweep
    #: executor in both serial and worker-process modes).  Deliberately NOT
    #: part of :meth:`to_dict`: host timing is machine noise, and to_dict is
    #: the payload the serial-vs-parallel bit-identity checks compare.
    wall_clock_s: Optional[float] = None

    #: The seed this run was simulated with (set by the sweep executor so
    #: multi-seed sweeps can group per-seed runs for aggregation).  Also
    #: excluded from :meth:`to_dict`: the single-seed payload must stay
    #: bit-identical to runs that predate seed recording, and the
    #: seeds=[s] ≡ seed=s equivalence compares runs whose only difference
    #: would otherwise be this bookkeeping field.
    seed: Optional[int] = None

    #: Fault-run outcome (outage goodput, time to recovery, per-phase tail
    #: latency, ...); set by the experiment runner only when the run had a
    #: non-empty fault schedule.  Included in :meth:`to_dict` only when
    #: present, so zero-fault payloads stay bit-identical to runs that
    #: predate fault injection -- while faulted runs *do* compare it in the
    #: serial-vs-parallel identity checks.
    resilience: Optional[ResilienceMetrics] = None

    #: Tiered KV-memory telemetry (per-tier hit rates, promotion/demotion
    #: bytes, page occupancy, transfer stalls); set by the experiment runner
    #: only when the run used a telemetry-enabled
    #: :class:`~repro.mem.MemoryConfig`.  Included in :meth:`to_dict` only
    #: when present, for the same bit-identity reason as ``resilience``.
    memory: Optional[MemoryMetrics] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "duration_s": self.duration_s,
            "num_completed": self.num_completed,
            "num_issued": self.num_issued,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "output_tokens_per_s": self.output_tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "ttft": self.ttft.to_dict(),
            "e2e_latency": self.e2e_latency.to_dict(),
            "queueing_delay": self.queueing_delay.to_dict(),
            "cache_hit_rate": self.cache_hit_rate,
            "cross_region_fraction": self.cross_region_fraction,
            "forwarded_fraction": self.forwarded_fraction,
            "replica_load_imbalance": self.replica_load_imbalance,
            "peak_memory_imbalance": self.peak_memory_imbalance,
            "extra": dict(self.extra),
        }
        if self.resilience is not None:
            payload["resilience"] = self.resilience.to_dict()
        if self.memory is not None:
            payload["memory"] = self.memory.to_dict()
        return payload

    def format_row(self) -> str:
        """One human-readable results row (used by the bench harness)."""
        return (
            f"{self.system:<16} {self.workload:<12} "
            f"tput={self.throughput_tokens_per_s:8.1f} tok/s  "
            f"ttft p50={self.ttft.p50:6.3f}s p90={self.ttft.p90:6.3f}s  "
            f"e2e p50={self.e2e_latency.p50:6.2f}s  "
            f"hit={self.cache_hit_rate * 100:5.1f}%  "
            f"completed={self.num_completed}"
        )


def _imbalance_ratio(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if len(positive) < 2:
        return 1.0
    return max(positive) / min(positive)


def collect_run_metrics(
    *,
    system: str,
    workload: str,
    duration_s: float,
    completed: Sequence[Request],
    issued: int,
    deployment: Deployment,
) -> RunMetrics:
    """Aggregate a finished run into a :class:`RunMetrics` record."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")

    served_tokens = sum(r.prompt_len + r.generated_tokens for r in completed)
    output_tokens = sum(r.generated_tokens for r in completed)

    ttfts = [r.ttft for r in completed if r.ttft is not None]
    e2es = [r.e2e_latency for r in completed if r.e2e_latency is not None]
    queueing = [r.queueing_delay for r in completed if r.queueing_delay is not None]

    cross_region = [
        r for r in completed if r.serving_region is not None and r.serving_region != r.region
    ]
    forwarded = [r for r in completed if r.forward_hops > 0]

    per_replica: Dict[str, int] = {}
    for request in completed:
        if request.replica_name:
            per_replica[request.replica_name] = per_replica.get(request.replica_name, 0) + 1

    peak_memory_imbalance: Optional[float] = None
    peaks = [
        max((u for _, u in replica.stats.utilization_samples), default=0.0)
        for replica in deployment.replicas
        if replica.stats.utilization_samples
    ]
    if len(peaks) >= 2:
        peak_memory_imbalance = _imbalance_ratio(peaks)

    return RunMetrics(
        system=system,
        workload=workload,
        duration_s=duration_s,
        num_completed=len(completed),
        num_issued=issued,
        throughput_tokens_per_s=served_tokens / duration_s,
        output_tokens_per_s=output_tokens / duration_s,
        requests_per_s=len(completed) / duration_s,
        ttft=LatencySummary.from_values(ttfts),
        e2e_latency=LatencySummary.from_values(e2es),
        queueing_delay=LatencySummary.from_values(queueing),
        cache_hit_rate=deployment.aggregate_cache_hit_rate(),
        cross_region_fraction=len(cross_region) / len(completed) if completed else 0.0,
        forwarded_fraction=len(forwarded) / len(completed) if completed else 0.0,
        replica_load_imbalance=_imbalance_ratio(list(per_replica.values())),
        peak_memory_imbalance=peak_memory_imbalance,
        per_replica_completed=per_replica,
    )
