"""Tiered KV-memory telemetry aggregation (the Fig. 12 inputs).

:func:`collect_memory_metrics` sums each replica's
:class:`~repro.mem.TieredKVStore` counters (and each balancer's pushed-KV
counters) into one fleet-wide :class:`MemoryMetrics` record: per-tier hit
rates, promotion/demotion byte volumes, page occupancy and transfer-stall
time.  Only runs with a non-default :class:`~repro.mem.MemoryConfig`
produce one -- the legacy flat-memory path carries no tier telemetry at
all, keeping its metric payloads bit-identical to historical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["TierUsage", "MemoryMetrics", "collect_memory_metrics"]


@dataclass
class TierUsage:
    """Fleet-wide end-of-run state and traffic of one offload tier."""

    name: str
    #: Prompt tokens served out of this tier (promoted to HBM on a hit).
    hit_tokens: int
    #: ``hit_tokens`` over all admitted prompt tokens.
    hit_rate: float
    used_tokens: int
    capacity_tokens: int
    #: Fraction of the tier's pages holding segments at end of run.
    page_occupancy: float
    num_segments: int
    #: Monotonic insert/evict traffic (churn shows up as a large gap
    #: between these and ``used_tokens``).
    inserted_tokens: int
    evicted_tokens: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "hit_tokens": self.hit_tokens,
            "hit_rate": self.hit_rate,
            "used_tokens": self.used_tokens,
            "capacity_tokens": self.capacity_tokens,
            "page_occupancy": self.page_occupancy,
            "num_segments": self.num_segments,
            "inserted_tokens": self.inserted_tokens,
            "evicted_tokens": self.evicted_tokens,
        }


@dataclass
class MemoryMetrics:
    """Everything the tier-size sweep reports about one run's KV memory."""

    #: Token-level HBM (radix cache) hit rate -- same number as the legacy
    #: ``cache_hit_rate``, repeated here so tier reports are self-contained.
    hbm_hit_rate: float
    #: Fraction of prompt tokens served from offload tiers (promotions).
    tier_hit_rate: float
    #: HBM + tier hits combined: the "effective" prefix hit rate.
    combined_hit_rate: float

    #: End-of-run HBM page occupancy (fleet used / fleet capacity).
    hbm_page_occupancy: float

    # Transfer-engine traffic, summed over the fleet.
    promoted_tokens: int
    promotion_bytes: int
    demoted_tokens: int
    demotion_bytes: int
    #: Victim tokens the offload/admission policies let vanish.
    dropped_tokens: int
    #: Promotion stall charged through the engine (queueing + copy).
    transfer_stall_s: float
    #: The subset of that stall actually added to admitted prefills.
    promotion_stall_s: float

    tiers: List[TierUsage] = field(default_factory=list)

    # Pushed-KV transfer costs on the balancer dispatch path.
    pushed_prefix_tokens: int = 0
    pushed_prefix_bytes: int = 0
    push_transfer_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "hbm_hit_rate": self.hbm_hit_rate,
            "tier_hit_rate": self.tier_hit_rate,
            "combined_hit_rate": self.combined_hit_rate,
            "hbm_page_occupancy": self.hbm_page_occupancy,
            "promoted_tokens": self.promoted_tokens,
            "promotion_bytes": self.promotion_bytes,
            "demoted_tokens": self.demoted_tokens,
            "demotion_bytes": self.demotion_bytes,
            "dropped_tokens": self.dropped_tokens,
            "transfer_stall_s": self.transfer_stall_s,
            "promotion_stall_s": self.promotion_stall_s,
            "tiers": [tier.to_dict() for tier in self.tiers],
            "pushed_prefix_tokens": self.pushed_prefix_tokens,
            "pushed_prefix_bytes": self.pushed_prefix_bytes,
            "push_transfer_s": self.push_transfer_s,
        }

    def format_row(self) -> str:
        """One human-readable summary row (used by the tier benchmark)."""
        tier_bits = " ".join(
            f"{tier.name}={tier.hit_rate * 100:.1f}%" for tier in self.tiers
        )
        return (
            f"hit hbm={self.hbm_hit_rate * 100:5.1f}% "
            f"tiers={self.tier_hit_rate * 100:5.1f}% [{tier_bits}]  "
            f"promo={self.promotion_bytes / 1e9:6.2f}GB "
            f"demo={self.demotion_bytes / 1e9:6.2f}GB  "
            f"stall={self.promotion_stall_s:6.2f}s"
        )


def collect_memory_metrics(deployment, balancers: Sequence = ()) -> MemoryMetrics:
    """Aggregate tier telemetry across a deployment's replicas.

    Deterministic: replicas are visited in deployment order and tiers in
    each store's top-down order, so equal simulations produce bit-identical
    records (the serial-vs-workers identity checks compare these).
    """
    total_prompt = 0
    total_cached = 0
    total_promoted = 0
    promotion_stall_s = 0.0

    hbm_used = 0
    hbm_capacity = 0

    promoted_tokens = 0
    promotion_bytes = 0
    demoted_tokens = 0
    demotion_bytes = 0
    dropped_tokens = 0
    transfer_stall_s = 0.0

    tier_order: List[str] = []
    tier_hits: Dict[str, int] = {}
    tier_used: Dict[str, int] = {}
    tier_capacity: Dict[str, int] = {}
    tier_pages_used: Dict[str, int] = {}
    tier_pages: Dict[str, int] = {}
    tier_segments: Dict[str, int] = {}
    tier_inserted: Dict[str, int] = {}
    tier_evicted: Dict[str, int] = {}

    for replica in deployment.replicas:
        batcher = replica.batcher
        total_prompt += batcher.total_prompt_tokens
        total_cached += batcher.total_cached_tokens
        total_promoted += batcher.total_promoted_tokens
        promotion_stall_s += batcher.total_promotion_stall_s

        manager = batcher.memory
        hbm_used += manager.used_tokens
        hbm_capacity += manager.capacity_tokens

        tiers = manager.tiers
        if tiers is None:
            continue
        promoted_tokens += tiers.promoted_tokens
        promotion_bytes += tiers.promotion_bytes
        demoted_tokens += tiers.demoted_tokens
        demotion_bytes += tiers.demotion_bytes
        dropped_tokens += tiers.dropped_tokens
        transfer_stall_s += tiers.transfer_stall_s
        for name in tiers.order:
            store = tiers.stores[name]
            if name not in tier_hits:
                tier_order.append(name)
                tier_hits[name] = tier_used[name] = tier_capacity[name] = 0
                tier_pages_used[name] = tier_pages[name] = 0
                tier_segments[name] = tier_inserted[name] = tier_evicted[name] = 0
            tier_hits[name] += tiers.tier_hit_tokens[name]
            tier_used[name] += store.used_tokens
            tier_capacity[name] += store.capacity_tokens
            tier_pages_used[name] += store.allocator.used_pages
            tier_pages[name] += store.allocator.num_pages
            tier_segments[name] += store.num_segments
            tier_inserted[name] += store.inserted_tokens
            tier_evicted[name] += store.evicted_tokens

    pushed_prefix_tokens = 0
    pushed_prefix_bytes = 0
    push_transfer_s = 0.0
    for balancer in balancers:
        pushed_prefix_tokens += getattr(balancer, "pushed_prefix_tokens", 0)
        pushed_prefix_bytes += getattr(balancer, "pushed_prefix_bytes", 0)
        push_transfer_s += getattr(balancer, "push_transfer_s", 0.0)

    def rate(hits: int) -> float:
        return hits / total_prompt if total_prompt > 0 else 0.0

    tiers_out = [
        TierUsage(
            name=name,
            hit_tokens=tier_hits[name],
            hit_rate=rate(tier_hits[name]),
            used_tokens=tier_used[name],
            capacity_tokens=tier_capacity[name],
            page_occupancy=(
                tier_pages_used[name] / tier_pages[name] if tier_pages[name] else 0.0
            ),
            num_segments=tier_segments[name],
            inserted_tokens=tier_inserted[name],
            evicted_tokens=tier_evicted[name],
        )
        for name in tier_order
    ]

    return MemoryMetrics(
        hbm_hit_rate=rate(total_cached),
        tier_hit_rate=rate(total_promoted),
        combined_hit_rate=rate(total_cached + total_promoted),
        hbm_page_occupancy=hbm_used / hbm_capacity if hbm_capacity else 0.0,
        promoted_tokens=promoted_tokens,
        promotion_bytes=promotion_bytes,
        demoted_tokens=demoted_tokens,
        demotion_bytes=demotion_bytes,
        dropped_tokens=dropped_tokens,
        transfer_stall_s=transfer_stall_s,
        promotion_stall_s=promotion_stall_s,
        tiers=tiers_out,
        pushed_prefix_tokens=pushed_prefix_tokens,
        pushed_prefix_bytes=pushed_prefix_bytes,
        push_transfer_s=push_transfer_s,
    )
