"""Metrics: latency summaries, end-of-run aggregation and multi-seed
statistics (mean / stdev / 95% CI across repeated-seed runs)."""

from .aggregate import (
    AGGREGATED_METRICS,
    AggregateMetrics,
    Statistic,
    SweepReport,
    aggregate_cell,
    student_t_critical,
)
from .collector import RunMetrics, collect_run_metrics
from .summary import LatencySummary, percentile

__all__ = [
    "LatencySummary",
    "percentile",
    "RunMetrics",
    "collect_run_metrics",
    "AGGREGATED_METRICS",
    "AggregateMetrics",
    "Statistic",
    "SweepReport",
    "aggregate_cell",
    "student_t_critical",
]
