"""Metrics: latency summaries, end-of-run aggregation, multi-seed
statistics (mean / stdev / 95% CI, paired per-seed differences) and
fault-run resilience metrics (outage goodput, time to recovery, per-phase
tail latency)."""

from .aggregate import (
    AGGREGATED_METRICS,
    RESILIENCE_AGGREGATED_METRICS,
    AggregateMetrics,
    Statistic,
    SweepReport,
    aggregate_cell,
    paired_difference,
    student_t_critical,
)
from .collector import RunMetrics, collect_run_metrics
from .memory import MemoryMetrics, TierUsage, collect_memory_metrics
from .resilience import ResilienceMetrics, collect_resilience_metrics
from .summary import LatencySummary, percentile

__all__ = [
    "LatencySummary",
    "percentile",
    "RunMetrics",
    "collect_run_metrics",
    "ResilienceMetrics",
    "collect_resilience_metrics",
    "MemoryMetrics",
    "TierUsage",
    "collect_memory_metrics",
    "AGGREGATED_METRICS",
    "RESILIENCE_AGGREGATED_METRICS",
    "AggregateMetrics",
    "Statistic",
    "SweepReport",
    "aggregate_cell",
    "paired_difference",
    "student_t_critical",
]
