"""Metrics: latency summaries and end-of-run aggregation."""

from .collector import RunMetrics, collect_run_metrics
from .summary import LatencySummary, percentile

__all__ = ["LatencySummary", "percentile", "RunMetrics", "collect_run_metrics"]
