"""Distribution summaries used throughout the evaluation.

The paper reports box-plot statistics for TTFT and end-to-end latency: the
median, the 25th/75th percentile box, 10th/90th percentile whiskers, and the
mean (Fig. 8's inverted triangle).  :class:`LatencySummary` captures exactly
those, so a benchmark row can be compared against the paper's plot directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["LatencySummary", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class LatencySummary:
    """Box-plot style summary of a latency (or any nonnegative) distribution."""

    count: int
    mean: float
    p10: float
    p25: float
    p50: float
    p75: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencySummary":
        data = [float(v) for v in values if v is not None]
        if not data:
            return cls.empty()
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            p10=percentile(data, 10),
            p25=percentile(data, 25),
            p50=percentile(data, 50),
            p75=percentile(data, 75),
            p90=percentile(data, 90),
            p99=percentile(data, 99),
            minimum=min(data),
            maximum=max(data),
        )

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p10": self.p10,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p90={self.p90:.3f} p99={self.p99:.3f}"
        )
