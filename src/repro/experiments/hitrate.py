"""Fig. 6: KV-cache hit rate of consistent hashing vs an optimal global view.

The paper identifies three situations where user-keyed consistent hashing
falls short of an oracle router that sees every replica's cache state:

* **cross-user sharing** -- users share templates/prefixes, but CH scatters
  them across replicas;
* **bursty requests** -- a burst from one user saturates its hashed replica
  and the overflow loses affinity;
* **heterogeneous programs** -- one user's requests follow several distinct
  prompt patterns, so a single hash target thrashes its cache.

This module replays synthetic request streams against per-replica radix
caches (no timing simulation needed) and reports the token-level hit rate of
each routing policy, mirroring the bar chart in Fig. 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.hash_ring import ConsistentHashRing
from ..replica.kv_cache import RadixCache
from ..workloads.request import Request
from ..workloads.tokens import TokenFactory

__all__ = [
    "HitRateScenario",
    "HitRateComparison",
    "build_scenario",
    "evaluate_hit_rates",
    "run_hitrate_benchmark",
    "SCENARIOS",
]

SCENARIOS = ("cross-user-sharing", "bursty-request", "heterogeneous-program")


@dataclass
class HitRateScenario:
    """A request stream organised into concurrent batches."""

    name: str
    batches: List[List[Request]]

    @property
    def num_requests(self) -> int:
        return sum(len(batch) for batch in self.batches)


@dataclass
class HitRateComparison:
    """Hit rates per scenario and routing policy."""

    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def gap(self, scenario: str) -> float:
        """Absolute hit-rate gap between the optimal router and CH."""
        row = self.results[scenario]
        return row["optimal"] - row["consistent-hashing"]

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(row) for name, row in self.results.items()}


# ----------------------------------------------------------------------
# scenario construction
# ----------------------------------------------------------------------
def build_scenario(name: str, *, seed: int = 0) -> HitRateScenario:
    """Create one of the three Fig. 6 request streams."""
    rng = random.Random(seed)
    tokens = TokenFactory(seed=seed)
    batches: List[List[Request]] = []

    if name == "cross-user-sharing":
        # Many users share a sizeable library of long templates.  A router
        # with a global view can partition templates across replicas so each
        # replica's cache holds a few of them hot; user-keyed hashing instead
        # duplicates the whole library on every replica and thrashes.
        templates = [tokens.fresh(800) for _ in range(12)]
        for round_index in range(40):
            batch: List[Request] = []
            for user in range(24):
                template = templates[user % len(templates)]
                prompt = template + tokens.fresh(rng.randint(30, 80))
                batch.append(Request(prompt_tokens=prompt, output_len=1, user_id=f"user-{user}"))
            batches.append(batch)
    elif name == "bursty-request":
        # A handful of users, each occasionally bursting far beyond one
        # replica's concurrent capacity.
        contexts = {f"user-{u}": tokens.fresh(800) for u in range(6)}
        for round_index in range(40):
            batch = []
            for user, context in contexts.items():
                burst = 1 if rng.random() < 0.7 else rng.randint(6, 10)
                for _ in range(burst):
                    prompt = context + tokens.fresh(rng.randint(20, 80))
                    batch.append(Request(prompt_tokens=prompt, output_len=1, user_id=user))
            batches.append(batch)
    elif name == "heterogeneous-program":
        # Each user's program alternates between several unrelated patterns.
        patterns = [tokens.fresh(700) for _ in range(8)]
        for round_index in range(40):
            batch = []
            for user in range(12):
                pattern = patterns[rng.randrange(len(patterns))]
                prompt = pattern + tokens.fresh(rng.randint(30, 100))
                batch.append(Request(prompt_tokens=prompt, output_len=1, user_id=f"user-{user}"))
            batches.append(batch)
    else:
        raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")
    return HitRateScenario(name=name, batches=batches)


# ----------------------------------------------------------------------
# routing policies over per-replica caches
# ----------------------------------------------------------------------
def _replay(
    scenario: HitRateScenario,
    num_replicas: int,
    cache_capacity_tokens: int,
    slots_per_replica: int,
    chooser,
) -> float:
    """Replay the stream with a replica chooser; returns token hit rate."""
    caches = [RadixCache(capacity_tokens=cache_capacity_tokens) for _ in range(num_replicas)]
    hit = 0
    total = 0
    clock = 0.0
    for batch in scenario.batches:
        slots = [slots_per_replica] * num_replicas
        for request in batch:
            clock += 1.0
            index = chooser(request, caches, slots)
            cache = caches[index]
            match = cache.match_prefix(request.prompt_tokens, now=clock, record=False)
            hit += match.matched_tokens
            total += request.prompt_len
            needed = request.prompt_len - match.matched_tokens
            free = cache.capacity_tokens - cache.total_tokens
            if needed > free:
                cache.evict(needed - free, now=clock)
            cache.insert(request.prompt_tokens, now=clock)
            slots[index] = max(0, slots[index] - 1)
    return hit / total if total else 0.0


def _ch_chooser(num_replicas: int):
    ring: ConsistentHashRing[int] = ConsistentHashRing(range(num_replicas))

    def choose(request: Request, caches: Sequence[RadixCache], slots: Sequence[int]) -> int:
        available = [i for i in range(num_replicas) if slots[i] > 0] or list(range(num_replicas))
        target = ring.lookup(request.user_id, available)
        return target if target is not None else available[0]

    return choose


def _optimal_chooser(num_replicas: int):
    def choose(request: Request, caches: Sequence[RadixCache], slots: Sequence[int]) -> int:
        available = [i for i in range(num_replicas) if slots[i] > 0] or list(range(num_replicas))
        best = max(
            available,
            key=lambda i: (
                caches[i].match_prefix(request.prompt_tokens, record=False).matched_tokens,
                slots[i],   # break prefix ties toward the emptiest replica
                -i,
            ),
        )
        return best

    return choose


def evaluate_hit_rates(
    scenario: HitRateScenario,
    *,
    num_replicas: int = 4,
    cache_capacity_tokens: int = 3600,
    slots_per_replica: int = 8,
) -> Dict[str, float]:
    """Hit rate of consistent hashing vs the optimal router on one scenario."""
    return {
        "consistent-hashing": _replay(
            scenario, num_replicas, cache_capacity_tokens, slots_per_replica,
            _ch_chooser(num_replicas),
        ),
        "optimal": _replay(
            scenario, num_replicas, cache_capacity_tokens, slots_per_replica,
            _optimal_chooser(num_replicas),
        ),
    }


def run_hitrate_benchmark(*, seed: int = 0, **kwargs) -> HitRateComparison:
    """Evaluate every Fig. 6 scenario."""
    comparison = HitRateComparison()
    for name in SCENARIOS:
        scenario = build_scenario(name, seed=seed)
        comparison.results[name] = evaluate_hit_rates(scenario, **kwargs)
    return comparison
