"""End-to-end experiment runner.

``run_experiment`` builds the whole stack -- network, replicas, the selected
load-balancing system, clients -- runs the simulation for the configured
duration and aggregates metrics.  It is the single entry point used by the
examples, the test-suite's integration tests and every Fig. 8/9/10 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..balancers import (
    ConsistentHashBalancer,
    GatewayBalancer,
    LeastLoadBalancer,
    RoundRobinBalancer,
    SGLangRouterBalancer,
)
from ..cluster import ClosedLoopClient, Deployment, Frontend, ReplicaSpec, RequestTracker
from ..core import (
    GDPRConstraint,
    ROUTING_CONSISTENT_HASH,
    ROUTING_PREFIX_TREE,
    SameContinentConstraint,
    SkyWalkerBalancer,
    make_pushing_policy,
)
from ..metrics import RunMetrics, collect_run_metrics
from ..network import Network, NetworkTopology, default_topology
from ..sim import Environment
from ..workloads.program import Program
from ..workloads.request import Request
from .config import ClusterConfig, ExperimentConfig, SystemConfig, WorkloadSpec

__all__ = ["ExperimentResult", "run_experiment", "build_system"]


@dataclass
class ExperimentResult:
    """Everything a caller might want to inspect after a run."""

    metrics: RunMetrics
    deployment: Deployment
    balancers: List[object]
    tracker: RequestTracker
    frontend: Frontend
    env: Environment

    @property
    def completed(self) -> List[Request]:
        return self.tracker.completed


def _hash_key_fn(which: str) -> Callable[[Request], str]:
    if which == "user":
        return lambda request: request.user_id
    return lambda request: request.session_id


def _make_constraint(system: SystemConfig, topology: NetworkTopology):
    if system.constraint is None:
        return None
    if system.constraint == "gdpr":
        return GDPRConstraint(topology)
    if system.constraint == "continent":
        return SameContinentConstraint(topology)
    raise ValueError(f"unknown constraint {system.constraint!r}")


def build_system(
    system: SystemConfig,
    env: Environment,
    network: Network,
    deployment: Deployment,
    frontend: Frontend,
    *,
    client_regions: Sequence[str] = (),
    hash_key: Optional[str] = None,
) -> List[object]:
    """Instantiate the requested load-balancing system and register it with
    the frontend.  Returns the created balancer objects."""
    topology = network.topology
    key_fn = _hash_key_fn(hash_key or system.hash_key)
    kind = system.kind

    centralized = {
        "round-robin": RoundRobinBalancer,
        "least-load": LeastLoadBalancer,
        "consistent-hash": ConsistentHashBalancer,
        "sglang-router": SGLangRouterBalancer,
    }
    if kind in centralized:
        cls = centralized[kind]
        kwargs = {}
        if kind == "consistent-hash":
            kwargs["hash_key_fn"] = key_fn
        balancer = cls(env, f"{kind}@{system.central_region}", system.central_region, network, **kwargs)
        for replica in deployment.replicas:
            balancer.add_replica(replica)
        balancer.start()
        frontend.register_balancer(balancer)
        return [balancer]

    regions = sorted(set(deployment.regions) | set(client_regions))

    if kind == "gke-gateway":
        gateways = []
        for region in regions:
            gateway = GatewayBalancer(
                env,
                f"gateway@{region}",
                region,
                network,
                spill_threshold=system.gateway_spill_threshold,
            )
            for replica in deployment.replicas:
                gateway.add_replica(replica)
            gateway.start()
            frontend.register_balancer(gateway)
            gateways.append(gateway)
        return gateways

    if kind in ("skywalker", "skywalker-ch", "region-local"):
        routing = ROUTING_CONSISTENT_HASH if kind == "skywalker-ch" else ROUTING_PREFIX_TREE
        allow_remote = kind != "region-local"
        constraint = _make_constraint(system, topology)
        balancers: List[SkyWalkerBalancer] = []
        for region in regions:
            pushing_kwargs = {}
            if system.pushing.upper() == "SP-O":
                pushing_kwargs["max_outstanding"] = system.sp_o_threshold
            balancer = SkyWalkerBalancer(
                env,
                f"{kind}@{region}",
                region,
                network,
                routing=routing,
                pushing_policy=make_pushing_policy(system.pushing, **pushing_kwargs),
                probe_interval_s=system.probe_interval_s,
                prefix_match_threshold=system.prefix_match_threshold,
                trie_max_tokens=system.trie_max_tokens,
                allow_remote=allow_remote,
                constraint=constraint,
                hash_key_fn=key_fn,
            )
            for replica in deployment.replicas_in(region):
                balancer.add_replica(replica)
            balancers.append(balancer)
        for balancer in balancers:
            for peer in balancers:
                if peer is not balancer:
                    balancer.add_peer(peer)
            balancer.start()
            frontend.register_balancer(balancer)
        return balancers

    raise ValueError(f"unknown system kind {kind!r}")


def _split_round_robin(programs: Sequence[Program], parts: int) -> List[List[Program]]:
    chunks: List[List[Program]] = [[] for _ in range(parts)]
    for index, program in enumerate(programs):
        chunks[index % parts].append(program)
    return chunks


def run_experiment(config: ExperimentConfig, workload: WorkloadSpec) -> ExperimentResult:
    """Build the full stack, run it and collect metrics."""
    env = Environment()
    topology = default_topology()
    network = Network(env, topology, jitter_fraction=config.network_jitter, seed=config.seed)

    specs = [
        ReplicaSpec(region=region, count=count, profile=config.cluster.profile)
        for region, count in config.cluster.replicas_per_region.items()
        if count > 0
    ]
    deployment = Deployment(
        env,
        specs,
        topology=topology,
        network=network,
        enable_prefix_cache=config.cluster.enable_prefix_cache,
        record_utilization=config.cluster.record_utilization,
    )

    tracker = RequestTracker(env)
    for replica in deployment.replicas:
        replica.add_completion_listener(tracker.complete)

    frontend = Frontend(env, network)
    balancers = build_system(
        config.system,
        env,
        network,
        deployment,
        frontend,
        client_regions=list(workload.clients_per_region),
        hash_key=workload.hash_key,
    )

    clients: List[ClosedLoopClient] = []
    for region, num_clients in workload.clients_per_region.items():
        programs = workload.programs_by_region.get(region, [])
        if not programs or num_clients <= 0:
            continue
        for index, chunk in enumerate(_split_round_robin(programs, num_clients)):
            if not chunk:
                continue
            clients.append(
                ClosedLoopClient(
                    env,
                    name=f"{region}/client-{index}",
                    region=region,
                    frontend=frontend,
                    tracker=tracker,
                    programs=chunk,
                )
            )

    env.run(until=config.duration_s)

    issued = sum(client.issued_requests for client in clients)
    metrics = collect_run_metrics(
        system=config.system.name,
        workload=workload.name,
        duration_s=config.duration_s,
        completed=tracker.completed,
        issued=issued,
        deployment=deployment,
    )
    return ExperimentResult(
        metrics=metrics,
        deployment=deployment,
        balancers=balancers,
        tracker=tracker,
        frontend=frontend,
        env=env,
    )
