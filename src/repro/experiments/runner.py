"""End-to-end experiment runner.

``run_experiment`` builds the whole stack -- network, replicas, the selected
load-balancing system, clients -- runs the simulation for the configured
duration and aggregates metrics.  It is the single entry point used by the
examples, the test-suite's integration tests and every Fig. 8/9/10 bench.

System construction is dispatched through the pluggable system registry
(:mod:`repro.experiments.registry`): the ``system`` field of an
:class:`ExperimentConfig` is a registered typed spec
(:class:`~repro.experiments.registry.SystemSpec`).  ``run_sweep`` sweeps a
list of system variants over workloads, building each workload once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster import ClosedLoopClient, Deployment, Frontend, ReplicaSpec, RequestTracker
from ..core.interface import Balancer
from ..faults import FaultInjector, FaultsLike, resolve_fault_schedule
from ..metrics import (
    AggregateMetrics,
    RunMetrics,
    Statistic,
    SweepReport,
    aggregate_cell,
    collect_memory_metrics,
    collect_run_metrics,
    paired_difference,
)
from ..net import build_routed_network
from ..network import Network, default_topology
from ..sim import Environment
from ..workloads.program import Program
from ..workloads.request import Request
from ..workloads.streams import ProgramStream
from .config import ClusterConfig, ExperimentConfig, WorkloadSpec
from .registry import REGISTRY, BuildContext, SystemSpec

__all__ = ["ExperimentResult", "SweepResult", "run_experiment", "run_sweep", "build_system"]

#: Historical alias from the era of the (now removed) ``SystemConfig`` shim;
#: systems are always registry-typed specs today.
SystemLike = SystemSpec


@dataclass
class ExperimentResult:
    """Everything a caller might want to inspect after a run."""

    metrics: RunMetrics
    deployment: Deployment
    balancers: List[Balancer]
    tracker: RequestTracker
    frontend: Frontend
    env: Environment
    #: Set when the run had a non-empty fault schedule.
    injector: Optional[FaultInjector] = None

    @property
    def completed(self) -> List[Request]:
        return self.tracker.completed

    @property
    def controller(self):
        """The :class:`~repro.core.controller.ServiceController` driving
        balancer failover, when the fault injector started one."""
        return self.injector.controller if self.injector is not None else None


def _resolve_system(system: SystemSpec, workload_hash_key: Optional[str]) -> tuple:
    """Normalise to (typed spec, resolved hash key).

    Typed specs are explicit, so their ``hash_key`` -- when set -- overrides
    the workload's natural key.
    """
    return system, (system.hash_key or workload_hash_key or "user")


def build_system(
    system: SystemSpec,
    env: Environment,
    network: Network,
    deployment: Deployment,
    frontend: Frontend,
    *,
    client_regions: Sequence[str] = (),
    hash_key: Optional[str] = None,
    push_transfer=None,
) -> List[Balancer]:
    """Instantiate the requested load-balancing system via the registry and
    register it with the frontend.  Returns the created balancer objects."""
    spec, resolved_key = _resolve_system(system, hash_key)
    ctx = BuildContext(
        env=env,
        network=network,
        deployment=deployment,
        frontend=frontend,
        client_regions=tuple(client_regions),
        hash_key=resolved_key,
        push_transfer=push_transfer,
    )
    return REGISTRY.build(spec, ctx)


def _split_round_robin(programs: Sequence[Program], parts: int) -> List[List[Program]]:
    chunks: List[List[Program]] = [[] for _ in range(parts)]
    for index, program in enumerate(programs):
        chunks[index % parts].append(program)
    return chunks


def _split_programs(programs, parts: int):
    """Round-robin split for lists, strided lazy views for streams.

    Both assign program ``i`` to client ``i % parts``; the stream path just
    never materializes the sequence (each client's view regenerates it and
    skips the other clients' entries).
    """
    if isinstance(programs, ProgramStream):
        return programs.split(parts)
    return _split_round_robin(programs, parts)


def run_experiment(config: ExperimentConfig, workload: WorkloadSpec) -> ExperimentResult:
    """Build the full stack, run it and collect metrics."""
    env = Environment()
    topology = default_topology()
    if config.cluster.network is not None:
        # The graph-routed WAN (repro.net): multi-hop routes, per-edge
        # faults, optional shared-link bandwidth contention.  With the
        # default NetConfig ("mesh", bandwidth 0) this is bit-identical to
        # the pairwise Network below.
        network = build_routed_network(
            env,
            config.cluster.network,
            topology,
            jitter_fraction=config.network_jitter,
            seed=config.seed,
            default_kv_bytes_per_token=config.cluster.profile.kv_bytes_per_token,
        )
    else:
        network = Network(
            env, topology, jitter_fraction=config.network_jitter, seed=config.seed
        )

    specs = [
        ReplicaSpec(region=region, count=count, profile=config.cluster.profile)
        for region, count in config.cluster.replicas_per_region.items()
        if count > 0
    ]
    memory = config.cluster.memory
    deployment = Deployment(
        env,
        specs,
        topology=topology,
        network=network,
        enable_prefix_cache=config.cluster.enable_prefix_cache,
        memory=memory,
        record_utilization=config.cluster.record_utilization,
    )

    tracker = RequestTracker(env)
    for replica in deployment.replicas:
        replica.add_completion_listener(tracker.complete)
        if network.contention_enabled and getattr(network, "model_responses", False):
            # Finished responses become phantom reverse-path transfers so
            # they share contended WAN edges with pushes (repro.net); inert
            # on the legacy pairwise network and with contention off.
            replica.add_completion_listener(network.stream_response)

    push_transfer = None
    if memory is not None:
        push_transfer = memory.push_transfer(config.cluster.profile.kv_bytes_per_token)

    frontend = Frontend(env, network)
    balancers = build_system(
        config.system,
        env,
        network,
        deployment,
        frontend,
        client_regions=list(workload.clients_per_region),
        hash_key=workload.hash_key,
        push_transfer=push_transfer,
    )

    # Fault injection: only a non-empty schedule creates any machinery at
    # all, so faults=None (and the empty schedule) keep the simulation's
    # event sequence byte-identical to the historical fault-free path.
    # Stochastic descriptions compile to a concrete schedule here, from the
    # run's own duration and seed -- a compiled-empty one (nothing fired
    # within the horizon) is treated exactly like no schedule at all.
    injector: Optional[FaultInjector] = None
    schedule = resolve_fault_schedule(config.faults)
    if schedule is not None:
        schedule = schedule.compile(duration_s=config.duration_s, seed=config.seed)
    if schedule is not None and not schedule.is_empty:
        injector = FaultInjector(
            env,
            schedule,
            network=network,
            deployment=deployment,
            frontend=frontend,
            balancers=balancers,
            tracker=tracker,
        )
        injector.start()

    clients: List[ClosedLoopClient] = []
    for region, num_clients in workload.clients_per_region.items():
        programs = workload.programs_by_region.get(region, [])
        if not programs or num_clients <= 0:
            continue
        for index, chunk in enumerate(_split_programs(programs, num_clients)):
            if not chunk:
                continue
            clients.append(
                ClosedLoopClient(
                    env,
                    name=f"{region}/client-{index}",
                    region=region,
                    frontend=frontend,
                    tracker=tracker,
                    programs=chunk,
                )
            )

    env.run(until=config.duration_s)

    issued = sum(client.issued_requests for client in clients)
    metrics = collect_run_metrics(
        system=config.system.name,
        workload=workload.name,
        duration_s=config.duration_s,
        completed=tracker.completed,
        issued=issued,
        deployment=deployment,
    )
    if injector is not None:
        metrics.resilience = injector.resilience_metrics(
            tracker.completed, duration_s=config.duration_s
        )
    if memory is not None and memory.telemetry_enabled:
        metrics.memory = collect_memory_metrics(deployment, balancers)
    return ExperimentResult(
        metrics=metrics,
        deployment=deployment,
        balancers=balancers,
        tracker=tracker,
        frontend=frontend,
        env=env,
        injector=injector,
    )


@dataclass
class SweepResult:
    """Metrics for every (workload, system) pair of a sweep.

    Single-seed sweeps look exactly as they always have: one
    :class:`RunMetrics` per cell in :attr:`runs`.  Multi-seed sweeps
    (``seeds=[...]``) additionally keep every per-seed run in
    :attr:`seed_runs`; :attr:`runs` then holds the *base seed* (the first
    entry of the seeds list) so every legacy accessor keeps returning a
    deterministic, bit-identical-to-single-seed view.  The statistical
    layer on top -- mean, stdev, 95% CI per metric -- comes from
    :meth:`aggregate` / :meth:`report`.
    """

    runs: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)
    #: Host wall-clock seconds per cell (``cell_seconds[workload][system]``,
    #: base seed), recorded by the sweep executor so benchmark logs show
    #: where the run's time went.  Not part of any bit-identity comparison
    #: (and therefore excluded from ``RunMetrics.to_dict()``).
    cell_seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-seed runs: ``seed_runs[workload][system][seed]``.  Populated by
    #: the sweep executor (which stamps ``RunMetrics.seed``); direct
    #: :meth:`add` calls with un-stamped metrics only feed :attr:`runs`.
    seed_runs: Dict[str, Dict[str, Dict[int, RunMetrics]]] = field(default_factory=dict)
    #: Per-seed wall-clock: ``seed_cell_seconds[workload][system][seed]``.
    seed_cell_seconds: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)

    def add(self, metrics: RunMetrics) -> None:
        if metrics.seed is None:
            # Legacy path (metrics not produced by the sweep executor):
            # exactly the historical overwrite semantics, no seed tracking.
            self.runs.setdefault(metrics.workload, {})[metrics.system] = metrics
            if metrics.wall_clock_s is not None:
                self.cell_seconds.setdefault(metrics.workload, {})[
                    metrics.system
                ] = metrics.wall_clock_s
            return
        # Seed-stamped path: the first run added for a cell is its base
        # seed (the executor orders each cell's tasks seeds-first).
        self.seed_runs.setdefault(metrics.workload, {}).setdefault(metrics.system, {})[
            metrics.seed
        ] = metrics
        self.runs.setdefault(metrics.workload, {}).setdefault(metrics.system, metrics)
        if metrics.wall_clock_s is not None:
            self.seed_cell_seconds.setdefault(metrics.workload, {}).setdefault(
                metrics.system, {}
            )[metrics.seed] = metrics.wall_clock_s
            self.cell_seconds.setdefault(metrics.workload, {}).setdefault(
                metrics.system, metrics.wall_clock_s
            )

    def workloads(self) -> List[str]:
        return list(self.runs)

    def systems(self, workload: str) -> List[str]:
        return list(self.runs[workload])

    def get(self, workload: str, system: str, seed: Optional[int] = None) -> RunMetrics:
        """One cell's metrics: the base-seed run, or a specific seed's."""
        if seed is None:
            return self.runs[workload][system]
        return self.seed_runs[workload][system][seed]

    def runs_for(self, workload: str, system: str) -> Dict[int, RunMetrics]:
        """All per-seed runs of one cell, keyed by seed (insertion order ==
        the order of the sweep's seeds list)."""
        return dict(self.seed_runs.get(workload, {}).get(system, {}))

    def seeds(self) -> List[int]:
        """Every seed seen across the sweep, in first-seen order."""
        ordered: Dict[int, None] = {}
        for row in self.seed_runs.values():
            for per_seed in row.values():
                for seed in per_seed:
                    ordered.setdefault(seed, None)
        return list(ordered)

    def wall_clock(
        self, workload: str, system: str, seed: Optional[int] = None
    ) -> Optional[float]:
        """Host seconds one cell took (base seed, or a specific seed's run),
        or ``None`` if it predates recording."""
        if seed is None:
            return self.cell_seconds.get(workload, {}).get(system)
        return self.seed_cell_seconds.get(workload, {}).get(system, {}).get(seed)

    # -- statistics ----------------------------------------------------
    def aggregate(self, workload: str, system: str) -> AggregateMetrics:
        """Mean/stdev/95%-CI aggregation of one cell across its seeds.

        Falls back to a degenerate single-run aggregate (n=1, no interval)
        for cells without per-seed runs, so report code need not special-
        case single-seed sweeps.
        """
        return aggregate_cell(
            self.seed_runs.get(workload, {}).get(system), self.runs[workload][system]
        )

    def report(self) -> SweepReport:
        """Text-table / JSON report of every cell's aggregate statistics."""
        report = SweepReport()
        for workload in self.workloads():
            for system in self.systems(workload):
                report.add(self.aggregate(workload, system))
        return report

    def paired_diff(
        self,
        workload: str,
        system_a: str,
        system_b: str,
        metric: str = "throughput_tokens_per_s",
    ) -> Statistic:
        """Per-seed paired difference ``metric(a) - metric(b)`` of two
        systems on one workload (positive ``ci_low`` means ``system_a``
        beats ``system_b`` at the 95% level).  Requires a multi-seed sweep:
        pairing needs the same seeds on both sides."""
        runs_a = self.seed_runs.get(workload, {}).get(system_a)
        runs_b = self.seed_runs.get(workload, {}).get(system_b)
        if not runs_a or not runs_b:
            raise ValueError(
                "paired differences need per-seed runs for both systems; "
                f"run the sweep with seeds=[...] (got {system_a!r}: "
                f"{sorted(runs_a or ())}, {system_b!r}: {sorted(runs_b or ())})"
            )
        return paired_difference(runs_a, runs_b, metric)

    def to_json(self, indent: int = 2) -> str:
        """JSON document of the aggregate statistics (see :class:`SweepReport`)."""
        return self.report().to_json(indent=indent)

    # -- rendering (see repro.experiments.plotting) --------------------
    def plot_table(self, metric: str = "throughput_tokens_per_s") -> str:
        """Workload x system text grid of one (dotted-path) metric."""
        from .plotting import render_table

        return render_table(self, metric)

    def plot_bars(
        self,
        metric: str = "throughput_tokens_per_s",
        *,
        workload: Optional[str] = None,
        width: int = 40,
    ) -> str:
        """ASCII bar chart of one metric (all workloads, or one)."""
        from .plotting import render_bars

        return render_bars(self, metric, workload=workload, width=width)

    def plot_csv(self, metrics: Optional[Sequence[str]] = None) -> str:
        """CSV rows of every cell (one row per seed in multi-seed sweeps)."""
        from .plotting import DEFAULT_CSV_METRICS, render_csv

        return render_csv(self, metrics if metrics is not None else DEFAULT_CSV_METRICS)

    def plot_figure(
        self, metric: str = "throughput_tokens_per_s", *, path: Optional[str] = None
    ):
        """Matplotlib grouped-bar figure (raises if matplotlib is absent)."""
        from .plotting import render_figure

        return render_figure(self, metric, path=path)

    def format_report(self) -> str:
        """Per-run rows (base seed first), plus an aggregate table when the
        sweep ran more than one seed."""
        lines: List[str] = []
        multi_seed = len(self.seeds()) > 1
        for workload, row in self.runs.items():
            lines.append(f"== {workload} ==")
            for metrics in row.values():
                line = "  " + metrics.format_row()
                seconds = self.wall_clock(workload, metrics.system)
                if seconds is not None:
                    line += f"  wall={seconds:6.2f}s"
                lines.append(line)
        if multi_seed:
            lines.append(f"== aggregate over seeds {self.seeds()} (mean±95% CI) ==")
            for workload in self.workloads():
                for system in self.systems(workload):
                    lines.append("  " + self.aggregate(workload, system).format_row())
        return "\n".join(lines)


def run_sweep(
    systems: Sequence[SystemLike],
    workloads: Sequence[WorkloadSpec],
    *,
    cluster: Optional[ClusterConfig] = None,
    duration_s: float = 120.0,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    network_jitter: float = 0.05,
    workers: int = 1,
    faults: FaultsLike = None,
) -> SweepResult:
    """Run every system variant against every workload (and seed).

    Each workload is built **once** by the caller and replayed across the
    system variants via :meth:`WorkloadSpec.fresh_copy`, so variants see
    identical traffic without paying workload generation per run (and
    without sharing mutable request state).

    ``seeds=[a, b, c]`` repeats every (workload, system) cell under each
    seed: per-seed runs land in :attr:`SweepResult.seed_runs` and
    :meth:`SweepResult.aggregate` reports mean/stdev/95% CI per metric.
    ``seeds=None`` (default) is the historical single-seed path, and
    ``seeds=[s]`` is bit-identical to ``seed=s``.

    ``workers`` > 1 runs the (workload, system, seed) cells in that many
    worker processes via :class:`~repro.experiments.sweep.SweepExecutor`;
    results are bit-identical to the serial path for the same seeds,
    parallelism only buys wall-clock.

    ``faults`` injects a deterministic fault schedule (a
    :class:`~repro.faults.FaultSchedule` or a registered schedule name,
    resolved inside the workers) into **every** cell, turning the sweep
    into a resilience comparison: each run gains ``metrics.resilience``
    (outage goodput, time to recovery, per-phase tail latency).
    ``faults=None`` and the empty schedule are bit-identical to the
    historical fault-free sweep.

    Results are indexed by each system's display name, so variants of the
    same kind must be disambiguated with ``label`` (otherwise later runs
    would silently overwrite earlier ones).
    """
    from .sweep import SweepExecutor  # deferred: sweep imports this module

    return SweepExecutor(workers=workers).run(
        systems,
        workloads,
        cluster=cluster,
        duration_s=duration_s,
        seed=seed,
        seeds=seeds,
        network_jitter=network_jitter,
        faults=faults,
    )
